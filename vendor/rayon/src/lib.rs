//! Offline stand-in for `rayon`.
//!
//! Implements the `par_iter()/into_par_iter() → map → collect` shape the
//! bench binaries use for fanning independent campaign simulations across
//! cores. Items are distributed round-robin over `available_parallelism()`
//! scoped threads and results are reassembled in input order, so a parallel
//! sweep produces exactly the same output vector as the sequential loop it
//! replaces. No work stealing — campaign tasks are coarse enough that static
//! striding keeps every core busy.

use std::thread;

/// A materialized parallel iterator (eager, unlike real rayon).
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A mapped parallel iterator, pending execution at `collect`.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

/// By-value conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

/// By-reference conversion into a parallel iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Element type (a reference).
    type Item: Send;
    /// Parallel iterator over borrowed elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter { items: self.collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter { items: self.iter().collect() }
    }
}

impl<I: Send> ParIter<I> {
    /// Lazily attaches the map stage.
    pub fn map<R: Send, F: Fn(I) -> R + Sync>(self, f: F) -> ParMap<I, F> {
        ParMap { items: self.items, f }
    }
}

impl<I: Send, R: Send, F: Fn(I) -> R + Sync> ParMap<I, F> {
    /// Executes the map across threads, preserving input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map(self.items, &self.f))
    }
}

fn par_map<I: Send, R: Send, F: Fn(I) -> R + Sync>(items: Vec<I>, f: &F) -> Vec<R> {
    let n = items.len();
    let workers = thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n)
        .max(1);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Round-robin buckets: worker w takes items w, w+workers, w+2·workers, …
    let mut buckets: Vec<Vec<(usize, I)>> = (0..workers).map(|_| Vec::new()).collect();
    for (idx, item) in items.into_iter().enumerate() {
        buckets[idx % workers].push((idx, item));
    }
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let chunks = thread::scope(|scope| {
        let handles: Vec<_> = buckets
            .into_iter()
            .map(|bucket| {
                scope.spawn(move || {
                    bucket
                        .into_iter()
                        .map(|(idx, item)| (idx, f(item)))
                        .collect::<Vec<(usize, R)>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon stub worker panicked"))
            .collect::<Vec<_>>()
    });
    for chunk in chunks {
        for (idx, r) in chunk {
            slots[idx] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every slot filled"))
        .collect()
}

/// The conversion traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order() {
        let xs: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        let squares: Vec<u64> = (0u64..100).into_par_iter().map(|x| x * x).collect();
        assert_eq!(squares[99], 99 * 99);
    }

    #[test]
    fn matches_sequential_for_owned_vec() {
        let xs = vec!["a".to_string(), "bb".to_string(), "ccc".to_string()];
        let lens: Vec<usize> = xs.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u64> = Vec::<u64>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<u64> = vec![7u64].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(one, vec![8]);
    }
}
