//! Offline stand-in for `parking_lot`: wraps `std::sync::Mutex` behind
//! parking_lot's poison-free API (`lock()` returns the guard directly).

use std::sync::MutexGuard;

/// Mutex with parking_lot's `lock() -> guard` signature.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Acquires the lock, recovering from poisoning (parking_lot has no
    /// poisoning; a panicked holder just releases).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
