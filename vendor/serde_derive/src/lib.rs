//! Offline stand-in for `serde_derive`.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real serde proc-macro stack is unavailable. The codebase only uses
//! `#[derive(Serialize, Deserialize)]` as annotations (nothing serializes at
//! runtime yet), so empty derive expansions are sufficient: they satisfy the
//! attribute without generating any trait impls.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
