//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the `proptest!`
//! macro with a `proptest_config` inner attribute, range strategies over
//! `u64`/`usize`/`f64`, `any::<bool>()`, `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Cases are generated from a
//! deterministic per-case seed (no shrinking — a failing case prints its
//! case index, which reproduces it exactly).

use std::ops::Range;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The per-test random source.
pub mod test_runner {
    /// SplitMix64 stream, one per (property, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Deterministic generator for one case of one property.
        pub fn for_case(property_salt: u64, case: u32) -> Self {
            TestRng { state: property_salt ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(case as u64 + 1)) }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// A source of random values for one property argument.
pub trait Strategy {
    /// The produced value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut test_runner::TestRng) -> Self::Value;
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut test_runner::TestRng) -> u64 {
        let span = self.end - self.start;
        self.start + ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn sample(&self, rng: &mut test_runner::TestRng) -> usize {
        let span = (self.end - self.start) as u64;
        self.start + (((rng.next_u64() as u128 * span as u128) >> 64) as u64) as usize
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut test_runner::TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Strategy for "any value of T" (only `bool` is needed here).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Mirror of `proptest::prelude::any`.
pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Collection strategies, addressed as `prop::collection::vec`.
pub mod collection {
    use super::{test_runner::TestRng, Strategy};
    use std::ops::Range;

    /// Strategy producing a `Vec` with random length and elements.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Vector of `len` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};

    /// Mirror of the `prop` module path used as `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assertion mirroring `prop_assert!` (panics instead of returning `Err`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assertion mirroring `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The property-test declaration macro.
///
/// Each declared function runs `cases` times with fresh random arguments;
/// a failure panics with the normal assertion message (the case index is in
/// the generated loop, deterministic per property name).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Salt the stream by the property name so sibling
                // properties explore different sequences.
                let salt = stringify!($name)
                    .bytes()
                    .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
                    });
                for case in 0..config.cases {
                    let mut prop_rng = $crate::test_runner::TestRng::for_case(salt, case);
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut prop_rng); )*
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 2u64..9, y in 0.25f64..0.5, n in 1usize..4) {
            prop_assert!((2..9).contains(&x));
            prop_assert!((0.25..0.5).contains(&y));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_strategy_respects_len(xs in prop::collection::vec(0.0f64..1.0, 1..6)) {
            prop_assert!(!xs.is_empty() && xs.len() < 6);
            prop_assert!(xs.iter().all(|v| (0.0..1.0).contains(v)));
        }

        #[test]
        fn any_bool_samples_a_bool(flag in any::<bool>()) {
            // Not a distribution test — just type-checks the strategy.
            let as_int = u8::from(flag);
            prop_assert!(as_int <= 1);
        }
    }
}
