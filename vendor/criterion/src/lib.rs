//! Offline stand-in for `criterion`.
//!
//! A real (if small) measuring harness behind criterion's macro surface:
//! warmup, adaptive iteration counts, N timed samples, mean/median/min
//! reporting. Honors:
//!
//! * a positional CLI argument as a substring filter on benchmark names;
//! * `--sample-size N` or `SPOTTUNE_BENCH_SAMPLES` to shrink runs (CI smoke);
//! * `--test` (what `cargo test --benches` passes): run every routine once;
//! * `SPOTTUNE_BENCH_JSON=path`: append one JSON line per benchmark, the
//!   `BENCH_*.json` baseline format described in `crates/bench/README.md`.

use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// How batched inputs are grouped per measurement (API compatibility only —
/// this harness times each routine invocation individually).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Opaque measurement sink handed to bench closures.
pub struct Bencher<'a> {
    cfg: &'a RunConfig,
    /// Mean/median/min nanoseconds per iteration, filled by `iter*`.
    result: Option<Stats>,
}

#[derive(Debug, Clone, Copy)]
struct Stats {
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
}

#[derive(Debug, Clone)]
struct RunConfig {
    sample_size: usize,
    test_mode: bool,
}

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

const MIN_SAMPLE_TIME: Duration = Duration::from_millis(2);

impl<'a> Bencher<'a> {
    /// Times `routine`, called in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.cfg.test_mode {
            black_box(routine());
            return;
        }
        // Warmup + per-iteration estimate.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (MIN_SAMPLE_TIME.as_nanos() / once.as_nanos()).max(1) as u64;
        let mut samples = Vec::with_capacity(self.cfg.sample_size);
        for _ in 0..self.cfg.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
        }
        self.result = Some(summarize(&mut samples));
    }

    /// Times `routine` over inputs produced by `setup`; only the routine is
    /// measured.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.cfg.test_mode {
            black_box(routine(setup()));
            return;
        }
        let input = setup();
        let t0 = Instant::now();
        black_box(routine(input));
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (MIN_SAMPLE_TIME.as_nanos() / once.as_nanos()).max(1) as u64;
        let mut samples = Vec::with_capacity(self.cfg.sample_size);
        for _ in 0..self.cfg.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..iters {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            samples.push(total.as_nanos() as f64 / iters as f64);
        }
        self.result = Some(summarize(&mut samples));
    }
}

fn summarize(samples: &mut [f64]) -> Stats {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let n = samples.len();
    Stats {
        mean_ns: samples.iter().sum::<f64>() / n as f64,
        median_ns: samples[n / 2],
        min_ns: samples[0],
        samples: n,
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The harness entry point.
pub struct Criterion {
    filter: Option<String>,
    cfg: RunConfig,
    json_path: Option<String>,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            cfg: RunConfig { sample_size: 20, test_mode: false },
            json_path: std::env::var("SPOTTUNE_BENCH_JSON").ok(),
            ran: 0,
        }
    }
}

impl Criterion {
    /// Builds a harness from CLI args (filter, `--sample-size`, `--test`)
    /// and the `SPOTTUNE_BENCH_SAMPLES` / `SPOTTUNE_BENCH_JSON` env vars.
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        if let Some(n) = std::env::var("SPOTTUNE_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
        {
            c.cfg.sample_size = n.max(2);
        }
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => c.cfg.test_mode = true,
                "--sample-size" => {
                    if let Some(n) = args.next().and_then(|s| s.parse::<usize>().ok()) {
                        c.cfg.sample_size = n.max(2);
                    }
                }
                "--bench" | "--quiet" | "--verbose" | "--noplot" => {}
                s if s.starts_with("--") => {
                    // Unknown flag (possibly with a value); skip its value if
                    // the next token is not flag-like.
                }
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(2);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), sample_size: None }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        self.run_one("", id.as_ref(), None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        group: &str,
        id: &str,
        sample_size: Option<usize>,
        mut f: F,
    ) {
        let full = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut cfg = self.cfg.clone();
        if let Some(n) = sample_size {
            // CLI/env overrides beat the in-code group setting so CI smoke
            // runs stay fast even for groups that pin a large sample count.
            if std::env::var("SPOTTUNE_BENCH_SAMPLES").is_err() {
                cfg.sample_size = n.max(2);
            }
        }
        let mut b = Bencher { cfg: &cfg, result: None };
        f(&mut b);
        self.ran += 1;
        if cfg.test_mode {
            println!("test {full} ... ok");
            return;
        }
        if let Some(stats) = b.result {
            println!(
                "{full:<52} time: [{}]  (median {}, min {}, {} samples)",
                format_ns(stats.mean_ns),
                format_ns(stats.median_ns),
                format_ns(stats.min_ns),
                stats.samples,
            );
            if let Some(path) = &self.json_path {
                let mut line = String::new();
                let _ = write!(
                    line,
                    "{{\"group\":\"{group}\",\"bench\":\"{id}\",\"mean_ns\":{:.1},\"median_ns\":{:.1},\"min_ns\":{:.1},\"samples\":{}}}",
                    stats.mean_ns, stats.median_ns, stats.min_ns, stats.samples,
                );
                if let Ok(mut file) =
                    std::fs::OpenOptions::new().create(true).append(true).open(path)
                {
                    let _ = writeln!(file, "{line}");
                }
            }
        }
    }

    /// Prints the closing line (mirrors criterion's summary hook).
    pub fn final_summary(&self) {
        if !self.cfg.test_mode {
            println!("\n{} benchmark(s) completed", self.ran);
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    c: &'c mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        let (name, n) = (self.name.clone(), self.sample_size);
        self.c.run_one(&name, id.as_ref(), n, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_a_cheap_routine() {
        let cfg = RunConfig { sample_size: 5, test_mode: false };
        let mut b = Bencher { cfg: &cfg, result: None };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
            acc
        });
        let stats = b.result.expect("stats recorded");
        assert_eq!(stats.samples, 5);
        assert!(stats.min_ns > 0.0 && stats.mean_ns >= stats.min_ns);
    }

    #[test]
    fn test_mode_runs_once_without_stats() {
        let cfg = RunConfig { sample_size: 5, test_mode: true };
        let mut b = Bencher { cfg: &cfg, result: None };
        let mut calls = 0;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.result.is_none());
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with(" s"));
    }
}
