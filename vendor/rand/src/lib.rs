//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this vendored crate
//! implements the exact API subset the workspace uses — `rngs::StdRng`,
//! [`SeedableRng::seed_from_u64`], the [`RngExt`] sampling helpers and
//! [`seq::SliceRandom::shuffle`] — on top of a deterministic xoshiro256**
//! generator seeded through SplitMix64. Determinism is a feature here: every
//! simulated campaign must replay bit-identically from its seed.

use std::ops::Range;

/// Types constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Derives the full generator state from one `u64` via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Minimal core-RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Value types samplable uniformly over their "natural" domain by
/// [`RngExt::random`].
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample_standard(rng: &mut impl RngCore) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard(rng: &mut impl RngCore) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard(rng: &mut impl RngCore) -> u64 {
        rng.next_u64()
    }
}

/// Range types [`RngExt::random_range`] can draw from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "random_range: empty f64 range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "random_range: empty integer range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of the plain variant is irrelevant for simulation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u64, usize, u32, i64);

/// Sampling helpers available on every [`RngCore`] (stand-in for rand's
/// `Rng`; named `RngExt` to match the workspace's imports).
pub trait RngExt: RngCore {
    /// Uniform draw over a value type's natural domain (e.g. `[0,1)` for
    /// `f64`).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform draw from a range.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p ∈ [0, 1]`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "random_bool: p must be in [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// In-place slice shuffling (stand-in for rand's `SliceRandom`).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u64;
                let j = ((rng.next_u64() as u128 * span as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>().to_bits(), b.random::<f64>().to_bits());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.random_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let u = rng.random_range(10u64..20);
            assert!((10..20).contains(&u));
            let i = rng.random_range(0usize..7);
            assert!(i < 7);
        }
    }

    #[test]
    fn uniform_f64_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut xs: Vec<usize> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }
}
