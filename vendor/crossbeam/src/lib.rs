//! Offline stand-in for `crossbeam`: just the `thread::scope` API the
//! workspace uses, implemented on `std::thread::scope` (which did not exist
//! when crossbeam's scoped threads were written, and fully replaces them).

/// Scoped threads.
pub mod thread {
    /// Mirror of `crossbeam::thread::Scope`: spawn handle passed to the
    /// scope closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope reference
        /// (ignored by all call sites here) to match crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope whose spawned threads all join before `scope`
    /// returns. Always `Ok` — std's scope propagates child panics by
    /// panicking on join, so the `Result` exists only for signature
    /// compatibility with crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_threads() {
        let n = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| n.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }
}
