//! Offline stand-in for `crossbeam`: the `thread::scope` and
//! `channel::{unbounded, bounded}` APIs the workspace uses, implemented
//! on `std::thread::scope` and a `Mutex<VecDeque>` + `Condvar` queue.

/// Multi-producer multi-consumer channels (the `crossbeam::channel`
/// subset the campaign server uses: unbounded and bounded, cloneable
/// endpoints, blocking `recv` that disconnects when every sender is
/// gone, non-blocking `try_send` for backpressure).
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled when a bounded queue frees a slot; unused (never
        /// waited on) for unbounded channels.
        space: Condvar,
        /// `None` = unbounded; `Some(cap)` = at most `cap` queued messages.
        cap: Option<usize>,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like real crossbeam: `Debug` regardless of `T`, payload elided.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty, but senders remain.
        Empty,
        /// Channel empty and every sender is gone.
        Disconnected,
    }

    /// Error returned by [`Sender::try_send`]; the unsent message is
    /// handed back in both variants.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity.
        Full(T),
        /// Every receiver is gone.
        Disconnected(T),
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("sending on a full channel"),
                TrySendError::Disconnected(_) => {
                    f.write_str("sending on a disconnected channel")
                }
            }
        }
    }

    /// The sending half; clone freely across producers.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clone freely across consumers.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    fn shared_with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        shared_with_cap(None)
    }

    /// Creates a bounded MPMC channel holding at most `cap` messages.
    /// `send` blocks while full; `try_send` fails fast with
    /// [`TrySendError::Full`]. A capacity of zero is treated as one (the
    /// rendezvous semantics of real crossbeam are not needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        shared_with_cap(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        /// Enqueues a message, blocking while a bounded channel is at
        /// capacity; fails only if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(msg));
            }
            let mut queue = self.shared.queue.lock().expect("channel lock");
            if let Some(cap) = self.shared.cap {
                while queue.len() >= cap {
                    if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                        return Err(SendError(msg));
                    }
                    queue = self.shared.space.wait(queue).expect("channel lock");
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Non-blocking send: fails fast when a bounded channel is at
        /// capacity instead of waiting for space.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            if self.shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            let mut queue = self.shared.queue.lock().expect("channel lock");
            if let Some(cap) = self.shared.cap {
                if queue.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            queue.push_back(msg);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel lock").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// The channel capacity (`None` for unbounded).
        pub fn capacity(&self) -> Option<usize> {
            self.shared.cap
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::SeqCst);
            Sender { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake every blocked receiver so it can
                // observe the disconnect. The notification must happen
                // under the queue lock — otherwise a receiver that has
                // checked `senders` but not yet entered `Condvar::wait`
                // would miss it and block forever. (Holding the lock keeps
                // this Drop ordered after that receiver reaches the wait.)
                let _queue = self.shared.queue.lock();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel lock");
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    self.shared.space.notify_one();
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).expect("channel lock");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().expect("channel lock");
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                self.shared.space.notify_one();
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.queue.lock().expect("channel lock").len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator: yields until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last receiver gone: wake senders blocked on a full
                // bounded queue so they can observe the disconnect (same
                // lock-ordering argument as the last-sender Drop above).
                let _queue = self.shared.queue.lock();
                self.shared.space.notify_all();
            }
        }
    }

    /// Borrowing blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    /// Owning blocking iterator over received messages.
    pub struct IntoIter<T> {
        receiver: Receiver<T>,
    }

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter { receiver: self }
        }
    }
}

/// Scoped threads.
pub mod thread {
    /// Mirror of `crossbeam::thread::Scope`: spawn handle passed to the
    /// scope closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives a scope reference
        /// (ignored by all call sites here) to match crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope whose spawned threads all join before `scope`
    /// returns. Always `Ok` — std's scope propagates child panics by
    /// panicking on join, so the `Result` exists only for signature
    /// compatibility with crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn channel_roundtrip_fifo() {
        let (tx, rx) = super::channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let got: Vec<i32> = rx.iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn channel_disconnects_when_senders_drop() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(super::channel::RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(super::channel::SendError(1)));
    }

    #[test]
    fn channel_fans_in_across_threads() {
        let (tx, rx) = super::channel::unbounded();
        super::thread::scope(|s| {
            for w in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..25u64 {
                        tx.send(w * 25 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got: Vec<u64> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        })
        .unwrap();
    }

    #[test]
    fn try_recv_reports_empty_and_disconnected() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(super::channel::TryRecvError::Empty));
        tx.send(3).unwrap();
        assert_eq!(rx.try_recv(), Ok(3));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(super::channel::TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_try_send_reports_full_then_space_frees() {
        let (tx, rx) = super::channel::bounded::<u8>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(super::channel::TrySendError::Full(3))));
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn bounded_try_send_reports_disconnected() {
        let (tx, rx) = super::channel::bounded::<u8>(4);
        drop(rx);
        assert!(matches!(
            tx.try_send(9),
            Err(super::channel::TrySendError::Disconnected(9))
        ));
    }

    #[test]
    fn bounded_blocking_send_waits_for_space() {
        let (tx, rx) = super::channel::bounded::<u32>(1);
        tx.send(0).unwrap();
        super::thread::scope(|s| {
            let tx = tx.clone();
            s.spawn(move |_| {
                // Blocks until the main thread drains the single slot.
                tx.send(1).unwrap();
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(0));
            assert_eq!(rx.recv(), Ok(1));
        })
        .unwrap();
    }

    #[test]
    fn bounded_depth_never_exceeds_capacity_under_contention() {
        let (tx, rx) = super::channel::bounded::<u64>(4);
        super::thread::scope(|s| {
            for w in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..50u64 {
                        tx.send(w * 50 + i).unwrap();
                    }
                });
            }
            drop(tx);
            let mut got = Vec::new();
            loop {
                assert!(rx.len() <= 4, "queue depth exceeded capacity");
                match rx.recv() {
                    Ok(v) => got.push(v),
                    Err(_) => break,
                }
            }
            got.sort_unstable();
            assert_eq!(got, (0..200).collect::<Vec<_>>());
        })
        .unwrap();
    }

    #[test]
    fn len_visible_from_both_halves() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        assert!(tx.is_empty() && rx.is_empty());
        assert_eq!(tx.capacity(), None);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        let (btx, _brx) = super::channel::bounded::<u8>(7);
        assert_eq!(btx.capacity(), Some(7));
    }

    #[test]
    fn scope_joins_all_threads() {
        let n = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| n.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }
}
