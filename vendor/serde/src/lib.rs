//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` trait names and re-exports the
//! no-op derive macros so `use serde::{Deserialize, Serialize};` plus
//! `#[derive(Serialize, Deserialize)]` compile without the real crate (the
//! build environment has no registry access). Nothing in the workspace
//! performs actual serialization yet; when it does, swap this for real serde.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T> Deserialize<'de> for T {}
