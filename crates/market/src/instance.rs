//! EC2-like instance types and the experimental catalog (paper Table III).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Static description of a cloud instance type.
///
/// Matches one row of Table III in the paper: name, vCPU count, memory and
/// the (fixed) on-demand hourly price.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    name: String,
    vcpus: u32,
    memory_gb: f64,
    on_demand_price: f64,
}

impl InstanceType {
    /// Creates an instance type description.
    ///
    /// # Panics
    ///
    /// Panics if `vcpus` is zero or `on_demand_price` is not positive.
    pub fn new(name: impl Into<String>, vcpus: u32, memory_gb: f64, on_demand_price: f64) -> Self {
        assert!(vcpus > 0, "instance must have at least one vCPU");
        assert!(
            on_demand_price > 0.0,
            "on-demand price must be positive, got {on_demand_price}"
        );
        InstanceType {
            name: name.into(),
            vcpus,
            memory_gb,
            on_demand_price,
        }
    }

    /// Instance type name, e.g. `"r3.xlarge"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of virtual CPUs.
    pub fn vcpus(&self) -> u32 {
        self.vcpus
    }

    /// Memory in GB.
    pub fn memory_gb(&self) -> f64 {
        self.memory_gb
    }

    /// On-demand hourly price in USD.
    pub fn on_demand_price(&self) -> f64 {
        self.on_demand_price
    }
}

impl fmt::Display for InstanceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} vCPU, {} GB, ${}/h on-demand)",
            self.name, self.vcpus, self.memory_gb, self.on_demand_price
        )
    }
}

/// The six instance types used in the paper's evaluation (Table III).
///
/// ```
/// let catalog = spottune_market::instance::catalog();
/// assert_eq!(catalog.len(), 6);
/// assert_eq!(catalog[0].name(), "r4.large");
/// ```
pub fn catalog() -> Vec<InstanceType> {
    vec![
        InstanceType::new("r4.large", 2, 15.25, 0.133),
        InstanceType::new("r3.xlarge", 4, 30.0, 0.33),
        InstanceType::new("r4.xlarge", 4, 30.5, 0.266),
        InstanceType::new("m4.2xlarge", 8, 32.0, 0.4),
        InstanceType::new("r4.2xlarge", 8, 61.0, 0.532),
        InstanceType::new("m4.4xlarge", 16, 64.0, 0.8),
    ]
}

/// Looks up an instance type from [`catalog`] by name.
pub fn by_name(name: &str) -> Option<InstanceType> {
    catalog().into_iter().find(|i| i.name() == name)
}

/// Name of the cheapest catalog instance by on-demand price (`r4.large`).
pub const CHEAPEST: &str = "r4.large";
/// Name of the fastest catalog instance by vCPU count (`m4.4xlarge`).
pub const FASTEST: &str = "m4.4xlarge";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table_iii() {
        let c = catalog();
        assert_eq!(c.len(), 6);
        let m4 = c.iter().find(|i| i.name() == "m4.4xlarge").unwrap();
        assert_eq!(m4.vcpus(), 16);
        assert_eq!(m4.memory_gb(), 64.0);
        assert_eq!(m4.on_demand_price(), 0.8);
    }

    #[test]
    fn cheapest_and_fastest_exist() {
        assert!(by_name(CHEAPEST).is_some());
        assert!(by_name(FASTEST).is_some());
        let cheapest = by_name(CHEAPEST).unwrap();
        for i in catalog() {
            assert!(cheapest.on_demand_price() <= i.on_demand_price());
        }
    }

    #[test]
    fn by_name_misses_unknown() {
        assert!(by_name("p3.16xlarge").is_none());
    }

    #[test]
    #[should_panic(expected = "at least one vCPU")]
    fn zero_vcpus_rejected() {
        let _ = InstanceType::new("bad", 0, 1.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "price must be positive")]
    fn nonpositive_price_rejected() {
        let _ = InstanceType::new("bad", 1, 1.0, 0.0);
    }
}
