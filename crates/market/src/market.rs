//! Spot markets: an instance type paired with its price trace, plus the
//! market pool used throughout the evaluation.

use crate::instance::{self, InstanceType};
use crate::price::PriceTrace;
use crate::synth::{regime_for, TraceGenerator};
use crate::time::{SimDur, SimTime, HOUR};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One spot market: "different instance types have different spot markets"
/// (§II.A), so each [`InstanceType`] carries its own [`PriceTrace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpotMarket {
    instance: InstanceType,
    trace: PriceTrace,
}

impl SpotMarket {
    /// Pairs an instance type with its price trace.
    pub fn new(instance: InstanceType, trace: PriceTrace) -> Self {
        SpotMarket { instance, trace }
    }

    /// The instance type traded in this market.
    pub fn instance(&self) -> &InstanceType {
        &self.instance
    }

    /// The underlying price trace.
    pub fn trace(&self) -> &PriceTrace {
        &self.trace
    }

    /// Current market price at `t`.
    pub fn price_at(&self, t: SimTime) -> f64 {
        self.trace.price_at(t)
    }

    /// Average market price over the last hour before `t` (Eq. 1's `price`).
    pub fn avg_price_last_hour(&self, t: SimTime) -> f64 {
        self.trace.avg_last_hour(t)
    }

    /// Ground truth: the first instant in `[from, from + horizon)` at which a
    /// VM with the given `max_price` would be revoked, if any.
    pub fn revocation_within(
        &self,
        from: SimTime,
        horizon: SimDur,
        max_price: f64,
    ) -> Option<SimTime> {
        self.trace.first_exceed(from, horizon, max_price)
    }

    /// Ground-truth label used to train the revocation predictors: would the
    /// market price exceed `max_price` within the next hour after `t`?
    pub fn revoked_within_hour(&self, t: SimTime, max_price: f64) -> bool {
        self.revocation_within(t, SimDur::from_secs(HOUR), max_price)
            .is_some()
    }
}

/// A pool of spot markets, keyed by instance-type name.
///
/// Markets are immutable once constructed, so the pool shares them behind
/// an [`Arc`]: cloning a pool (which every orchestrator, provider and
/// estimator does) is a reference-count bump, not a deep copy of megabytes
/// of price traces — essential when fanning thousands of campaigns over
/// the same markets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarketPool {
    markets: Arc<[SpotMarket]>,
}

impl MarketPool {
    /// Builds a pool from explicit markets.
    ///
    /// # Panics
    ///
    /// Panics if `markets` is empty or contains duplicate instance names.
    pub fn new(markets: Vec<SpotMarket>) -> Self {
        assert!(!markets.is_empty(), "market pool must not be empty");
        for (i, a) in markets.iter().enumerate() {
            for b in &markets[i + 1..] {
                assert!(
                    a.instance().name() != b.instance().name(),
                    "duplicate market for {}",
                    a.instance().name()
                );
            }
        }
        MarketPool { markets: markets.into() }
    }

    /// The standard evaluation pool: the six Table-III instance types with
    /// synthetic traces in their assigned regimes
    /// ([`regime_for`]), each `total` long, derived from `seed`.
    pub fn standard(total: SimDur, seed: u64) -> Self {
        let markets = instance::catalog()
            .into_iter()
            .enumerate()
            .map(|(i, inst)| {
                let gen = TraceGenerator::preset(regime_for(inst.name()));
                // Decorrelate markets: "price fluctuations among different
                // markets are barely correlated" (§II.A).
                let trace = gen.generate(&inst, total, seed.wrapping_add(1000 * i as u64 + 17));
                SpotMarket::new(inst, trace)
            })
            .collect();
        MarketPool::new(markets)
    }

    /// All markets in the pool.
    pub fn markets(&self) -> &[SpotMarket] {
        &self.markets
    }

    /// Number of markets.
    pub fn len(&self) -> usize {
        self.markets.len()
    }

    /// Whether the pool is empty (never true for a constructed pool).
    pub fn is_empty(&self) -> bool {
        self.markets.is_empty()
    }

    /// Looks up a market by instance-type name.
    pub fn market(&self, instance_name: &str) -> Option<&SpotMarket> {
        self.markets
            .iter()
            .find(|m| m.instance().name() == instance_name)
    }

    /// Iterator over the markets.
    pub fn iter(&self) -> impl Iterator<Item = &SpotMarket> {
        self.markets.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::price::PriceTrace;

    fn tiny_market(name: &str, prices: Vec<f64>) -> SpotMarket {
        let inst = InstanceType::new(name, 2, 8.0, 0.4);
        SpotMarket::new(inst, PriceTrace::from_minutes(prices))
    }

    #[test]
    fn revocation_ground_truth() {
        let m = tiny_market("x.large", vec![0.1, 0.1, 0.3, 0.1]);
        assert!(m.revoked_within_hour(SimTime::ZERO, 0.2));
        assert!(!m.revoked_within_hour(SimTime::ZERO, 0.35));
        assert_eq!(
            m.revocation_within(SimTime::ZERO, SimDur::from_hours(1), 0.2),
            Some(SimTime::from_mins(2))
        );
    }

    #[test]
    fn standard_pool_covers_catalog() {
        let pool = MarketPool::standard(SimDur::from_hours(2), 1);
        assert_eq!(pool.len(), 6);
        for inst in instance::catalog() {
            let m = pool.market(inst.name()).expect("market exists");
            assert_eq!(m.instance().vcpus(), inst.vcpus());
            assert_eq!(m.trace().len_minutes(), 120);
        }
        assert!(pool.market("nonexistent").is_none());
    }

    #[test]
    fn standard_pool_markets_are_decorrelated() {
        let pool = MarketPool::standard(SimDur::from_hours(8), 3);
        let a = pool.market("r4.large").unwrap().trace();
        let b = pool.market("m4.2xlarge").unwrap().trace();
        // Same regime but different seeds => different traces.
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "duplicate market")]
    fn duplicate_markets_rejected() {
        let _ = MarketPool::new(vec![
            tiny_market("a", vec![0.1]),
            tiny_market("a", vec![0.2]),
        ]);
    }
}
