//! Synthetic spot-market price-trace generation.
//!
//! The paper drives its simulation with the Kaggle "AWS Spot Pricing Market"
//! dataset (us-east-1, 2017-04-26 → 2017-05-08). That dataset is not
//! redistributable here, so this module generates traces with the same
//! qualitative structure the paper exploits:
//!
//! * spot baseline around 20–30 % of the on-demand price (§II.A),
//! * sporadic step changes (prices hold for minutes-to-hours),
//! * occasional sharp spikes several × the baseline — up to multiples of the
//!   on-demand price, as in the paper's Fig. 1 for r3.xlarge,
//! * diurnal and workday seasonality (RevPred's features 5 and 6 only carry
//!   signal if the process actually depends on them),
//! * per-market regimes: some markets stable, some volatile (§V.A).
//!
//! Real data with the Kaggle schema can be loaded via [`crate::csvload`]
//! instead; everything downstream consumes the same [`PriceTrace`].

use crate::instance::InstanceType;
use crate::price::PriceTrace;
use crate::time::{SimDur, SimTime, MINUTE};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Volatility regime presets for a synthetic spot market.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regime {
    /// Price rarely moves; revocations are unlikely. The "very stable"
    /// markets of §V.A where SpotTune degenerates to lowest step cost.
    Stable,
    /// Frequent small moves; occasional threshold crossings.
    Volatile,
    /// Rare but violent spikes over the on-demand price, like Fig. 1.
    Spiky,
    /// Pronounced daily cycle plus moderate noise.
    Diurnal,
}

/// Tunable parameters of the trace generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceGenConfig {
    /// Spot baseline as a fraction of the on-demand price.
    pub base_fraction: f64,
    /// Mean-reversion strength per minute (0..1).
    pub reversion: f64,
    /// Per-minute noise std-dev in log-price space.
    pub sigma: f64,
    /// Expected spikes per day.
    pub spikes_per_day: f64,
    /// Spike magnitude range as multiples of the baseline.
    pub spike_mult: (f64, f64),
    /// Spike ramp-up duration range in minutes (bid wars build up slowly;
    /// this is what places revocations tens of minutes after acquisition
    /// rather than immediately).
    pub spike_ramp_mins: (f64, f64),
    /// Spike half-life range in minutes.
    pub spike_decay_mins: (f64, f64),
    /// Amplitude of the diurnal cycle in log space (0 disables).
    pub diurnal_amp: f64,
    /// Additional workday demand in log space (0 disables).
    pub workday_boost: f64,
    /// Relative move required before a new price is published.
    pub change_threshold: f64,
    /// Hard floor / cap as fractions of the on-demand price.
    pub floor_fraction: f64,
    /// See `floor_fraction`; prices never exceed `cap_fraction × on-demand`.
    pub cap_fraction: f64,
}

impl TraceGenConfig {
    /// Preset parameters for a [`Regime`].
    pub fn preset(regime: Regime) -> Self {
        match regime {
            // Large, business-critical instance types traded at a higher
            // fraction of on-demand in 2017 us-east-1; that asymmetry is
            // what makes the Fastest baseline expensive in Fig. 7.
            Regime::Stable => TraceGenConfig {
                base_fraction: 0.35,
                reversion: 0.08,
                sigma: 0.004,
                spikes_per_day: 0.3,
                spike_mult: (1.3, 1.8),
                spike_ramp_mins: (5.0, 15.0),
                spike_decay_mins: (20.0, 60.0),
                diurnal_amp: 0.01,
                workday_boost: 0.01,
                change_threshold: 0.01,
                floor_fraction: 0.1,
                cap_fraction: 4.0,
            },
            // The 2017 us-east-1 bid wars made small instance types jump
            // several × their floor many times per day — exactly the
            // behaviour SpotTune's refund harvesting exploits (§IV.C).
            Regime::Volatile => TraceGenConfig {
                base_fraction: 0.18,
                reversion: 0.05,
                sigma: 0.06,
                spikes_per_day: 30.0,
                spike_mult: (2.0, 6.0),
                spike_ramp_mins: (20.0, 50.0),
                spike_decay_mins: (10.0, 40.0),
                diurnal_amp: 0.05,
                workday_boost: 0.04,
                change_threshold: 0.008,
                floor_fraction: 0.08,
                cap_fraction: 4.0,
            },
            Regime::Spiky => TraceGenConfig {
                base_fraction: 0.22,
                reversion: 0.10,
                sigma: 0.03,
                spikes_per_day: 18.0,
                spike_mult: (3.0, 12.0),
                spike_ramp_mins: (25.0, 55.0),
                spike_decay_mins: (20.0, 90.0),
                diurnal_amp: 0.03,
                workday_boost: 0.05,
                change_threshold: 0.01,
                floor_fraction: 0.08,
                cap_fraction: 4.0,
            },
            Regime::Diurnal => TraceGenConfig {
                base_fraction: 0.26,
                reversion: 0.06,
                sigma: 0.04,
                spikes_per_day: 8.0,
                spike_mult: (1.5, 4.0),
                spike_ramp_mins: (15.0, 40.0),
                spike_decay_mins: (15.0, 90.0),
                diurnal_amp: 0.18,
                workday_boost: 0.10,
                change_threshold: 0.008,
                floor_fraction: 0.1,
                cap_fraction: 4.0,
            },
        }
    }
}

/// Deterministic synthetic trace generator.
///
/// ```
/// use spottune_market::{instance, synth::{TraceGenerator, Regime}, time::SimDur};
///
/// let inst = instance::by_name("r3.xlarge").unwrap();
/// let gen = TraceGenerator::preset(Regime::Spiky);
/// let trace = gen.generate(&inst, SimDur::from_hours(24), 42);
/// assert_eq!(trace.len_minutes(), 24 * 60);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceGenConfig,
}

impl TraceGenerator {
    /// Creates a generator with explicit parameters.
    pub fn new(config: TraceGenConfig) -> Self {
        TraceGenerator { config }
    }

    /// Creates a generator from a regime preset.
    pub fn preset(regime: Regime) -> Self {
        TraceGenerator::new(TraceGenConfig::preset(regime))
    }

    /// Generator parameters.
    pub fn config(&self) -> &TraceGenConfig {
        &self.config
    }

    /// Generates a trace of length `total` for `instance`, deterministically
    /// derived from `seed`.
    pub fn generate(&self, instance: &InstanceType, total: SimDur, seed: u64) -> PriceTrace {
        let cfg = &self.config;
        let minutes = (total.as_secs() / MINUTE).max(1) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let od = instance.on_demand_price();
        let base = (cfg.base_fraction * od).ln();
        let floor = cfg.floor_fraction * od;
        let cap = cfg.cap_fraction * od;

        let mut latent = base;
        // Spike state machine: ramp toward `spike_target` at `spike_ramp`
        // per minute, then decay geometrically by `spike_decay`.
        let mut spike_level = 0.0f64; // additive log-space spike component
        let mut spike_target = 0.0f64;
        let mut spike_ramp = 0.0f64;
        let mut spike_decay = 0.0f64;
        let spike_prob_per_min = cfg.spikes_per_day / (24.0 * 60.0);

        let mut published = (cfg.base_fraction * od).clamp(floor, cap);
        let mut out = Vec::with_capacity(minutes);
        for m in 0..minutes {
            let t = SimTime::from_mins(m as u64);
            // Seasonal drift of the mean.
            let hour = t.hour_of_day() as f64;
            let season = cfg.diurnal_amp * ((hour - 14.0) / 24.0 * std::f64::consts::TAU).cos()
                + if t.is_workday() { cfg.workday_boost } else { 0.0 };
            let target = base + season;
            // Mean-reverting walk in log space.
            latent += cfg.reversion * (target - latent) + cfg.sigma * normal(&mut rng);
            // Spike arrivals: begin a slow ramp toward the peak. Arrivals
            // follow the demand cycle — bid wars concentrate in business
            // hours on workdays — which is what makes the hour-of-day and
            // workday features of the revocation predictors informative
            // (§III.B engineered them for exactly this reason).
            let demand = if t.is_workday() && (9..19).contains(&t.hour_of_day()) {
                2.5
            } else {
                0.4
            };
            if rng.random::<f64>() < spike_prob_per_min * demand {
                let mult = rng.random_range(cfg.spike_mult.0..cfg.spike_mult.1);
                spike_target = mult.ln();
                let ramp = rng.random_range(cfg.spike_ramp_mins.0..cfg.spike_ramp_mins.1);
                spike_ramp = spike_target / ramp.max(1.0);
                let half_life = rng.random_range(cfg.spike_decay_mins.0..cfg.spike_decay_mins.1);
                spike_decay = (0.5f64).powf(1.0 / half_life);
            }
            if spike_target > 0.0 {
                // Ramping phase.
                spike_level += spike_ramp;
                if spike_level >= spike_target {
                    spike_level = spike_target;
                    spike_target = 0.0; // switch to decay
                }
            } else {
                spike_level *= spike_decay;
            }
            let price = (latent + spike_level).exp().clamp(floor, cap);
            // Publish a new price only on a sufficiently large relative move,
            // so the trace is a realistic step function.
            if (price - published).abs() / published > cfg.change_threshold {
                published = price;
            }
            out.push(published);
        }
        PriceTrace::from_minutes(out)
    }
}

/// Standard normal sample via Box–Muller (rand has no gaussian sampler).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// The regime assigned to each catalog instance in the standard scenario.
///
/// Mix of stable and unstable markets, per §V.A: r4.2xlarge and m4.4xlarge
/// are stable (rarely refunded); r4.large and m4.2xlarge volatile;
/// r3.xlarge spiky (like Fig. 1); r4.xlarge diurnal.
pub fn regime_for(instance_name: &str) -> Regime {
    match instance_name {
        "r4.large" => Regime::Volatile,
        "r3.xlarge" => Regime::Spiky,
        "r4.xlarge" => Regime::Diurnal,
        "m4.2xlarge" => Regime::Volatile,
        "r4.2xlarge" => Regime::Stable,
        "m4.4xlarge" => Regime::Stable,
        _ => Regime::Volatile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance;

    fn r3() -> InstanceType {
        instance::by_name("r3.xlarge").unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let g = TraceGenerator::preset(Regime::Volatile);
        let a = g.generate(&r3(), SimDur::from_hours(6), 7);
        let b = g.generate(&r3(), SimDur::from_hours(6), 7);
        assert_eq!(a, b);
        let c = g.generate(&r3(), SimDur::from_hours(6), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn prices_respect_floor_and_cap() {
        let g = TraceGenerator::preset(Regime::Spiky);
        let inst = r3();
        let t = g.generate(&inst, SimDur::from_days(3), 11);
        let (lo, hi) = t.min_max();
        let cfg = g.config();
        assert!(lo >= cfg.floor_fraction * inst.on_demand_price() - 1e-12);
        assert!(hi <= cfg.cap_fraction * inst.on_demand_price() + 1e-12);
    }

    #[test]
    fn baseline_near_target_fraction() {
        let g = TraceGenerator::preset(Regime::Stable);
        let inst = r3();
        let t = g.generate(&inst, SimDur::from_days(5), 3);
        let avg = t.avg_over(SimTime::ZERO, SimTime::from_days(5));
        let target = g.config().base_fraction * inst.on_demand_price();
        assert!(
            (avg - target).abs() / target < 0.35,
            "avg {avg} too far from target {target}"
        );
    }

    #[test]
    fn stable_regime_changes_less_than_volatile() {
        let inst = r3();
        let stable = TraceGenerator::preset(Regime::Stable).generate(&inst, SimDur::from_days(2), 5);
        let volatile =
            TraceGenerator::preset(Regime::Volatile).generate(&inst, SimDur::from_days(2), 5);
        let window = (SimTime::ZERO, SimTime::from_days(2));
        assert!(stable.changes_in(window.0, window.1) < volatile.changes_in(window.0, window.1));
    }

    #[test]
    fn spiky_regime_reaches_above_on_demand() {
        let inst = r3();
        let t = TraceGenerator::preset(Regime::Spiky).generate(&inst, SimDur::from_days(11), 42);
        let (_, hi) = t.min_max();
        assert!(
            hi > inst.on_demand_price(),
            "expected at least one spike over on-demand, max was {hi}"
        );
    }

    #[test]
    fn every_catalog_instance_has_a_regime() {
        for i in instance::catalog() {
            let _ = regime_for(i.name());
        }
    }
}
