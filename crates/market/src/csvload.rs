//! Loader for real spot-price data in the Kaggle "AWS Spot Pricing Market"
//! CSV schema, so the synthetic traces can be swapped for the dataset the
//! paper used without touching any downstream code.
//!
//! Expected columns (header optional, comma-separated):
//!
//! ```text
//! timestamp,instance_type,os,region,price
//! 2017-04-26 14:31:02,r3.xlarge,Linux/UNIX,us-east-1a,0.3012
//! ```
//!
//! Timestamps may be either `YYYY-MM-DD HH:MM:SS` strings or raw epoch
//! seconds. The loader converts them to [`SimTime`] offsets from the earliest
//! record, groups records per instance type, and interpolates each group onto
//! the one-minute grid exactly as §IV.A.1 describes.

use crate::price::{PricePoint, PriceTrace};
use crate::time::{SimDur, SimTime};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error produced when parsing spot-price CSV data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCsvError {
    line: usize,
    reason: String,
}

impl ParseCsvError {
    fn new(line: usize, reason: impl Into<String>) -> Self {
        ParseCsvError { line, reason: reason.into() }
    }

    /// 1-based line number of the offending record.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseCsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid spot-price csv at line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseCsvError {}

/// One parsed record before interpolation.
#[derive(Debug, Clone, PartialEq)]
pub struct RawRecord {
    /// Epoch seconds (absolute).
    pub epoch: u64,
    /// Instance type name.
    pub instance_type: String,
    /// Price in USD per hour.
    pub price: f64,
}

/// Parses CSV text into raw records. Lines that are empty or start with `#`
/// are skipped; a header line (non-numeric timestamp column) is skipped too.
///
/// # Errors
///
/// Returns [`ParseCsvError`] on malformed rows (wrong column count,
/// unparsable timestamp or price, non-positive price).
pub fn parse_csv(text: &str) -> Result<Vec<RawRecord>, ParseCsvError> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let cols: Vec<&str> = line.split(',').map(str::trim).collect();
        if cols.len() < 3 {
            return Err(ParseCsvError::new(lineno, "expected at least 3 columns"));
        }
        let epoch = match parse_timestamp(cols[0]) {
            Some(e) => e,
            None if i == 0 => continue, // header
            None => return Err(ParseCsvError::new(lineno, format!("bad timestamp {:?}", cols[0]))),
        };
        // Price is the last column; instance type the second.
        let price: f64 = cols[cols.len() - 1]
            .parse()
            .map_err(|_| ParseCsvError::new(lineno, format!("bad price {:?}", cols[cols.len() - 1])))?;
        if !(price.is_finite() && price > 0.0) {
            return Err(ParseCsvError::new(lineno, format!("non-positive price {price}")));
        }
        out.push(RawRecord {
            epoch,
            instance_type: cols[1].to_string(),
            price,
        });
    }
    Ok(out)
}

/// Parses `YYYY-MM-DD HH:MM:SS` or raw epoch seconds into epoch seconds.
///
/// The calendar conversion treats the date as days since 1970-01-01 using the
/// proleptic Gregorian calendar — exact for the dataset's 2017 range.
fn parse_timestamp(s: &str) -> Option<u64> {
    if let Ok(epoch) = s.parse::<u64>() {
        return Some(epoch);
    }
    let bytes = s.as_bytes();
    if bytes.len() < 19 {
        return None;
    }
    let date = &s[..10];
    let time = &s[11..19];
    let mut dparts = date.split('-');
    let (y, mo, d) = (
        dparts.next()?.parse::<i64>().ok()?,
        dparts.next()?.parse::<u32>().ok()?,
        dparts.next()?.parse::<u32>().ok()?,
    );
    let mut tparts = time.split(':');
    let (h, mi, se) = (
        tparts.next()?.parse::<u64>().ok()?,
        tparts.next()?.parse::<u64>().ok()?,
        tparts.next()?.parse::<u64>().ok()?,
    );
    if !(1..=12).contains(&mo) || !(1..=31).contains(&d) || h > 23 || mi > 59 || se > 59 {
        return None;
    }
    let days = days_from_civil(y, mo, d);
    if days < 0 {
        return None;
    }
    Some(days as u64 * 86_400 + h * 3_600 + mi * 60 + se)
}

/// Days since 1970-01-01 (Howard Hinnant's `days_from_civil` algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64;
    let mp = ((m + 9) % 12) as u64;
    let doy = (153 * mp + 2) / 5 + d as u64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i64 - 719_468
}

/// Groups records per instance type and interpolates each group onto the
/// one-minute grid. Time zero is the earliest record across all groups.
///
/// Returns traces in instance-name order. Instance types with no record at
/// the global start time get their first observed price carried *backward*
/// to the start (the dataset the paper uses begins mid-stream for some
/// markets).
pub fn traces_from_records(records: &[RawRecord]) -> BTreeMap<String, PriceTrace> {
    let mut map: BTreeMap<String, Vec<&RawRecord>> = BTreeMap::new();
    for r in records {
        map.entry(r.instance_type.clone()).or_default().push(r);
    }
    let Some(t0) = records.iter().map(|r| r.epoch).min() else {
        return BTreeMap::new();
    };
    let t_end = records.iter().map(|r| r.epoch).max().unwrap_or(t0);
    let total = SimDur::from_secs((t_end - t0).max(60) + 60);
    let mut out = BTreeMap::new();
    for (name, mut recs) in map {
        recs.sort_by_key(|r| r.epoch);
        let mut points: Vec<PricePoint> = Vec::with_capacity(recs.len() + 1);
        // Carry the first price backward to the global start.
        points.push(PricePoint { at: SimTime::ZERO, price: recs[0].price });
        for r in &recs {
            points.push(PricePoint {
                at: SimTime::from_secs(r.epoch - t0),
                price: r.price,
            });
        }
        out.insert(name, PriceTrace::from_records(&points, total));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
timestamp,instance_type,os,region,price
2017-04-26 00:00:00,r3.xlarge,Linux/UNIX,us-east-1a,0.30
2017-04-26 00:05:00,r3.xlarge,Linux/UNIX,us-east-1a,0.35
2017-04-26 00:02:00,r4.large,Linux/UNIX,us-east-1a,0.04
";

    #[test]
    fn parses_headered_csv() {
        let recs = parse_csv(SAMPLE).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].instance_type, "r3.xlarge");
        assert_eq!(recs[0].price, 0.30);
        assert_eq!(recs[1].epoch - recs[0].epoch, 300);
    }

    #[test]
    fn epoch_timestamps_accepted() {
        let recs = parse_csv("100,r4.large,l,r,0.05\n160,r4.large,l,r,0.06\n").unwrap();
        assert_eq!(recs[1].epoch, 160);
    }

    #[test]
    fn bad_rows_are_reported_with_line_numbers() {
        let err = parse_csv("100,r4.large,l,r,0.05\nbogus,r4.large,l,r,0.05\n").unwrap_err();
        assert_eq!(err.line(), 2);
        let err = parse_csv("100,r4.large,l,r,-3\n").unwrap_err();
        assert!(err.to_string().contains("non-positive"));
    }

    #[test]
    fn traces_interpolate_on_minute_grid() {
        let recs = parse_csv(SAMPLE).unwrap();
        let traces = traces_from_records(&recs);
        assert_eq!(traces.len(), 2);
        let r3 = &traces["r3.xlarge"];
        assert_eq!(r3.price_at(SimTime::from_mins(0)), 0.30);
        assert_eq!(r3.price_at(SimTime::from_mins(4)), 0.30);
        assert_eq!(r3.price_at(SimTime::from_mins(5)), 0.35);
        // r4.large's first record (at +2 min) is carried back to the start.
        let r4 = &traces["r4.large"];
        assert_eq!(r4.price_at(SimTime::ZERO), 0.04);
    }

    #[test]
    fn civil_date_conversion_matches_known_epochs() {
        // 2017-04-26 00:00:00 UTC = 1493164800.
        assert_eq!(parse_timestamp("2017-04-26 00:00:00"), Some(1_493_164_800));
        // 1970-01-01.
        assert_eq!(parse_timestamp("1970-01-01 00:00:00"), Some(0));
    }

    #[test]
    fn empty_input_yields_no_traces() {
        assert!(traces_from_records(&[]).is_empty());
        assert!(parse_csv("").unwrap().is_empty());
    }
}
