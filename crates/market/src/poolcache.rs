//! Cross-request market-pool tier: scenario-keyed, `Arc`-backed sharing of
//! constructed [`MarketPool`]s.
//!
//! A multi-campaign sweep evaluates many (workload, θ, seed) points against
//! the *same* few market scenarios. Generating the standard six-market pool
//! for a 12-day trace costs ~100 k synthetic samples plus the prefix/change/
//! run/block caches per market, so a long-running server must build each
//! scenario once and hand out reference-counted clones — [`MarketPool`] is
//! already `Arc`-backed, making a cache hit a pointer bump.

use crate::market::MarketPool;
use crate::time::SimDur;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Identifies one reproducible market environment: the standard Table-III
/// catalog with synthetic traces of `trace_mins` minutes derived from
/// `seed` (see [`MarketPool::standard`]).
///
/// This is the wire-level key of the pool tier: requests name a scenario
/// instead of shipping megabytes of price traces, and equal scenarios are
/// guaranteed to resolve to the identical (shared) pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MarketScenario {
    /// Trace length in minutes.
    pub trace_mins: u64,
    /// Master seed the per-market trace seeds derive from.
    pub seed: u64,
}

impl MarketScenario {
    /// Scenario covering `total` of simulated time.
    pub fn new(total: SimDur, seed: u64) -> Self {
        MarketScenario { trace_mins: total.as_secs() / crate::time::MINUTE, seed }
    }

    /// Scenario covering `days` days (the evaluation standard is 12).
    pub fn from_days(days: u64, seed: u64) -> Self {
        MarketScenario::new(SimDur::from_days(days), seed)
    }

    /// Total trace duration.
    pub fn total(&self) -> SimDur {
        SimDur::from_mins(self.trace_mins)
    }

    /// Constructs the pool this scenario describes (cache-independent).
    pub fn build(&self) -> MarketPool {
        MarketPool::standard(self.total(), self.seed)
    }
}

/// Hit/miss counters of a shared cache tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build/compute the entry.
    pub misses: u64,
    /// Entries dropped to respect a capacity bound (0 for unbounded tiers).
    pub evictions: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups() as f64
    }
}

/// A shared, thread-safe pool tier keyed by [`MarketScenario`].
///
/// Cloning the cache clones a handle to the same tier (the server hands one
/// to every worker). The map mutex guards only the entry lookup; the
/// expensive pool construction runs inside a per-scenario `OnceLock`, so
/// distinct cold scenarios build in parallel, hits never wait behind a
/// build, and two workers racing on the *same* cold scenario still pay the
/// construction cost once.
#[derive(Debug, Clone, Default)]
pub struct PoolCache {
    inner: Arc<PoolCacheInner>,
}

#[derive(Debug, Default)]
struct PoolCacheInner {
    pools: Mutex<BTreeMap<MarketScenario, Arc<OnceLock<MarketPool>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl PoolCache {
    /// Creates an empty tier.
    pub fn new() -> Self {
        PoolCache::default()
    }

    /// The pool for `scenario`: a shared clone on a hit, built (and
    /// retained) on a miss. The requester that creates the entry counts
    /// the miss and builds; concurrent same-scenario requesters count hits
    /// and block only on that entry.
    pub fn get(&self, scenario: MarketScenario) -> MarketPool {
        let cell = {
            let mut pools = self.inner.pools.lock().expect("pool cache lock");
            match pools.get(&scenario) {
                Some(cell) => {
                    self.inner.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(cell)
                }
                None => {
                    self.inner.misses.fetch_add(1, Ordering::Relaxed);
                    let cell = Arc::new(OnceLock::new());
                    pools.insert(scenario, Arc::clone(&cell));
                    cell
                }
            }
        };
        cell.get_or_init(|| scenario.build()).clone()
    }

    /// Number of distinct scenarios currently resident.
    pub fn len(&self) -> usize {
        self.inner.pools.lock().expect("pool cache lock").len()
    }

    /// Whether no scenario has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident pool (counters are retained).
    pub fn clear(&self) {
        self.inner.pools.lock().expect("pool cache lock").clear();
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_share_the_same_markets() {
        let cache = PoolCache::new();
        let scenario = MarketScenario::from_days(1, 7);
        let a = cache.get(scenario);
        let b = cache.get(scenario);
        // Same Arc-backed pool, not a rebuilt equal one.
        assert!(std::ptr::eq(a.markets(), b.markets()));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_scenarios_build_distinct_pools() {
        let cache = PoolCache::new();
        let a = cache.get(MarketScenario::from_days(1, 7));
        let b = cache.get(MarketScenario::from_days(1, 8));
        assert!(!std::ptr::eq(a.markets(), b.markets()));
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn scenario_reproduces_standard_pool() {
        let scenario = MarketScenario::from_days(1, 42);
        assert_eq!(scenario.build(), MarketPool::standard(SimDur::from_days(1), 42));
        assert_eq!(scenario.total(), SimDur::from_days(1));
    }

    #[test]
    fn hit_rate_reports_fraction() {
        let stats = CacheStats { hits: 3, misses: 1, evictions: 0 };
        assert!((stats.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        assert_eq!(stats.lookups(), 4);
    }

    #[test]
    fn shared_handles_see_each_other() {
        let cache = PoolCache::new();
        let clone = cache.clone();
        clone.get(MarketScenario::from_days(1, 3));
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
    }
}
