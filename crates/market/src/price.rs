//! Spot-price traces on a uniform one-minute grid.
//!
//! The paper preprocesses the sparse Kaggle price records "by interpolating
//! values between records, making the timestamp interval between adjacent
//! records fixed at 1 minute" (§IV.A.1). [`PriceTrace`] is that interpolated
//! representation, and the window queries on it supply RevPred's engineered
//! features.

use crate::time::{SimDur, SimTime, HOUR, MINUTE};
use serde::{Deserialize, Serialize};

/// One raw spot-price record: the market price that became effective at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricePoint {
    /// Instant the price became effective.
    pub at: SimTime,
    /// Price in USD per hour.
    pub price: f64,
}

/// A spot-price time series with one sample per minute.
///
/// Prices are step functions: the value sampled at minute `m` holds for the
/// whole minute `[m, m+1)`, and the last sample is carried forward past the
/// trace end, so simulations that run slightly past the end remain
/// well-defined. Window queries account for that extension explicitly: a
/// window past the end averages the (still effective) last price rather
/// than silently reporting a clamped in-trace sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceTrace {
    /// Price per minute, `per_minute[i]` effective during minute `i`.
    per_minute: Vec<f64>,
    /// Prefix sums: `prefix[i]` = sum of `per_minute[..i]`. Makes every
    /// window average O(1); the orchestrator's provisioner calls
    /// `avg_last_hour` for all six markets on every deploy decision.
    prefix: Vec<f64>,
    /// Prefix change counts: `change_prefix[i]` = number of `k ∈ 1..=i`
    /// with `per_minute[k] != per_minute[k-1]` (`change_prefix[0] = 0`).
    change_prefix: Vec<u32>,
    /// `run_start[i]` = first minute of the constant-price run containing
    /// minute `i` (O(1) `duration_since_change`).
    run_start: Vec<u32>,
    /// Per-64-minute-block maxima: `first_exceed` (called on every spot
    /// request to derive the VM's revocation instant) skips whole blocks
    /// whose maximum is below the threshold instead of scanning every
    /// minute to the end of the trace.
    block_max: Vec<f64>,
}

/// Minutes per [`PriceTrace::block_max`] block.
const BLOCK: usize = 64;

impl PriceTrace {
    /// Builds a trace directly from per-minute samples.
    ///
    /// # Panics
    ///
    /// Panics if `per_minute` is empty or contains a non-finite or
    /// non-positive sample.
    pub fn from_minutes(per_minute: Vec<f64>) -> Self {
        assert!(!per_minute.is_empty(), "price trace must not be empty");
        for (i, &p) in per_minute.iter().enumerate() {
            assert!(
                p.is_finite() && p > 0.0,
                "price sample {i} must be finite and positive, got {p}"
            );
        }
        let mut prefix = Vec::with_capacity(per_minute.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for &p in &per_minute {
            acc += p;
            prefix.push(acc);
        }
        let mut change_prefix = Vec::with_capacity(per_minute.len());
        let mut run_start = Vec::with_capacity(per_minute.len());
        change_prefix.push(0);
        run_start.push(0);
        for i in 1..per_minute.len() {
            let changed = per_minute[i] != per_minute[i - 1];
            change_prefix.push(change_prefix[i - 1] + u32::from(changed));
            run_start.push(if changed { i as u32 } else { run_start[i - 1] });
        }
        let block_max = per_minute
            .chunks(BLOCK)
            .map(|c| c.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)))
            .collect();
        PriceTrace { per_minute, prefix, change_prefix, run_start, block_max }
    }

    /// Interpolates sparse records onto the one-minute grid by carrying each
    /// price forward until the next record (step-function semantics).
    ///
    /// `total` is the desired trace length; records after `total` are
    /// ignored. The first record must be at or before the trace start.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty, not sorted by time, or the first record
    /// starts after `SimTime::ZERO`.
    pub fn from_records(records: &[PricePoint], total: SimDur) -> Self {
        assert!(!records.is_empty(), "need at least one price record");
        assert!(
            records[0].at == SimTime::ZERO || records[0].at.as_secs() == 0,
            "first record must start the trace"
        );
        for w in records.windows(2) {
            assert!(w[0].at <= w[1].at, "records must be sorted by time");
        }
        let minutes = (total.as_secs() / MINUTE).max(1) as usize;
        let mut per_minute = Vec::with_capacity(minutes);
        let mut idx = 0usize;
        for m in 0..minutes {
            let t = SimTime::from_mins(m as u64);
            while idx + 1 < records.len() && records[idx + 1].at <= t {
                idx += 1;
            }
            per_minute.push(records[idx].price);
        }
        PriceTrace::from_minutes(per_minute)
    }

    /// Number of minutes covered by the trace.
    pub fn len_minutes(&self) -> usize {
        self.per_minute.len()
    }

    /// Total trace duration.
    pub fn duration(&self) -> SimDur {
        SimDur::from_mins(self.per_minute.len() as u64)
    }

    /// The market price effective at instant `t` (clamped to the trace).
    pub fn price_at(&self, t: SimTime) -> f64 {
        let m = (t.minute_index() as usize).min(self.per_minute.len() - 1);
        self.per_minute[m]
    }

    /// In-trace per-minute samples of the window `[from, to)`.
    ///
    /// Empty when the window is empty (`to ≤ from`) or lies entirely past
    /// the trace end; the past-end extension (the last sample carried
    /// forward) is not materialized as a slice — use [`Self::avg_over`] and
    /// friends for queries that must account for it.
    pub fn window(&self, from: SimTime, to: SimTime) -> &[f64] {
        let (lo, hi) = self.window_bounds(from, to);
        let n = self.per_minute.len();
        &self.per_minute[lo.min(n)..hi.min(n)]
    }

    /// Minute bounds `[lo, hi)` of a window, with `hi ≥ lo` (a reversed
    /// window is empty, not reordered). Bounds are *not* clamped to the
    /// trace: minutes at or past `len` refer to the step-function extension
    /// (the last sample carried forward), and each query accounts for that
    /// extension explicitly instead of silently shrinking the window.
    #[inline]
    fn window_bounds(&self, from: SimTime, to: SimTime) -> (usize, usize) {
        let lo = from.minute_index() as usize;
        let hi = (to.minute_index() as usize).max(lo);
        (lo, hi)
    }

    /// Average price over `[from, to)` — O(1) via the prefix-sum cache.
    ///
    /// The average is taken over the step function extended past the trace
    /// end by the last sample, so windows that overlap or lie past the end
    /// are weighted honestly rather than truncated. A degenerate window
    /// (`to ≤ from`) has zero measure; its "average" is defined as the
    /// instantaneous price at `from`, which keeps `avg_last_hour` at the
    /// very first instant well-defined.
    pub fn avg_over(&self, from: SimTime, to: SimTime) -> f64 {
        let (lo, hi) = self.window_bounds(from, to);
        if hi == lo {
            return self.price_at(from);
        }
        let n = self.per_minute.len();
        let in_lo = lo.min(n);
        let in_hi = hi.min(n);
        // Window minutes not covered by the trace carry the last sample.
        let past_minutes = (hi - lo) - (in_hi - in_lo);
        let last = self.per_minute[n - 1];
        let sum = (self.prefix[in_hi] - self.prefix[in_lo]) + past_minutes as f64 * last;
        sum / (hi - lo) as f64
    }

    /// Average price over the hour preceding `t` — the `price` used in the
    /// expected-cost formula (paper Eq. 1: "the average price of this
    /// instance in the last hour").
    pub fn avg_last_hour(&self, t: SimTime) -> f64 {
        self.avg_over(t.saturating_sub(SimDur::from_secs(HOUR)), t)
    }

    /// Number of price *changes* in `[from, to)` — O(1) via the
    /// change-count prefix cache.
    ///
    /// A change event happens at the start of minute `k ≥ 1` when
    /// `per_minute[k] != per_minute[k - 1]`; the count covers the events
    /// at minute starts `k ∈ [from.minute_index(), to.minute_index())` —
    /// window endpoints floor to the trace's one-minute grid, like every
    /// other window query. The extension past the trace end holds the
    /// last price forever, so it contributes no events, and an empty
    /// window reports zero (the old clamping counted one sample as a
    /// window and misattributed the window-edge events).
    pub fn changes_in(&self, from: SimTime, to: SimTime) -> usize {
        let (lo, hi) = self.window_bounds(from, to);
        (self.change_events_before(hi) - self.change_events_before(lo)) as usize
    }

    /// Number of change events at minute starts `k < x` (change events
    /// exist only for `k ∈ [1, len)`).
    #[inline]
    fn change_events_before(&self, x: usize) -> u32 {
        if x == 0 {
            0
        } else {
            self.change_prefix[(x - 1).min(self.per_minute.len() - 1)]
        }
    }

    /// How long the price effective at `t` has held (time since last
    /// change) — O(1) via the run-start cache.
    ///
    /// Past the trace end the last price is still in effect (the step
    /// function extends), so the hold time keeps growing with `t` instead
    /// of being clamped to the last in-trace minute — clamping would
    /// under-report hold time for late-horizon deploy decisions.
    pub fn duration_since_change(&self, t: SimTime) -> SimDur {
        let m = t.minute_index() as usize;
        let idx = m.min(self.per_minute.len() - 1);
        SimDur::from_mins((m - self.run_start[idx] as usize) as u64)
    }

    /// First instant in `[from, from + horizon)` at which the price strictly
    /// exceeds `threshold`, if any. This is the ground-truth revocation test:
    /// "once the spot market price is over the user's maximum price, the
    /// instance would be revoked" (§II.A).
    ///
    /// Honors the same step-function extension as the other window queries:
    /// past the trace end the last sample is still the effective price, so a
    /// query starting there can still report an exceedance instead of the
    /// market inconsistently never revoking while `price_at` reads
    /// over-threshold.
    pub fn first_exceed(&self, from: SimTime, horizon: SimDur, threshold: f64) -> Option<SimTime> {
        // An empty window contains no instant, whatever the price does.
        if horizon == SimDur::ZERO {
            return None;
        }
        let n = self.per_minute.len();
        let lo = from.minute_index() as usize;
        let hi = ((from + horizon).as_secs().div_ceil(MINUTE) as usize).min(n);
        // Query window entirely past the end: the extended (last) price
        // holds throughout, so it exceeds at `from` or never. (A window
        // merely straddling the end needs no special case — the extension
        // equals the last in-trace sample, which the scan below visits.)
        if lo >= n {
            return (self.per_minute[n - 1] > threshold).then_some(from);
        }
        let mut m = lo;
        while m < hi {
            // Skip whole blocks that cannot contain an exceedance.
            if m.is_multiple_of(BLOCK) && m + BLOCK <= hi && self.block_max[m / BLOCK] <= threshold {
                m += BLOCK;
                continue;
            }
            let end = hi.min((m / BLOCK + 1) * BLOCK);
            for i in m..end {
                if self.per_minute[i] > threshold {
                    return Some(SimTime::from_mins(i as u64).max(from));
                }
            }
            m = end;
        }
        None
    }

    /// Absolute per-minute price deltas over `[from, to)`; input to the
    /// Algorithm-2 trimmed-mean delta (see [`crate::stats::trimmed_mean`]).
    pub fn abs_deltas(&self, from: SimTime, to: SimTime) -> Vec<f64> {
        self.window(from, to)
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .collect()
    }

    /// Iterator over `(minute_start, price)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.per_minute
            .iter()
            .enumerate()
            .map(|(m, &p)| (SimTime::from_mins(m as u64), p))
    }

    /// Minimum and maximum price over the whole trace.
    pub fn min_max(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &p in &self.per_minute {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> PriceTrace {
        // 0.1, 0.2, ..., 1.0 over ten minutes.
        PriceTrace::from_minutes((1..=10).map(|i| i as f64 / 10.0).collect())
    }

    #[test]
    fn price_at_steps_and_clamps() {
        let t = ramp();
        assert_eq!(t.price_at(SimTime::ZERO), 0.1);
        assert_eq!(t.price_at(SimTime::from_secs(59)), 0.1);
        assert_eq!(t.price_at(SimTime::from_secs(60)), 0.2);
        // Past the end clamps to the last sample.
        assert_eq!(t.price_at(SimTime::from_hours(5)), 1.0);
    }

    #[test]
    fn from_records_carries_forward() {
        let recs = vec![
            PricePoint { at: SimTime::ZERO, price: 0.5 },
            PricePoint { at: SimTime::from_mins(3), price: 0.7 },
        ];
        let t = PriceTrace::from_records(&recs, SimDur::from_mins(5));
        assert_eq!(t.len_minutes(), 5);
        assert_eq!(t.price_at(SimTime::from_mins(2)), 0.5);
        assert_eq!(t.price_at(SimTime::from_mins(3)), 0.7);
        assert_eq!(t.price_at(SimTime::from_mins(4)), 0.7);
    }

    #[test]
    fn avg_and_changes() {
        let t = ramp();
        let avg = t.avg_over(SimTime::ZERO, SimTime::from_mins(10));
        assert!((avg - 0.55).abs() < 1e-12);
        assert_eq!(t.changes_in(SimTime::ZERO, SimTime::from_mins(10)), 9);
        let flat = PriceTrace::from_minutes(vec![0.3; 10]);
        assert_eq!(flat.changes_in(SimTime::ZERO, SimTime::from_mins(10)), 0);
    }

    #[test]
    fn duration_since_change_counts_back() {
        let t = PriceTrace::from_minutes(vec![0.1, 0.1, 0.2, 0.2, 0.2, 0.3]);
        assert_eq!(t.duration_since_change(SimTime::from_mins(4)).as_secs(), 2 * MINUTE);
        assert_eq!(t.duration_since_change(SimTime::from_mins(1)).as_secs(), MINUTE);
        assert_eq!(t.duration_since_change(SimTime::from_mins(5)).as_secs(), 0);
    }

    #[test]
    fn first_exceed_finds_revocation_minute() {
        let t = ramp();
        let hit = t.first_exceed(SimTime::ZERO, SimDur::from_hours(1), 0.45);
        assert_eq!(hit, Some(SimTime::from_mins(4))); // price 0.5 > 0.45
        assert_eq!(t.first_exceed(SimTime::ZERO, SimDur::from_hours(1), 2.0), None);
        // Horizon limits the search.
        assert_eq!(t.first_exceed(SimTime::ZERO, SimDur::from_mins(3), 0.45), None);
    }

    #[test]
    fn avg_last_hour_clamps_to_start() {
        let t = ramp();
        let a = t.avg_last_hour(SimTime::from_mins(2));
        assert!((a - 0.15).abs() < 1e-12); // minutes 0 and 1
    }

    #[test]
    fn cached_queries_match_naive_scans() {
        // Pseudo-random trace with constant runs, exercising the prefix
        // caches against the original O(window) definitions.
        let mut prices = Vec::new();
        let mut x = 7u64;
        while prices.len() < 300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let level = 0.05 + (x >> 33) as f64 / u32::MAX as f64;
            let run = 1 + (x % 7) as usize;
            for _ in 0..run {
                prices.push(level);
            }
        }
        prices.truncate(300);
        let t = PriceTrace::from_minutes(prices.clone());
        let n = prices.len();
        // Extended step function: the last sample holds past the trace end.
        let extended = |m: usize| prices[m.min(n - 1)];
        for &(a, b) in &[
            (0u64, 10u64),
            (5, 5),
            (17, 120),
            (250, 400),
            (299, 300),
            (0, 300),
            (310, 340),
            (302, 302),
        ] {
            let (from, to) = (SimTime::from_mins(a), SimTime::from_mins(b));
            let naive_avg = if a == b {
                extended(a as usize)
            } else {
                (a..b).map(|m| extended(m as usize)).sum::<f64>() / (b - a) as f64
            };
            assert!((t.avg_over(from, to) - naive_avg).abs() < 1e-9, "avg window {a}..{b}");
            let naive_changes = (a.max(1)..b.min(n as u64))
                .filter(|&k| prices[k as usize] != prices[k as usize - 1])
                .count();
            assert_eq!(t.changes_in(from, to), naive_changes, "changes window {a}..{b}");
        }
        for &(from_min, horizon_min, thr) in &[
            (0u64, 400u64, 0.3),
            (10, 50, 0.6),
            (100, 400, 10.0),
            (250, 400, 0.2),
            (63, 130, 0.5),
        ] {
            let from = SimTime::from_mins(from_min);
            let hi = ((from_min + horizon_min) as usize).min(prices.len());
            let naive = (from_min as usize..hi)
                .find(|&m| prices[m] > thr)
                .map(|m| SimTime::from_mins(m as u64).max(from));
            assert_eq!(
                t.first_exceed(from, SimDur::from_mins(horizon_min), thr),
                naive,
                "first_exceed from {from_min} thr {thr}"
            );
        }
        for m in [0usize, 1, 13, 150, 299, 500] {
            let idx = m.min(prices.len() - 1);
            let mut back = idx;
            while back > 0 && prices[back - 1] == prices[idx] {
                back -= 1;
            }
            // Past the trace end the last price is still in effect, so the
            // hold time keeps growing with `m`.
            assert_eq!(
                t.duration_since_change(SimTime::from_mins(m as u64)),
                SimDur::from_mins((m - back) as u64),
                "run length at minute {m}"
            );
        }
    }

    #[test]
    fn empty_window_is_instantaneous_not_one_sample() {
        let t = ramp();
        // Zero-measure window: defined as the instantaneous price.
        assert_eq!(t.avg_over(SimTime::from_mins(3), SimTime::from_mins(3)), 0.4);
        assert_eq!(t.changes_in(SimTime::from_mins(3), SimTime::from_mins(3)), 0);
        // A reversed window is empty too, not reordered.
        assert_eq!(t.changes_in(SimTime::from_mins(7), SimTime::from_mins(3)), 0);
        assert!(t.window(SimTime::from_mins(3), SimTime::from_mins(3)).is_empty());
    }

    #[test]
    fn change_at_window_start_is_counted() {
        // Change event at minute 1; the window [1, 2) must see it (the old
        // prefix indexing dropped window-edge events).
        let t = PriceTrace::from_minutes(vec![0.1, 0.2, 0.2, 0.2]);
        assert_eq!(t.changes_in(SimTime::from_mins(1), SimTime::from_mins(2)), 1);
        assert_eq!(t.changes_in(SimTime::from_mins(2), SimTime::from_mins(4)), 0);
        // The event instant is minute 1 exactly: windows strictly after miss it.
        assert_eq!(t.changes_in(SimTime::from_mins(2), SimTime::from_mins(3)), 0);
    }

    #[test]
    fn past_end_queries_extend_the_last_price() {
        // Ten minutes ending at 1.0; queries past the end see 1.0 forever.
        let t = ramp();
        // Window fully past the end: the average is the extended price.
        let avg = t.avg_over(SimTime::from_mins(20), SimTime::from_mins(30));
        assert!((avg - 1.0).abs() < 1e-12);
        // Window straddling the end: honest time-weighted blend, not a
        // truncated in-trace average.
        let avg = t.avg_over(SimTime::from_mins(8), SimTime::from_mins(12));
        assert!((avg - (0.9 + 1.0 + 1.0 + 1.0) / 4.0).abs() < 1e-12);
        // No change events past the end (the last event is at minute 9).
        assert_eq!(t.changes_in(SimTime::from_mins(9), SimTime::from_mins(40)), 1);
        assert_eq!(t.changes_in(SimTime::from_mins(10), SimTime::from_mins(40)), 0);
        // Hold time keeps growing past the end: the last run started at
        // minute 9, so at minute 25 the price has held 16 minutes.
        assert_eq!(
            t.duration_since_change(SimTime::from_mins(25)),
            SimDur::from_mins(16)
        );
        // Revocation ground truth honors the extension too: past the end
        // the (still effective) last price of 1.0 exceeds a 0.9 offer at
        // the query instant itself, and never exceeds a 1.5 offer.
        assert_eq!(
            t.first_exceed(SimTime::from_mins(30), SimDur::from_hours(1), 0.9),
            Some(SimTime::from_mins(30))
        );
        assert_eq!(t.first_exceed(SimTime::from_mins(30), SimDur::from_hours(1), 1.5), None);
        // Empty windows contain no instant, at any alignment, in or out of
        // the trace.
        assert_eq!(t.first_exceed(SimTime::from_mins(30), SimDur::ZERO, 0.9), None);
        assert_eq!(t.first_exceed(SimTime::from_secs(1830), SimDur::ZERO, 0.5), None);
        assert_eq!(t.first_exceed(SimTime::from_secs(510), SimDur::ZERO, 0.5), None);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_trace_rejected() {
        let _ = PriceTrace::from_minutes(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn nonpositive_sample_rejected() {
        let _ = PriceTrace::from_minutes(vec![0.1, 0.0]);
    }
}
