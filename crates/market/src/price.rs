//! Spot-price traces on a uniform one-minute grid.
//!
//! The paper preprocesses the sparse Kaggle price records "by interpolating
//! values between records, making the timestamp interval between adjacent
//! records fixed at 1 minute" (§IV.A.1). [`PriceTrace`] is that interpolated
//! representation, and the window queries on it supply RevPred's engineered
//! features.

use crate::time::{SimDur, SimTime, HOUR, MINUTE};
use serde::{Deserialize, Serialize};

/// One raw spot-price record: the market price that became effective at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricePoint {
    /// Instant the price became effective.
    pub at: SimTime,
    /// Price in USD per hour.
    pub price: f64,
}

/// A spot-price time series with one sample per minute.
///
/// Prices are step functions: the value sampled at minute `m` holds for the
/// whole minute `[m, m+1)`. Queries outside the trace clamp to the first /
/// last sample, so simulations that run slightly past the trace end remain
/// well-defined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceTrace {
    /// Price per minute, `per_minute[i]` effective during minute `i`.
    per_minute: Vec<f64>,
    /// Prefix sums: `prefix[i]` = sum of `per_minute[..i]`. Makes every
    /// window average O(1); the orchestrator's provisioner calls
    /// `avg_last_hour` for all six markets on every deploy decision.
    prefix: Vec<f64>,
    /// Prefix change counts: `change_prefix[i]` = number of `k ∈ 1..=i`
    /// with `per_minute[k] != per_minute[k-1]` (`change_prefix[0] = 0`).
    change_prefix: Vec<u32>,
    /// `run_start[i]` = first minute of the constant-price run containing
    /// minute `i` (O(1) `duration_since_change`).
    run_start: Vec<u32>,
    /// Per-64-minute-block maxima: `first_exceed` (called on every spot
    /// request to derive the VM's revocation instant) skips whole blocks
    /// whose maximum is below the threshold instead of scanning every
    /// minute to the end of the trace.
    block_max: Vec<f64>,
}

/// Minutes per [`PriceTrace::block_max`] block.
const BLOCK: usize = 64;

impl PriceTrace {
    /// Builds a trace directly from per-minute samples.
    ///
    /// # Panics
    ///
    /// Panics if `per_minute` is empty or contains a non-finite or
    /// non-positive sample.
    pub fn from_minutes(per_minute: Vec<f64>) -> Self {
        assert!(!per_minute.is_empty(), "price trace must not be empty");
        for (i, &p) in per_minute.iter().enumerate() {
            assert!(
                p.is_finite() && p > 0.0,
                "price sample {i} must be finite and positive, got {p}"
            );
        }
        let mut prefix = Vec::with_capacity(per_minute.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for &p in &per_minute {
            acc += p;
            prefix.push(acc);
        }
        let mut change_prefix = Vec::with_capacity(per_minute.len());
        let mut run_start = Vec::with_capacity(per_minute.len());
        change_prefix.push(0);
        run_start.push(0);
        for i in 1..per_minute.len() {
            let changed = per_minute[i] != per_minute[i - 1];
            change_prefix.push(change_prefix[i - 1] + u32::from(changed));
            run_start.push(if changed { i as u32 } else { run_start[i - 1] });
        }
        let block_max = per_minute
            .chunks(BLOCK)
            .map(|c| c.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)))
            .collect();
        PriceTrace { per_minute, prefix, change_prefix, run_start, block_max }
    }

    /// Interpolates sparse records onto the one-minute grid by carrying each
    /// price forward until the next record (step-function semantics).
    ///
    /// `total` is the desired trace length; records after `total` are
    /// ignored. The first record must be at or before the trace start.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty, not sorted by time, or the first record
    /// starts after `SimTime::ZERO`.
    pub fn from_records(records: &[PricePoint], total: SimDur) -> Self {
        assert!(!records.is_empty(), "need at least one price record");
        assert!(
            records[0].at == SimTime::ZERO || records[0].at.as_secs() == 0,
            "first record must start the trace"
        );
        for w in records.windows(2) {
            assert!(w[0].at <= w[1].at, "records must be sorted by time");
        }
        let minutes = (total.as_secs() / MINUTE).max(1) as usize;
        let mut per_minute = Vec::with_capacity(minutes);
        let mut idx = 0usize;
        for m in 0..minutes {
            let t = SimTime::from_mins(m as u64);
            while idx + 1 < records.len() && records[idx + 1].at <= t {
                idx += 1;
            }
            per_minute.push(records[idx].price);
        }
        PriceTrace::from_minutes(per_minute)
    }

    /// Number of minutes covered by the trace.
    pub fn len_minutes(&self) -> usize {
        self.per_minute.len()
    }

    /// Total trace duration.
    pub fn duration(&self) -> SimDur {
        SimDur::from_mins(self.per_minute.len() as u64)
    }

    /// The market price effective at instant `t` (clamped to the trace).
    pub fn price_at(&self, t: SimTime) -> f64 {
        let m = (t.minute_index() as usize).min(self.per_minute.len() - 1);
        self.per_minute[m]
    }

    /// Per-minute samples in `[from, to)`, clamped to the trace bounds.
    ///
    /// Returns at least one sample (the clamped endpoint) when the window is
    /// degenerate.
    pub fn window(&self, from: SimTime, to: SimTime) -> &[f64] {
        let lo = (from.minute_index() as usize).min(self.per_minute.len() - 1);
        let hi = (to.minute_index() as usize)
            .max(lo + 1)
            .min(self.per_minute.len());
        &self.per_minute[lo..hi]
    }

    /// Clamped `[lo, hi)` minute bounds shared by the window queries
    /// (identical to [`Self::window`]'s clamping: at least one sample).
    #[inline]
    fn window_bounds(&self, from: SimTime, to: SimTime) -> (usize, usize) {
        let lo = (from.minute_index() as usize).min(self.per_minute.len() - 1);
        let hi = (to.minute_index() as usize)
            .max(lo + 1)
            .min(self.per_minute.len());
        (lo, hi)
    }

    /// Average price over `[from, to)` — O(1) via the prefix-sum cache.
    pub fn avg_over(&self, from: SimTime, to: SimTime) -> f64 {
        let (lo, hi) = self.window_bounds(from, to);
        (self.prefix[hi] - self.prefix[lo]) / (hi - lo) as f64
    }

    /// Average price over the hour preceding `t` — the `price` used in the
    /// expected-cost formula (paper Eq. 1: "the average price of this
    /// instance in the last hour").
    pub fn avg_last_hour(&self, t: SimTime) -> f64 {
        self.avg_over(t.saturating_sub(SimDur::from_secs(HOUR)), t)
    }

    /// Number of price *changes* in `[from, to)` (adjacent-sample deltas) —
    /// O(1) via the change-count prefix cache.
    pub fn changes_in(&self, from: SimTime, to: SimTime) -> usize {
        let (lo, hi) = self.window_bounds(from, to);
        (self.change_prefix[hi - 1] - self.change_prefix[lo]) as usize
    }

    /// How long the price effective at `t` has held (time since last
    /// change) — O(1) via the run-start cache.
    pub fn duration_since_change(&self, t: SimTime) -> SimDur {
        let m = (t.minute_index() as usize).min(self.per_minute.len() - 1);
        SimDur::from_mins((m - self.run_start[m] as usize) as u64)
    }

    /// First instant in `[from, from + horizon)` at which the price strictly
    /// exceeds `threshold`, if any. This is the ground-truth revocation test:
    /// "once the spot market price is over the user's maximum price, the
    /// instance would be revoked" (§II.A).
    pub fn first_exceed(&self, from: SimTime, horizon: SimDur, threshold: f64) -> Option<SimTime> {
        let lo = from.minute_index() as usize;
        let hi = (from + horizon).as_secs().div_ceil(MINUTE) as usize;
        let hi = hi.min(self.per_minute.len());
        let mut m = lo;
        while m < hi {
            // Skip whole blocks that cannot contain an exceedance.
            if m.is_multiple_of(BLOCK) && m + BLOCK <= hi && self.block_max[m / BLOCK] <= threshold {
                m += BLOCK;
                continue;
            }
            let end = hi.min((m / BLOCK + 1) * BLOCK);
            for i in m..end {
                if self.per_minute[i] > threshold {
                    return Some(SimTime::from_mins(i as u64).max(from));
                }
            }
            m = end;
        }
        None
    }

    /// Absolute per-minute price deltas over `[from, to)`; input to the
    /// Algorithm-2 trimmed-mean delta (see [`crate::stats::trimmed_mean`]).
    pub fn abs_deltas(&self, from: SimTime, to: SimTime) -> Vec<f64> {
        self.window(from, to)
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .collect()
    }

    /// Iterator over `(minute_start, price)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.per_minute
            .iter()
            .enumerate()
            .map(|(m, &p)| (SimTime::from_mins(m as u64), p))
    }

    /// Minimum and maximum price over the whole trace.
    pub fn min_max(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &p in &self.per_minute {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> PriceTrace {
        // 0.1, 0.2, ..., 1.0 over ten minutes.
        PriceTrace::from_minutes((1..=10).map(|i| i as f64 / 10.0).collect())
    }

    #[test]
    fn price_at_steps_and_clamps() {
        let t = ramp();
        assert_eq!(t.price_at(SimTime::ZERO), 0.1);
        assert_eq!(t.price_at(SimTime::from_secs(59)), 0.1);
        assert_eq!(t.price_at(SimTime::from_secs(60)), 0.2);
        // Past the end clamps to the last sample.
        assert_eq!(t.price_at(SimTime::from_hours(5)), 1.0);
    }

    #[test]
    fn from_records_carries_forward() {
        let recs = vec![
            PricePoint { at: SimTime::ZERO, price: 0.5 },
            PricePoint { at: SimTime::from_mins(3), price: 0.7 },
        ];
        let t = PriceTrace::from_records(&recs, SimDur::from_mins(5));
        assert_eq!(t.len_minutes(), 5);
        assert_eq!(t.price_at(SimTime::from_mins(2)), 0.5);
        assert_eq!(t.price_at(SimTime::from_mins(3)), 0.7);
        assert_eq!(t.price_at(SimTime::from_mins(4)), 0.7);
    }

    #[test]
    fn avg_and_changes() {
        let t = ramp();
        let avg = t.avg_over(SimTime::ZERO, SimTime::from_mins(10));
        assert!((avg - 0.55).abs() < 1e-12);
        assert_eq!(t.changes_in(SimTime::ZERO, SimTime::from_mins(10)), 9);
        let flat = PriceTrace::from_minutes(vec![0.3; 10]);
        assert_eq!(flat.changes_in(SimTime::ZERO, SimTime::from_mins(10)), 0);
    }

    #[test]
    fn duration_since_change_counts_back() {
        let t = PriceTrace::from_minutes(vec![0.1, 0.1, 0.2, 0.2, 0.2, 0.3]);
        assert_eq!(t.duration_since_change(SimTime::from_mins(4)).as_secs(), 2 * MINUTE);
        assert_eq!(t.duration_since_change(SimTime::from_mins(1)).as_secs(), MINUTE);
        assert_eq!(t.duration_since_change(SimTime::from_mins(5)).as_secs(), 0);
    }

    #[test]
    fn first_exceed_finds_revocation_minute() {
        let t = ramp();
        let hit = t.first_exceed(SimTime::ZERO, SimDur::from_hours(1), 0.45);
        assert_eq!(hit, Some(SimTime::from_mins(4))); // price 0.5 > 0.45
        assert_eq!(t.first_exceed(SimTime::ZERO, SimDur::from_hours(1), 2.0), None);
        // Horizon limits the search.
        assert_eq!(t.first_exceed(SimTime::ZERO, SimDur::from_mins(3), 0.45), None);
    }

    #[test]
    fn avg_last_hour_clamps_to_start() {
        let t = ramp();
        let a = t.avg_last_hour(SimTime::from_mins(2));
        assert!((a - 0.15).abs() < 1e-12); // minutes 0 and 1
    }

    #[test]
    fn cached_queries_match_naive_scans() {
        // Pseudo-random trace with constant runs, exercising the prefix
        // caches against the original O(window) definitions.
        let mut prices = Vec::new();
        let mut x = 7u64;
        while prices.len() < 300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let level = 0.05 + (x >> 33) as f64 / u32::MAX as f64;
            let run = 1 + (x % 7) as usize;
            for _ in 0..run {
                prices.push(level);
            }
        }
        prices.truncate(300);
        let t = PriceTrace::from_minutes(prices.clone());
        for &(a, b) in &[(0u64, 10u64), (5, 5), (17, 120), (250, 400), (299, 300), (0, 300)] {
            let (from, to) = (SimTime::from_mins(a), SimTime::from_mins(b));
            let w = t.window(from, to);
            let naive_avg = w.iter().sum::<f64>() / w.len() as f64;
            assert!((t.avg_over(from, to) - naive_avg).abs() < 1e-9, "avg window {a}..{b}");
            let naive_changes = w.windows(2).filter(|p| p[0] != p[1]).count();
            assert_eq!(t.changes_in(from, to), naive_changes, "changes window {a}..{b}");
        }
        for &(from_min, horizon_min, thr) in &[
            (0u64, 400u64, 0.3),
            (10, 50, 0.6),
            (100, 400, 10.0),
            (250, 400, 0.2),
            (63, 130, 0.5),
        ] {
            let from = SimTime::from_mins(from_min);
            let hi = ((from_min + horizon_min) as usize).min(prices.len());
            let naive = (from_min as usize..hi)
                .find(|&m| prices[m] > thr)
                .map(|m| SimTime::from_mins(m as u64).max(from));
            assert_eq!(
                t.first_exceed(from, SimDur::from_mins(horizon_min), thr),
                naive,
                "first_exceed from {from_min} thr {thr}"
            );
        }
        for m in [0usize, 1, 13, 150, 299, 500] {
            let idx = m.min(prices.len() - 1);
            let mut back = idx;
            while back > 0 && prices[back - 1] == prices[idx] {
                back -= 1;
            }
            assert_eq!(
                t.duration_since_change(SimTime::from_mins(m as u64)),
                SimDur::from_mins((idx - back) as u64),
                "run length at minute {m}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_trace_rejected() {
        let _ = PriceTrace::from_minutes(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn nonpositive_sample_rejected() {
        let _ = PriceTrace::from_minutes(vec![0.1, 0.0]);
    }
}
