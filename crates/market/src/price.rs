//! Spot-price traces on a uniform one-minute grid.
//!
//! The paper preprocesses the sparse Kaggle price records "by interpolating
//! values between records, making the timestamp interval between adjacent
//! records fixed at 1 minute" (§IV.A.1). [`PriceTrace`] is that interpolated
//! representation, and the window queries on it supply RevPred's engineered
//! features.

use crate::time::{SimDur, SimTime, HOUR, MINUTE};
use serde::{Deserialize, Serialize};

/// One raw spot-price record: the market price that became effective at `at`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricePoint {
    /// Instant the price became effective.
    pub at: SimTime,
    /// Price in USD per hour.
    pub price: f64,
}

/// A spot-price time series with one sample per minute.
///
/// Prices are step functions: the value sampled at minute `m` holds for the
/// whole minute `[m, m+1)`. Queries outside the trace clamp to the first /
/// last sample, so simulations that run slightly past the trace end remain
/// well-defined.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriceTrace {
    /// Price per minute, `per_minute[i]` effective during minute `i`.
    per_minute: Vec<f64>,
}

impl PriceTrace {
    /// Builds a trace directly from per-minute samples.
    ///
    /// # Panics
    ///
    /// Panics if `per_minute` is empty or contains a non-finite or
    /// non-positive sample.
    pub fn from_minutes(per_minute: Vec<f64>) -> Self {
        assert!(!per_minute.is_empty(), "price trace must not be empty");
        for (i, &p) in per_minute.iter().enumerate() {
            assert!(
                p.is_finite() && p > 0.0,
                "price sample {i} must be finite and positive, got {p}"
            );
        }
        PriceTrace { per_minute }
    }

    /// Interpolates sparse records onto the one-minute grid by carrying each
    /// price forward until the next record (step-function semantics).
    ///
    /// `total` is the desired trace length; records after `total` are
    /// ignored. The first record must be at or before the trace start.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty, not sorted by time, or the first record
    /// starts after `SimTime::ZERO`.
    pub fn from_records(records: &[PricePoint], total: SimDur) -> Self {
        assert!(!records.is_empty(), "need at least one price record");
        assert!(
            records[0].at == SimTime::ZERO || records[0].at.as_secs() == 0,
            "first record must start the trace"
        );
        for w in records.windows(2) {
            assert!(w[0].at <= w[1].at, "records must be sorted by time");
        }
        let minutes = (total.as_secs() / MINUTE).max(1) as usize;
        let mut per_minute = Vec::with_capacity(minutes);
        let mut idx = 0usize;
        for m in 0..minutes {
            let t = SimTime::from_mins(m as u64);
            while idx + 1 < records.len() && records[idx + 1].at <= t {
                idx += 1;
            }
            per_minute.push(records[idx].price);
        }
        PriceTrace::from_minutes(per_minute)
    }

    /// Number of minutes covered by the trace.
    pub fn len_minutes(&self) -> usize {
        self.per_minute.len()
    }

    /// Total trace duration.
    pub fn duration(&self) -> SimDur {
        SimDur::from_mins(self.per_minute.len() as u64)
    }

    /// The market price effective at instant `t` (clamped to the trace).
    pub fn price_at(&self, t: SimTime) -> f64 {
        let m = (t.minute_index() as usize).min(self.per_minute.len() - 1);
        self.per_minute[m]
    }

    /// Per-minute samples in `[from, to)`, clamped to the trace bounds.
    ///
    /// Returns at least one sample (the clamped endpoint) when the window is
    /// degenerate.
    pub fn window(&self, from: SimTime, to: SimTime) -> &[f64] {
        let lo = (from.minute_index() as usize).min(self.per_minute.len() - 1);
        let hi = (to.minute_index() as usize)
            .max(lo + 1)
            .min(self.per_minute.len());
        &self.per_minute[lo..hi]
    }

    /// Average price over `[from, to)`.
    pub fn avg_over(&self, from: SimTime, to: SimTime) -> f64 {
        let w = self.window(from, to);
        w.iter().sum::<f64>() / w.len() as f64
    }

    /// Average price over the hour preceding `t` — the `price` used in the
    /// expected-cost formula (paper Eq. 1: "the average price of this
    /// instance in the last hour").
    pub fn avg_last_hour(&self, t: SimTime) -> f64 {
        self.avg_over(t.saturating_sub(SimDur::from_secs(HOUR)), t)
    }

    /// Number of price *changes* in `[from, to)` (adjacent-sample deltas).
    pub fn changes_in(&self, from: SimTime, to: SimTime) -> usize {
        self.window(from, to)
            .windows(2)
            .filter(|w| w[0] != w[1])
            .count()
    }

    /// How long the price effective at `t` has held (time since last change).
    pub fn duration_since_change(&self, t: SimTime) -> SimDur {
        let m = (t.minute_index() as usize).min(self.per_minute.len() - 1);
        let cur = self.per_minute[m];
        let mut back = m;
        while back > 0 && self.per_minute[back - 1] == cur {
            back -= 1;
        }
        SimDur::from_mins((m - back) as u64)
    }

    /// First instant in `[from, from + horizon)` at which the price strictly
    /// exceeds `threshold`, if any. This is the ground-truth revocation test:
    /// "once the spot market price is over the user's maximum price, the
    /// instance would be revoked" (§II.A).
    pub fn first_exceed(&self, from: SimTime, horizon: SimDur, threshold: f64) -> Option<SimTime> {
        let lo = from.minute_index() as usize;
        let hi = (((from + horizon).as_secs() + MINUTE - 1) / MINUTE) as usize;
        let hi = hi.min(self.per_minute.len());
        (lo..hi)
            .find(|&m| self.per_minute[m] > threshold)
            .map(|m| SimTime::from_mins(m as u64).max(from))
    }

    /// Absolute per-minute price deltas over `[from, to)`; input to the
    /// Algorithm-2 trimmed-mean delta (see [`crate::stats::trimmed_mean`]).
    pub fn abs_deltas(&self, from: SimTime, to: SimTime) -> Vec<f64> {
        self.window(from, to)
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .collect()
    }

    /// Iterator over `(minute_start, price)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.per_minute
            .iter()
            .enumerate()
            .map(|(m, &p)| (SimTime::from_mins(m as u64), p))
    }

    /// Minimum and maximum price over the whole trace.
    pub fn min_max(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &p in &self.per_minute {
            lo = lo.min(p);
            hi = hi.max(p);
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp() -> PriceTrace {
        // 0.1, 0.2, ..., 1.0 over ten minutes.
        PriceTrace::from_minutes((1..=10).map(|i| i as f64 / 10.0).collect())
    }

    #[test]
    fn price_at_steps_and_clamps() {
        let t = ramp();
        assert_eq!(t.price_at(SimTime::ZERO), 0.1);
        assert_eq!(t.price_at(SimTime::from_secs(59)), 0.1);
        assert_eq!(t.price_at(SimTime::from_secs(60)), 0.2);
        // Past the end clamps to the last sample.
        assert_eq!(t.price_at(SimTime::from_hours(5)), 1.0);
    }

    #[test]
    fn from_records_carries_forward() {
        let recs = vec![
            PricePoint { at: SimTime::ZERO, price: 0.5 },
            PricePoint { at: SimTime::from_mins(3), price: 0.7 },
        ];
        let t = PriceTrace::from_records(&recs, SimDur::from_mins(5));
        assert_eq!(t.len_minutes(), 5);
        assert_eq!(t.price_at(SimTime::from_mins(2)), 0.5);
        assert_eq!(t.price_at(SimTime::from_mins(3)), 0.7);
        assert_eq!(t.price_at(SimTime::from_mins(4)), 0.7);
    }

    #[test]
    fn avg_and_changes() {
        let t = ramp();
        let avg = t.avg_over(SimTime::ZERO, SimTime::from_mins(10));
        assert!((avg - 0.55).abs() < 1e-12);
        assert_eq!(t.changes_in(SimTime::ZERO, SimTime::from_mins(10)), 9);
        let flat = PriceTrace::from_minutes(vec![0.3; 10]);
        assert_eq!(flat.changes_in(SimTime::ZERO, SimTime::from_mins(10)), 0);
    }

    #[test]
    fn duration_since_change_counts_back() {
        let t = PriceTrace::from_minutes(vec![0.1, 0.1, 0.2, 0.2, 0.2, 0.3]);
        assert_eq!(t.duration_since_change(SimTime::from_mins(4)).as_secs(), 2 * MINUTE);
        assert_eq!(t.duration_since_change(SimTime::from_mins(1)).as_secs(), MINUTE);
        assert_eq!(t.duration_since_change(SimTime::from_mins(5)).as_secs(), 0);
    }

    #[test]
    fn first_exceed_finds_revocation_minute() {
        let t = ramp();
        let hit = t.first_exceed(SimTime::ZERO, SimDur::from_hours(1), 0.45);
        assert_eq!(hit, Some(SimTime::from_mins(4))); // price 0.5 > 0.45
        assert_eq!(t.first_exceed(SimTime::ZERO, SimDur::from_hours(1), 2.0), None);
        // Horizon limits the search.
        assert_eq!(t.first_exceed(SimTime::ZERO, SimDur::from_mins(3), 0.45), None);
    }

    #[test]
    fn avg_last_hour_clamps_to_start() {
        let t = ramp();
        let a = t.avg_last_hour(SimTime::from_mins(2));
        assert!((a - 0.15).abs() < 1e-12); // minutes 0 and 1
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_trace_rejected() {
        let _ = PriceTrace::from_minutes(vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn nonpositive_sample_rejected() {
        let _ = PriceTrace::from_minutes(vec![0.1, 0.0]);
    }
}
