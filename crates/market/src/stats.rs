//! Small statistics helpers shared across the workspace.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation. Returns 0.0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Coefficient of variation (σ/μ). Returns 0.0 when the mean is zero.
///
/// The paper uses COV < 0.1 across steps to justify online performance
/// profiling (§IV.A.5).
pub fn cov(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    std_dev(xs) / m
}

/// Trimmed mean dropping the smallest and largest `trim` fraction of samples.
///
/// This is the core of the paper's Algorithm 2: "calculating the average
/// variation of instance I's history prices (removing the smallest 20% and
/// the largest 20%) in the previous 1 hours". With `trim = 0.2`, samples in
/// the index range `(0.2·L, 0.8·L)` (after sorting) are averaged.
///
/// Returns 0.0 when no samples survive the trim.
///
/// # Panics
///
/// Panics if `trim` is not in `[0, 0.5)`.
pub fn trimmed_mean(xs: &[f64], trim: f64) -> f64 {
    assert!((0.0..0.5).contains(&trim), "trim fraction must be in [0, 0.5)");
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must be comparable"));
    let n = sorted.len();
    let lo = (trim * n as f64).floor() as usize;
    let hi = ((1.0 - trim) * n as f64).ceil() as usize;
    let hi = hi.min(n);
    if lo >= hi {
        return mean(&sorted);
    }
    mean(&sorted[lo..hi])
}

/// Simple exponentially weighted moving average state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    value: Option<f64>,
    alpha: f64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma { value: None, alpha }
    }

    /// Feeds one observation and returns the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => self.alpha * x + (1.0 - self.alpha) * prev,
        };
        self.value = Some(v);
        v
    }

    /// Current average, if any observation has been fed.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cov_matches_definition() {
        let xs = [10.0, 10.0, 10.0];
        assert_eq!(cov(&xs), 0.0);
        let ys = [1.0, 3.0];
        assert!((cov(&ys) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trimmed_mean_drops_tails() {
        // 10 samples; trim 0.2 drops indices 0,1 and 8,9.
        let xs = [100.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 100.0];
        assert!((trimmed_mean(&xs, 0.2) - 1.0).abs() < 1e-12);
        // Degenerate cases fall back gracefully.
        assert_eq!(trimmed_mean(&[], 0.2), 0.0);
        assert_eq!(trimmed_mean(&[5.0], 0.2), 5.0);
    }

    #[test]
    #[should_panic(expected = "trim fraction")]
    fn trim_out_of_range_rejected() {
        let _ = trimmed_mean(&[1.0], 0.5);
    }

    #[test]
    fn ewma_converges_toward_input() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(4.0), 4.0);
        assert_eq!(e.update(8.0), 6.0);
        assert_eq!(e.value(), Some(6.0));
    }
}
