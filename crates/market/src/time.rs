//! Simulation time primitives.
//!
//! All of SpotTune's simulation runs on a single logical clock measured in
//! whole seconds since the start of the price trace. Two newtypes keep
//! instants and durations from being mixed up:
//!
//! ```
//! use spottune_market::time::{SimTime, SimDur};
//!
//! let t = SimTime::from_hours(2) + SimDur::from_mins(30);
//! assert_eq!(t.as_secs(), 9_000);
//! assert_eq!(t.minute_index(), 150);
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds in one minute.
pub const MINUTE: u64 = 60;
/// Seconds in one hour.
pub const HOUR: u64 = 3_600;
/// Seconds in one day.
pub const DAY: u64 = 86_400;

/// An instant on the simulation clock, in seconds since the trace start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulation time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDur(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs)
    }

    /// Creates an instant from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimTime(mins * MINUTE)
    }

    /// Creates an instant from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * HOUR)
    }

    /// Creates an instant from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * DAY)
    }

    /// Raw seconds since the trace start.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Fractional hours since the trace start.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// Index of the enclosing minute (floor).
    pub fn minute_index(self) -> u64 {
        self.0 / MINUTE
    }

    /// Hour of the (simulated) day in `0..24`.
    ///
    /// The trace is assumed to start at midnight on a Wednesday (matching the
    /// 2017-04-26 start of the Kaggle dataset used by the paper).
    pub fn hour_of_day(self) -> u32 {
        ((self.0 % DAY) / HOUR) as u32
    }

    /// Day index since the trace start.
    pub fn day_index(self) -> u64 {
        self.0 / DAY
    }

    /// Whether the instant falls on a workday (Mon–Fri).
    ///
    /// Day 0 of the simulation is a Wednesday, as in the dataset the paper
    /// uses (2017-04-26).
    pub fn is_workday(self) -> bool {
        // day 0 = Wednesday => weekday index 2 (0 = Monday).
        let weekday = (self.day_index() + 2) % 7;
        weekday < 5
    }

    /// Saturating subtraction of a duration.
    pub fn saturating_sub(self, d: SimDur) -> SimTime {
        SimTime(self.0.saturating_sub(d.0))
    }

    /// Duration elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDur {
    /// Zero-length duration.
    pub const ZERO: SimDur = SimDur(0);

    /// Creates a duration from raw seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDur(secs)
    }

    /// Creates a duration from whole minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDur(mins * MINUTE)
    }

    /// Creates a duration from whole hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDur(hours * HOUR)
    }

    /// Creates a duration from whole days.
    pub const fn from_days(days: u64) -> Self {
        SimDur(days * DAY)
    }

    /// Raw seconds.
    pub fn as_secs(self) -> u64 {
        self.0
    }

    /// Fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// Fractional seconds as `f64`.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    fn sub(self, rhs: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDur> for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 + rhs.0)
    }
}

impl AddAssign<SimDur> for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.day_index();
        let h = self.hour_of_day();
        let m = (self.0 % HOUR) / MINUTE;
        let s = self.0 % MINUTE;
        write!(f, "d{d}+{h:02}:{m:02}:{s:02}")
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}h", self.as_hours_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_hours(3) + SimDur::from_mins(15);
        assert_eq!(t.as_secs(), 3 * HOUR + 15 * MINUTE);
        assert_eq!((t - SimTime::from_hours(3)).as_secs(), 15 * MINUTE);
    }

    #[test]
    fn subtraction_saturates() {
        let t = SimTime::from_secs(10);
        assert_eq!((t - SimDur::from_hours(1)).as_secs(), 0);
        assert_eq!(SimTime::ZERO.since(t).as_secs(), 0);
    }

    #[test]
    fn calendar_helpers() {
        // Day 0 is a Wednesday.
        assert!(SimTime::ZERO.is_workday());
        // Day 3 (Saturday) and day 4 (Sunday) are weekend days.
        assert!(!SimTime::from_days(3).is_workday());
        assert!(!SimTime::from_days(4).is_workday());
        assert!(SimTime::from_days(5).is_workday());
        assert_eq!(SimTime::from_secs(DAY + 2 * HOUR).hour_of_day(), 2);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", SimTime::from_hours(25)), "d1+01:00:00");
        assert_eq!(format!("{}", SimDur::from_mins(90)), "1.50h");
    }

    #[test]
    fn minute_index_floors() {
        assert_eq!(SimTime::from_secs(119).minute_index(), 1);
        assert_eq!(SimTime::from_secs(120).minute_index(), 2);
    }
}
