//! Deterministic seed mixing for fault injection and other replayable
//! side-channels.
//!
//! A [`FaultPlan`](https://en.wikipedia.org/wiki/Fault_injection)-style
//! harness must never draw from the campaign's RNG stream — a single extra
//! draw would desynchronise every policy's placement decisions and break
//! the bit-identity discipline the equivalence suites enforce. Instead,
//! every injected decision is a *pure function* of a seed and the decision
//! coordinates (VM id, hp index, instant), mixed through a fixed-point
//! finalizer. Same seed, same coordinates → same decision, on every run
//! and in both drive modes.

/// SplitMix64-style avalanche of a single word.
///
/// The constants are the standard SplitMix64 finalizer (Steele et al.),
/// chosen so every input bit influences every output bit. Deterministic
/// and allocation-free.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Folds a seed and a list of decision coordinates into one mixed word.
///
/// Order-sensitive: `hash_coords(s, &[a, b])` and `hash_coords(s, &[b, a])`
/// differ, so callers can distinguish e.g. `(vm, t)` from `(t, vm)`.
pub fn hash_coords(seed: u64, coords: &[u64]) -> u64 {
    let mut acc = mix64(seed);
    for &c in coords {
        acc = mix64(acc ^ c);
    }
    acc
}

/// Maps a seed + coordinates to a uniform draw in `[0, 1)`.
///
/// Uses the top 53 bits of the mixed word so the result is an exactly
/// representable dyadic rational — bit-identical across platforms.
pub fn unit_draw(seed: u64, coords: &[u64]) -> f64 {
    (hash_coords(seed, coords) >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixing_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(0), mix64(1));
        // Adjacent inputs should differ in roughly half their bits.
        let d = (mix64(7) ^ mix64(8)).count_ones();
        assert!((16..=48).contains(&d), "poor avalanche: {d} bits");
    }

    #[test]
    fn coords_are_order_sensitive() {
        assert_ne!(hash_coords(1, &[2, 3]), hash_coords(1, &[3, 2]));
        assert_eq!(hash_coords(1, &[2, 3]), hash_coords(1, &[2, 3]));
    }

    #[test]
    fn unit_draws_are_uniformish() {
        let n = 4096;
        let mean = (0..n).map(|i| unit_draw(99, &[i])).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        for i in 0..n {
            let u = unit_draw(99, &[i]);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
