//! Per-scenario **event spine**: the time-ordered price-change agenda of
//! every market in a pool, compressed to constant-price runs and indexed
//! for O(log runs) revocation queries.
//!
//! A sweep evaluates thousands of campaigns against the *same* few market
//! scenarios, and every campaign interrogates the same traces the same
//! way: "does the price exceed my offer within this window?" (spot
//! requests deriving their revocation instant, the oracle estimator
//! scoring a placement). [`PriceTrace::first_exceed`] answers that with a
//! block-skip scan over per-minute samples — fine once, wasteful when a
//! 100k-campaign sweep repeats it millions of times per scenario.
//!
//! The spine is built **once per scenario** and shared (`Arc`) by every
//! campaign on it. Per market it stores the run-level price-change agenda
//! (run start minutes + run prices, recovered through the trace's own
//! change detection — no float comparisons) and a segment-max tree over
//! run prices, so "first minute in a window whose price exceeds a
//! threshold" descends the tree instead of scanning minutes. Every answer
//! is **bit-identical** to [`PriceTrace::first_exceed`] — a run's price is
//! the exact per-minute sample, and the first exceeding minute inside the
//! window is the first exceeding run clamped to the window start — locked
//! by the naive-equivalence tests below.
//!
//! [`SpineCache`] is the scenario-keyed tier handing out shared spines,
//! mirroring [`PoolCache`](crate::poolcache::PoolCache).

use crate::market::MarketPool;
use crate::poolcache::{CacheStats, MarketScenario};
use crate::price::PriceTrace;
use crate::time::{SimDur, SimTime, MINUTE};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One market's price-change agenda: constant-price runs plus a
/// segment-max tree answering "first run at/after `r` priced above a
/// threshold" in O(log runs).
#[derive(Debug)]
struct MarketSpine {
    /// First minute of each constant-price run, ascending; `starts[0] == 0`.
    starts: Vec<u32>,
    /// The price held throughout the corresponding run.
    prices: Vec<f64>,
    /// Segment-max tree over `prices` (1-indexed heap layout; leaves at
    /// `[size, size + runs)`, padding leaves hold `-inf`).
    tree: Vec<f64>,
    /// Leaf count of the tree (power of two ≥ number of runs).
    size: usize,
    /// Trace length in minutes.
    n_minutes: usize,
    /// Price of the final in-trace minute (held by the extension past the
    /// trace end, exactly as [`PriceTrace::price_at`] clamps).
    last_price: f64,
}

impl MarketSpine {
    fn build(trace: &PriceTrace) -> MarketSpine {
        let n = trace.len_minutes();
        let mut starts: Vec<u32> = Vec::new();
        let mut prices: Vec<f64> = Vec::new();
        for m in 0..n {
            let t = SimTime::from_mins(m as u64);
            // A fresh run begins exactly where the trace's own change
            // detection says one does (duration-since-change of zero) —
            // recovered without comparing floats.
            if trace.duration_since_change(t) == SimDur::ZERO {
                starts.push(m as u32);
                prices.push(trace.price_at(t));
            }
        }
        let runs = prices.len();
        let size = runs.next_power_of_two().max(1);
        let mut tree = vec![f64::NEG_INFINITY; 2 * size];
        tree[size..size + runs].copy_from_slice(&prices);
        for i in (1..size).rev() {
            tree[i] = tree[2 * i].max(tree[2 * i + 1]);
        }
        let last_price = trace.price_at(SimTime::from_mins((n - 1) as u64));
        MarketSpine { starts, prices, tree, size, n_minutes: n, last_price }
    }

    /// Index of the run containing minute `m` (`m < n_minutes`).
    fn run_of(&self, m: usize) -> usize {
        self.starts.partition_point(|&s| s as usize <= m) - 1
    }

    /// First run index at/after `r` whose price exceeds `threshold`.
    fn first_run_above(&self, r: usize, threshold: f64) -> Option<usize> {
        if r >= self.prices.len() {
            return None;
        }
        let mut node = self.size + r;
        loop {
            if self.tree[node] > threshold {
                // Descend to the leftmost qualifying leaf of this subtree.
                while node < self.size {
                    node <<= 1;
                    if self.tree[node] <= threshold {
                        node += 1;
                    }
                }
                let idx = node - self.size;
                // Padding leaves are -inf and never qualify.
                return Some(idx);
            }
            // Advance to the next subtree on the right: climb while this
            // node is a right child, then step to the sibling. Falling off
            // the root means nothing to the right qualifies.
            while node & 1 == 1 {
                node >>= 1;
            }
            if node == 0 {
                return None;
            }
            node += 1;
        }
    }

    /// Bit-identical mirror of [`PriceTrace::first_exceed`].
    fn first_exceed(&self, from: SimTime, horizon: SimDur, threshold: f64) -> Option<SimTime> {
        if horizon == SimDur::ZERO {
            return None;
        }
        let n = self.n_minutes;
        let lo = from.minute_index() as usize;
        let hi = ((from + horizon).as_secs().div_ceil(MINUTE) as usize).min(n);
        if lo >= n {
            return (self.last_price > threshold).then_some(from);
        }
        let r = self.first_run_above(self.run_of(lo), threshold)?;
        let i = (self.starts[r] as usize).max(lo);
        (i < hi).then(|| SimTime::from_mins(i as u64).max(from))
    }
}

/// The shared per-scenario event spine: one [`MarketSpine`] per market of
/// the pool, plus a name → index map replacing the pool's linear
/// [`market`](MarketPool::market) scans on the request path.
///
/// Build once per scenario with [`PoolSpine::build`] and share via `Arc`
/// (or let a [`SpineCache`] do both); every query is read-only and
/// thread-safe. The query counter exists so batch acceptance checks can
/// assert the fast path actually served traffic.
#[derive(Debug)]
pub struct PoolSpine {
    markets: Vec<MarketSpine>,
    index: BTreeMap<String, usize>,
    queries: AtomicU64,
}

impl PoolSpine {
    /// Derives the spine of `pool`. The spine answers queries for exactly
    /// this pool's traces; pair it with the pool it was built from (the
    /// [`SpineCache`] keys both by the same [`MarketScenario`]).
    pub fn build(pool: &MarketPool) -> PoolSpine {
        let markets: Vec<MarketSpine> =
            pool.iter().map(|m| MarketSpine::build(m.trace())).collect();
        let index = pool
            .iter()
            .enumerate()
            .map(|(i, m)| (m.instance().name().to_string(), i))
            .collect();
        PoolSpine { markets, index, queries: AtomicU64::new(0) }
    }

    /// Position of the named market in the pool (and in this spine).
    pub fn market_index(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Number of markets spanned.
    pub fn len(&self) -> usize {
        self.markets.len()
    }

    /// Whether the spine spans no markets.
    pub fn is_empty(&self) -> bool {
        self.markets.is_empty()
    }

    /// Number of constant-price runs in market `idx`'s agenda.
    pub fn runs(&self, idx: usize) -> usize {
        self.markets[idx].prices.len()
    }

    /// First instant in `[from, from + horizon)` at which market `idx`'s
    /// price exceeds `threshold` — bit-identical to
    /// [`PriceTrace::first_exceed`] on the trace the spine was built from,
    /// in O(log runs) instead of a minute scan.
    pub fn first_exceed(
        &self,
        idx: usize,
        from: SimTime,
        horizon: SimDur,
        threshold: f64,
    ) -> Option<SimTime> {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.markets[idx].first_exceed(from, horizon, threshold)
    }

    /// Revocation instant of a spot VM on market `idx` launched at `from`
    /// with the given offer — the spine-side mirror of
    /// [`SpotMarket::revocation_within`](crate::market::SpotMarket::revocation_within).
    pub fn revocation_within(
        &self,
        idx: usize,
        from: SimTime,
        horizon: SimDur,
        max_price: f64,
    ) -> Option<SimTime> {
        self.first_exceed(idx, from, horizon, max_price)
    }

    /// Queries answered since construction (acceptance checks assert > 0
    /// after a batched sweep).
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

/// A shared, thread-safe spine tier keyed by [`MarketScenario`], following
/// the [`PoolCache`](crate::poolcache::PoolCache) discipline: the map
/// mutex guards only the entry lookup, construction runs inside a
/// per-scenario `OnceLock`, and a hit is an `Arc` bump.
#[derive(Debug, Clone, Default)]
pub struct SpineCache {
    inner: Arc<SpineCacheInner>,
}

#[derive(Debug, Default)]
struct SpineCacheInner {
    spines: Mutex<BTreeMap<MarketScenario, Arc<OnceLock<Arc<PoolSpine>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SpineCache {
    /// Creates an empty tier.
    pub fn new() -> Self {
        SpineCache::default()
    }

    /// The spine for `scenario`, derived from `pool` (which must be the
    /// pool that scenario resolves to — callers obtain both through the
    /// same scenario key, so the pairing is by construction).
    pub fn get(&self, scenario: MarketScenario, pool: &MarketPool) -> Arc<PoolSpine> {
        let cell = {
            let mut spines = self.inner.spines.lock().expect("spine cache lock");
            match spines.get(&scenario) {
                Some(cell) => {
                    self.inner.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(cell)
                }
                None => {
                    self.inner.misses.fetch_add(1, Ordering::Relaxed);
                    let cell = Arc::new(OnceLock::new());
                    spines.insert(scenario, Arc::clone(&cell));
                    cell
                }
            }
        };
        Arc::clone(cell.get_or_init(|| Arc::new(PoolSpine::build(pool))))
    }

    /// Number of distinct scenarios currently resident.
    pub fn len(&self) -> usize {
        self.inner.spines.lock().expect("spine cache lock").len()
    }

    /// Whether no spine has been built yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total queries answered by the resident spines.
    pub fn resident_queries(&self) -> u64 {
        let spines = self.inner.spines.lock().expect("spine cache lock");
        spines.values().filter_map(|cell| cell.get()).map(|s| s.queries()).sum()
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> MarketPool {
        MarketPool::standard(SimDur::from_days(2), 42)
    }

    #[test]
    fn spine_indexes_every_market() {
        let p = pool();
        let spine = PoolSpine::build(&p);
        assert_eq!(spine.len(), p.markets().len());
        for (i, m) in p.iter().enumerate() {
            assert_eq!(spine.market_index(m.instance().name()), Some(i));
            assert!(spine.runs(i) > 0);
        }
        assert_eq!(spine.market_index("no-such-instance"), None);
    }

    #[test]
    fn first_exceed_matches_trace_exhaustively() {
        // The bit-identity lock: every (from, horizon, threshold) cell of a
        // dense grid must agree with the trace's block-skip scan, including
        // mid-minute instants, windows straddling and past the trace end,
        // and thresholds between every pair of price levels.
        let p = pool();
        let spine = PoolSpine::build(&p);
        for (idx, market) in p.iter().enumerate() {
            let trace = market.trace();
            let n = trace.len_minutes() as u64;
            let mut thresholds: Vec<f64> =
                trace.iter().map(|(_, price)| price).collect();
            thresholds.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            thresholds.dedup_by(|a, b| a.to_bits() == b.to_bits());
            let mut probes: Vec<f64> = vec![0.0, f64::INFINITY];
            for w in thresholds.windows(2) {
                probes.push(w[0]);
                probes.push(0.5 * (w[0] + w[1]));
            }
            probes.push(*thresholds.last().expect("non-empty trace"));
            for &thr in &probes {
                for from_s in
                    [0, 1, 59, 60, 61, 90, n * 30, n * 60 - 61, n * 60 - 1, n * 60, n * 60 + 90]
                {
                    let from = SimTime::from_secs(from_s);
                    for horizon_s in [0, 1, 60, 61, 3600, n * 60, 2 * n * 60] {
                        let horizon = SimDur::from_secs(horizon_s);
                        assert_eq!(
                            spine.first_exceed(idx, from, horizon, thr),
                            trace.first_exceed(from, horizon, thr),
                            "market {idx} from {from_s}s horizon {horizon_s}s thr {thr}"
                        );
                    }
                }
            }
        }
        assert!(spine.queries() > 0);
    }

    #[test]
    fn first_exceed_matches_on_adversarial_run_shapes() {
        // Single-run, alternating, and spike-at-end traces exercise the
        // tree descent's edge branches (all-left, all-right, padding).
        let flat = PriceTrace::from_minutes(vec![0.5; 7]);
        let alternating = PriceTrace::from_minutes(
            (0..130).map(|i| if i % 2 == 0 { 0.2 } else { 0.9 }).collect(),
        );
        let spike_end = {
            let mut v = vec![0.1; 129];
            v.push(5.0);
            PriceTrace::from_minutes(v)
        };
        for trace in [&flat, &alternating, &spike_end] {
            let spine = MarketSpine::build(trace);
            let n = trace.len_minutes() as u64;
            for thr in [0.0, 0.15, 0.2, 0.5, 0.9, 4.0, 5.0] {
                for from_m in 0..=n + 2 {
                    for horizon_m in [0, 1, 2, n, 2 * n + 1] {
                        let from = SimTime::from_mins(from_m);
                        let horizon = SimDur::from_mins(horizon_m);
                        assert_eq!(
                            spine.first_exceed(from, horizon, thr),
                            trace.first_exceed(from, horizon, thr),
                            "from {from_m}m horizon {horizon_m}m thr {thr}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn run_agenda_is_well_formed_and_stable_markets_compress() {
        let p = pool();
        let mut best = 1.0f64;
        for m in p.iter() {
            let trace = m.trace();
            let spine = MarketSpine::build(trace);
            assert_eq!(spine.starts.len(), spine.prices.len());
            assert_eq!(spine.starts[0], 0);
            assert!(spine.starts.windows(2).all(|w| w[0] < w[1]));
            assert!(spine.prices.len() <= trace.len_minutes());
            best = best.min(spine.prices.len() as f64 / trace.len_minutes() as f64);
        }
        // The stable regimes hold prices for multi-minute dwells, so at
        // least one market's agenda compresses well below its minute count.
        assert!(best < 0.5, "stable markets must compress, best ratio {best}");
    }

    #[test]
    fn cache_shares_and_counts() {
        let cache = SpineCache::new();
        let scenario = MarketScenario::from_days(1, 7);
        let p = scenario.build();
        let a = cache.get(scenario, &p);
        let b = cache.get(scenario, &p);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
        let _ = a.first_exceed(0, SimTime::ZERO, SimDur::from_hours(1), 0.0);
        assert_eq!(cache.resident_queries(), a.queries());
    }
}
