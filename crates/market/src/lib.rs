//! # spottune-market
//!
//! Spot-market substrate for the SpotTune reproduction: simulation time,
//! instance catalog (paper Table III), one-minute price traces, synthetic
//! trace generation with per-market regimes, a Kaggle-schema CSV loader for
//! real data, and the [`RevocationEstimator`] interface that connects the
//! learned predictors to the orchestrator.
//!
//! ## Quick tour
//!
//! ```
//! use spottune_market::prelude::*;
//!
//! // The six Table-III markets with synthetic 2-day traces.
//! let pool = MarketPool::standard(SimDur::from_days(2), 42);
//! let r3 = pool.market("r3.xlarge").unwrap();
//! let now = SimTime::from_hours(12);
//! let price = r3.price_at(now);
//! assert!(price > 0.0);
//!
//! // Ground-truth revocation query used for labels and the oracle estimator.
//! let revoked = r3.revoked_within_hour(now, price + 0.001);
//! let _ = revoked;
//! ```

pub mod csvload;
pub mod estimator;
pub mod instance;
pub mod market;
pub mod poolcache;
pub mod price;
pub mod seeding;
pub mod spine;
pub mod stats;
pub mod synth;
pub mod time;

pub use estimator::{
    ConstantEstimator, EstimatorSpec, RevocationEstimator, DEFAULT_ORACLE_CONFIDENCE,
};
pub use instance::InstanceType;
pub use market::{MarketPool, SpotMarket};
pub use poolcache::{CacheStats, MarketScenario, PoolCache};
pub use price::{PricePoint, PriceTrace};
pub use spine::{PoolSpine, SpineCache};
pub use time::{SimDur, SimTime};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::estimator::{
        ConstantEstimator, EstimatorSpec, RevocationEstimator, DEFAULT_ORACLE_CONFIDENCE,
    };
    pub use crate::instance::{self, InstanceType};
    pub use crate::market::{MarketPool, SpotMarket};
    pub use crate::poolcache::{CacheStats, MarketScenario, PoolCache};
    pub use crate::price::{PricePoint, PriceTrace};
    pub use crate::spine::{PoolSpine, SpineCache};
    pub use crate::synth::{Regime, TraceGenerator};
    pub use crate::time::{SimDur, SimTime};
}
