//! The revocation-probability estimator interface.
//!
//! SpotTune's provisioner needs `P(I, b, t)`: the probability that a spot
//! instance of type `I` acquired at time `t` with maximum price `b` is
//! revoked within the next hour (§III.B). The trait lives here — in the
//! lowest-level crate — so that the orchestrator (`spottune-core`) and the
//! learned predictors (`spottune-revpred`) can both depend on it without
//! depending on each other.

use crate::time::SimTime;
use std::fmt::Debug;

/// Estimates the probability that a spot instance is revoked within the next
/// hour.
pub trait RevocationEstimator: Debug + Send + Sync {
    /// Returns `P(instance, max_price, t)` in `[0, 1]`.
    fn revocation_probability(&self, instance_name: &str, t: SimTime, max_price: f64) -> f64;

    /// Short human-readable name for reports.
    fn name(&self) -> &str;
}

/// An estimator that always returns a fixed probability.
///
/// With probability 0 this reduces SpotTune to pure lowest-step-cost
/// provisioning (the degenerate stable-market scenario of §V.A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantEstimator {
    p: f64,
}

impl ConstantEstimator {
    /// Creates an estimator that always answers `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        ConstantEstimator { p }
    }
}

impl RevocationEstimator for ConstantEstimator {
    fn revocation_probability(&self, _instance_name: &str, _t: SimTime, _max_price: f64) -> f64 {
        self.p
    }

    fn name(&self) -> &str {
        "constant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_estimator_is_constant() {
        let e = ConstantEstimator::new(0.4);
        assert_eq!(e.revocation_probability("r4.large", SimTime::ZERO, 0.1), 0.4);
        assert_eq!(
            e.revocation_probability("m4.4xlarge", SimTime::from_hours(5), 9.9),
            0.4
        );
        assert_eq!(e.name(), "constant");
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn out_of_range_rejected() {
        let _ = ConstantEstimator::new(1.5);
    }

    #[test]
    fn trait_is_object_safe() {
        let e: Box<dyn RevocationEstimator> = Box::new(ConstantEstimator::new(0.0));
        assert_eq!(e.revocation_probability("x", SimTime::ZERO, 1.0), 0.0);
    }
}
