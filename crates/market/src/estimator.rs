//! The revocation-probability estimator interface.
//!
//! SpotTune's provisioner needs `P(I, b, t)`: the probability that a spot
//! instance of type `I` acquired at time `t` with maximum price `b` is
//! revoked within the next hour (§III.B). The trait lives here — in the
//! lowest-level crate — so that the orchestrator (`spottune-core`) and the
//! learned predictors (`spottune-revpred`) can both depend on it without
//! depending on each other.

use serde::{Deserialize, Serialize};
use crate::time::SimTime;
use std::fmt;
use std::fmt::Debug;

/// Estimates the probability that a spot instance is revoked within the next
/// hour.
pub trait RevocationEstimator: Debug + Send + Sync {
    /// Returns `P(instance, max_price, t)` in `[0, 1]`.
    fn revocation_probability(&self, instance_name: &str, t: SimTime, max_price: f64) -> f64;

    /// Short human-readable name for reports.
    fn name(&self) -> &str;
}

/// Confidence of the default [`EstimatorSpec::Oracle`] spec — the value
/// every campaign path hard-coded before the estimator became a campaign
/// dimension, retained as the default so legacy behaviour is bit-identical.
pub const DEFAULT_ORACLE_CONFIDENCE: f64 = 0.9;

/// Names one revocation estimator a campaign can provision with — the
/// wire-level key of the estimator registry, mirroring how policies are
/// named by [`crate::poolcache::MarketScenario`]-style identifiers.
///
/// The spec lives here — in the lowest-level crate — because it is pure
/// *description*: the ground-truth estimators ([`EstimatorSpec::Oracle`],
/// [`EstimatorSpec::Constant`]) are built by `spottune-core` from the
/// campaign's pool, and the learned families ([`EstimatorSpec::RevPred`],
/// [`EstimatorSpec::Tributary`], [`EstimatorSpec::Logistic`]) are trained
/// by `spottune-revpred` per market scenario (and amortized across
/// requests by the server's predictor tier).
///
/// The textual registry grammar (accepted by [`EstimatorSpec::parse`] and
/// the `run_campaigns --estimator` flag) is the lower-case kind name with
/// an optional parenthesized argument: `oracle`, `oracle(0.8)`,
/// `constant(0.25)`, `revpred`, `tributary`, `logistic`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum EstimatorSpec {
    /// Ground-truth trace inspection tempered by `confidence ∈ [0.5, 1]`.
    Oracle {
        /// Probability reported when the trace says "revoked within the
        /// hour" (`1 − confidence` otherwise).
        confidence: f64,
    },
    /// Fixed probability `p ∈ [0, 1]` for every query (the degenerate
    /// stable-market scenario of §V.A).
    Constant {
        /// The constant answer.
        p: f64,
    },
    /// The paper's learned predictor (§III.B): per-market dual-path LSTM
    /// with Algorithm-2 training deltas.
    RevPred,
    /// Tributary-style baseline: single-path LSTM, uniform-random deltas.
    Tributary,
    /// Logistic regression on the flattened features.
    Logistic,
}

impl Default for EstimatorSpec {
    /// `oracle(0.9)` — exactly the estimator every campaign ran with before
    /// the spec existed.
    fn default() -> Self {
        EstimatorSpec::Oracle { confidence: DEFAULT_ORACLE_CONFIDENCE }
    }
}

impl EstimatorSpec {
    /// Every registered estimator name, in registry order. These are the
    /// stable identifiers accepted by [`EstimatorSpec::parse`], the wire
    /// decoder and the `run_campaigns --estimator` flag.
    pub fn registered_estimators() -> [&'static str; 5] {
        ["oracle", "constant", "revpred", "tributary", "logistic"]
    }

    /// The registry name of this spec's kind (without arguments).
    pub fn kind_name(&self) -> &'static str {
        match self {
            EstimatorSpec::Oracle { .. } => "oracle",
            EstimatorSpec::Constant { .. } => "constant",
            EstimatorSpec::RevPred => "revpred",
            EstimatorSpec::Tributary => "tributary",
            EstimatorSpec::Logistic => "logistic",
        }
    }

    /// Whether this spec names a learned predictor family that must be
    /// trained per market scenario before it can answer queries (the
    /// server amortizes that training through its predictor tier).
    pub fn is_trained(&self) -> bool {
        matches!(
            self,
            EstimatorSpec::RevPred | EstimatorSpec::Tributary | EstimatorSpec::Logistic
        )
    }

    /// Validates the spec's arguments (parse and the wire decoder call
    /// this so invalid probabilities are rejected at the boundary instead
    /// of panicking mid-campaign).
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            EstimatorSpec::Oracle { confidence } => {
                if (0.5..=1.0).contains(&confidence) {
                    Ok(())
                } else {
                    Err(format!("oracle confidence must be in [0.5, 1], got {confidence}"))
                }
            }
            EstimatorSpec::Constant { p } => {
                if (0.0..=1.0).contains(&p) {
                    Ok(())
                } else {
                    Err(format!("constant probability must be in [0, 1], got {p}"))
                }
            }
            EstimatorSpec::RevPred | EstimatorSpec::Tributary | EstimatorSpec::Logistic => Ok(()),
        }
    }

    /// Resolves a registry string to a spec: a kind name with an optional
    /// parenthesized argument — `oracle`, `oracle(0.8)`, `constant(0.25)`,
    /// `revpred`, `tributary`, `logistic`. Returns `None` for unknown
    /// names, malformed arguments, or out-of-range probabilities (callers
    /// list [`EstimatorSpec::registered_estimators`] in their error).
    pub fn parse(text: &str) -> Option<EstimatorSpec> {
        let text = text.trim();
        let (kind, arg) = match text.split_once('(') {
            Some((kind, rest)) => {
                let arg = rest.strip_suffix(')')?;
                (kind.trim(), Some(arg.trim().parse::<f64>().ok()?))
            }
            None => (text, None),
        };
        let spec = match (kind, arg) {
            ("oracle", None) => EstimatorSpec::default(),
            ("oracle", Some(confidence)) => EstimatorSpec::Oracle { confidence },
            ("constant", Some(p)) => EstimatorSpec::Constant { p },
            ("revpred", None) => EstimatorSpec::RevPred,
            ("tributary", None) => EstimatorSpec::Tributary,
            ("logistic", None) => EstimatorSpec::Logistic,
            _ => return None,
        };
        spec.validate().ok()?;
        Some(spec)
    }
}

impl fmt::Display for EstimatorSpec {
    /// The canonical registry form; `parse(format!("{spec}"))` round-trips.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EstimatorSpec::Oracle { confidence } => write!(f, "oracle({confidence})"),
            EstimatorSpec::Constant { p } => write!(f, "constant({p})"),
            _ => f.write_str(self.kind_name()),
        }
    }
}

/// An estimator that always returns a fixed probability.
///
/// With probability 0 this reduces SpotTune to pure lowest-step-cost
/// provisioning (the degenerate stable-market scenario of §V.A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConstantEstimator {
    p: f64,
}

impl ConstantEstimator {
    /// Creates an estimator that always answers `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        ConstantEstimator { p }
    }
}

impl RevocationEstimator for ConstantEstimator {
    fn revocation_probability(&self, _instance_name: &str, _t: SimTime, _max_price: f64) -> f64 {
        self.p
    }

    fn name(&self) -> &str {
        "constant"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_estimator_is_constant() {
        let e = ConstantEstimator::new(0.4);
        assert_eq!(e.revocation_probability("r4.large", SimTime::ZERO, 0.1), 0.4);
        assert_eq!(
            e.revocation_probability("m4.4xlarge", SimTime::from_hours(5), 9.9),
            0.4
        );
        assert_eq!(e.name(), "constant");
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn out_of_range_rejected() {
        let _ = ConstantEstimator::new(1.5);
    }

    #[test]
    fn trait_is_object_safe() {
        let e: Box<dyn RevocationEstimator> = Box::new(ConstantEstimator::new(0.0));
        assert_eq!(e.revocation_probability("x", SimTime::ZERO, 1.0), 0.0);
    }

    #[test]
    fn default_spec_is_the_legacy_oracle() {
        assert_eq!(
            EstimatorSpec::default(),
            EstimatorSpec::Oracle { confidence: DEFAULT_ORACLE_CONFIDENCE }
        );
        assert!(!EstimatorSpec::default().is_trained());
        assert!(EstimatorSpec::RevPred.is_trained());
    }

    #[test]
    fn spec_parse_round_trips_every_registered_name() {
        for name in EstimatorSpec::registered_estimators() {
            // `constant` needs an argument; the rest parse bare.
            let text =
                if name == "constant" { "constant(0.5)".to_string() } else { name.to_string() };
            let spec = EstimatorSpec::parse(&text)
                .unwrap_or_else(|| panic!("registered estimator {text} must parse"));
            assert_eq!(spec.kind_name(), name);
            // Display → parse is the identity.
            assert_eq!(EstimatorSpec::parse(&spec.to_string()), Some(spec));
        }
    }

    #[test]
    fn spec_parse_accepts_arguments_and_rejects_garbage() {
        assert_eq!(
            EstimatorSpec::parse("oracle(0.75)"),
            Some(EstimatorSpec::Oracle { confidence: 0.75 })
        );
        assert_eq!(
            EstimatorSpec::parse(" constant( 0.25 ) "),
            Some(EstimatorSpec::Constant { p: 0.25 })
        );
        for bad in [
            "warp-drive",
            "oracle(1.5)",  // out of range
            "oracle(0.2)",  // below the oracle's [0.5, 1] contract
            "constant",     // needs an argument
            "constant(-1)", // out of range
            "revpred(3)",   // takes no argument
            "oracle(x)",    // malformed argument
            "oracle(0.9",   // unbalanced parens
            "",
        ] {
            assert_eq!(EstimatorSpec::parse(bad), None, "{bad:?} must be rejected");
        }
    }

    #[test]
    fn spec_validate_reports_range_errors() {
        assert!(EstimatorSpec::Oracle { confidence: 0.3 }.validate().is_err());
        assert!(EstimatorSpec::Constant { p: 1.2 }.validate().is_err());
        assert!(EstimatorSpec::Tributary.validate().is_ok());
        assert!(EstimatorSpec::default().validate().is_ok());
    }
}
