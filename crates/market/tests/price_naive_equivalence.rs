//! Property tests pinning every O(1)/block-skipped [`PriceTrace`] window
//! query to the naive O(n) scan it replaced.
//!
//! The paper's Eq. 1 expected-cost decisions (avg-price-last-hour, change
//! counts, hold times, revocation scans) are evaluated millions of times in
//! a multi-campaign sweep, so the cached math must be *provably* identical
//! to the definitions — on arbitrary traces and arbitrary windows,
//! including empty, reversed and past-the-end ones. The reference semantics
//! throughout: the trace is a step function whose last sample is carried
//! forward past the trace end.

use proptest::prelude::*;
use spottune_market::time::MINUTE;
use spottune_market::{PriceTrace, SimDur, SimTime};

/// Builds a trace with constant-price runs from raw levels and run lengths.
/// Levels are quantized so equal prices can also recur across run
/// boundaries (exercising the "no change" edge between distinct runs).
fn build_prices(raw: &[f64], runs: &[usize]) -> Vec<f64> {
    let mut prices = Vec::new();
    for (i, &level) in raw.iter().enumerate() {
        let level = (level * 25.0).round() / 25.0 + 0.01;
        for _ in 0..runs[i % runs.len()] {
            prices.push(level);
        }
    }
    prices
}

/// The extended step function: last sample carried forward.
fn extended(prices: &[f64], m: usize) -> f64 {
    prices[m.min(prices.len() - 1)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `avg_over` equals the per-minute mean of the extended step function
    /// (endpoints at second resolution floor to the minute grid); a
    /// zero-measure window reports the instantaneous price.
    #[test]
    fn avg_over_matches_naive_scan(
        raw in prop::collection::vec(0.05f64..1.0, 1..40),
        runs in prop::collection::vec(1usize..8, 1..10),
        from_secs in 0u64..24_000,
        to_secs in 0u64..30_000,
    ) {
        let prices = build_prices(&raw, &runs);
        let trace = PriceTrace::from_minutes(prices.clone());
        let (from_min, to_min) = (from_secs / MINUTE, to_secs / MINUTE);
        let naive = if to_min <= from_min {
            extended(&prices, from_min as usize)
        } else {
            (from_min..to_min).map(|m| extended(&prices, m as usize)).sum::<f64>()
                / (to_min - from_min) as f64
        };
        let cached = trace.avg_over(SimTime::from_secs(from_secs), SimTime::from_secs(to_secs));
        prop_assert!(
            (cached - naive).abs() < 1e-9,
            "avg [{from_secs}s,{to_secs}s) over {} minutes: {cached} vs naive {naive}",
            prices.len()
        );
    }

    /// `changes_in` equals the count of change events (minute starts whose
    /// price differs from the previous minute) inside `[from, to)`. The
    /// endpoints are drawn at *second* resolution — the event-driven
    /// orchestrator queries at arbitrary instants — and floor to the
    /// trace's one-minute grid, as documented.
    #[test]
    fn changes_in_matches_naive_scan(
        raw in prop::collection::vec(0.05f64..1.0, 1..40),
        runs in prop::collection::vec(1usize..8, 1..10),
        from_secs in 0u64..24_000,
        to_secs in 0u64..30_000,
    ) {
        let prices = build_prices(&raw, &runs);
        let trace = PriceTrace::from_minutes(prices.clone());
        let (from_min, to_min) = (from_secs / MINUTE, to_secs / MINUTE);
        let naive = (from_min.max(1)..to_min.min(prices.len() as u64))
            .filter(|&k| prices[k as usize] != prices[k as usize - 1])
            .count();
        let cached = trace.changes_in(SimTime::from_secs(from_secs), SimTime::from_secs(to_secs));
        prop_assert_eq!(
            cached,
            naive,
            "changes [{}s,{}s) over {} minutes",
            from_secs,
            to_secs,
            prices.len()
        );
    }

    /// `duration_since_change` equals the backward scan to the start of the
    /// enclosing constant run, and keeps growing past the trace end.
    #[test]
    fn duration_since_change_matches_naive_scan(
        raw in prop::collection::vec(0.05f64..1.0, 1..40),
        runs in prop::collection::vec(1usize..8, 1..10),
        at_min in 0u64..500,
    ) {
        let prices = build_prices(&raw, &runs);
        let trace = PriceTrace::from_minutes(prices.clone());
        let idx = (at_min as usize).min(prices.len() - 1);
        let mut back = idx;
        while back > 0 && prices[back - 1] == prices[idx] {
            back -= 1;
        }
        let naive = SimDur::from_mins(at_min - back as u64);
        prop_assert_eq!(
            trace.duration_since_change(SimTime::from_mins(at_min)),
            naive,
            "hold time at minute {} over {} minutes",
            at_min,
            prices.len()
        );
    }

    /// `first_exceed` (block-max skipping) equals the linear scan, for
    /// second-resolution starts and arbitrary horizons/thresholds.
    #[test]
    fn first_exceed_matches_naive_scan(
        raw in prop::collection::vec(0.05f64..1.0, 1..40),
        runs in prop::collection::vec(1usize..8, 1..10),
        from_secs in 0u64..30_000,
        horizon_mins in 0u64..600,
        threshold in 0.0f64..1.2,
    ) {
        let prices = build_prices(&raw, &runs);
        let trace = PriceTrace::from_minutes(prices.clone());
        let from = SimTime::from_secs(from_secs);
        let horizon = SimDur::from_mins(horizon_mins);
        let n = prices.len();
        let lo = from.minute_index() as usize;
        let hi = (from_secs + horizon_mins * MINUTE).div_ceil(MINUTE) as usize;
        // Empty window → no instant; otherwise the in-trace scan, then the
        // step-function extension (past the end the last sample is still
        // the effective price).
        let naive = if horizon_mins == 0 {
            None
        } else {
            (lo..hi.min(n))
                .find(|&m| prices[m] > threshold)
                .map(|m| SimTime::from_mins(m as u64).max(from))
                .or_else(|| (lo >= n && prices[n - 1] > threshold).then_some(from))
        };
        prop_assert_eq!(
            trace.first_exceed(from, horizon, threshold),
            naive,
            "first_exceed from {}s horizon {}m thr {} over {} minutes",
            from_secs,
            horizon_mins,
            threshold,
            prices.len()
        );
    }

    /// `avg_last_hour` — the Eq. 1 `price` input — equals the naive mean of
    /// the trailing hour at every instant, in-trace or past the end.
    #[test]
    fn avg_last_hour_matches_naive_scan(
        raw in prop::collection::vec(0.05f64..1.0, 1..40),
        runs in prop::collection::vec(1usize..8, 1..10),
        at_min in 0u64..500,
    ) {
        let prices = build_prices(&raw, &runs);
        let trace = PriceTrace::from_minutes(prices.clone());
        let lo = at_min.saturating_sub(60);
        let naive = if at_min == 0 {
            extended(&prices, 0)
        } else {
            (lo..at_min).map(|m| extended(&prices, m as usize)).sum::<f64>()
                / (at_min - lo) as f64
        };
        let cached = trace.avg_last_hour(SimTime::from_mins(at_min));
        prop_assert!(
            (cached - naive).abs() < 1e-9,
            "avg_last_hour at minute {at_min}: {cached} vs naive {naive}"
        );
    }
}
