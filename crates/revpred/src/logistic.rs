//! Logistic-regression baseline on flattened features (the third bar of
//! paper Fig. 10).

use crate::dataset::{Sample, HISTORY_LEN, PRESENT_FEATURES};
use crate::features::RECORD_FEATURES;
use crate::model::{calibrate, ProbModel, TrainConfig, TrainStats};
use crate::probe::ProbeCtx;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use spottune_nn::activation::sigmoid;

/// Flattened input width: 59 history records × 6 features + 7 present.
pub const FLAT_FEATURES: usize = HISTORY_LEN * RECORD_FEATURES + PRESENT_FEATURES;

/// Logistic regression over the flattened sample.
#[derive(Debug, Clone)]
pub struct LogisticModel {
    w: Vec<f64>,
    b: f64,
    phi_pos: f64,
    phi_neg: f64,
}

fn flatten(sample: &Sample) -> Vec<f64> {
    let mut x = Vec::with_capacity(FLAT_FEATURES);
    for rec in &sample.history {
        x.extend_from_slice(rec);
    }
    x.extend_from_slice(&sample.present);
    x
}

impl Default for LogisticModel {
    fn default() -> Self {
        LogisticModel::new()
    }
}

impl LogisticModel {
    /// Creates an untrained model.
    pub fn new() -> Self {
        LogisticModel { w: vec![0.0; FLAT_FEATURES], b: 0.0, phi_pos: 0.5, phi_neg: 0.5 }
    }

    /// Trains with class-weighted SGD (only `epochs`, `batch`, `optim.lr`
    /// and `seed` of the config are used).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train(&mut self, samples: &[Sample], cfg: &TrainConfig) -> TrainStats {
        assert!(!samples.is_empty(), "cannot train on an empty dataset");
        let n_pos = samples.iter().filter(|s| s.label).count();
        self.phi_pos = (n_pos as f64 / samples.len() as f64).clamp(0.02, 0.98);
        self.phi_neg = 1.0 - self.phi_pos;
        let (w_pos, w_neg) = (self.phi_neg, self.phi_pos);
        let xs: Vec<Vec<f64>> = samples.iter().map(flatten).collect();

        let lr = cfg.optim.lr * 10.0; // linear model tolerates a larger step
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x106);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            for &i in &order {
                let x = &xs[i];
                let y = if samples[i].label { 1.0 } else { 0.0 };
                let weight = if samples[i].label { w_pos } else { w_neg };
                let z: f64 = self.w.iter().zip(x).map(|(w, x)| w * x).sum::<f64>() + self.b;
                let p = sigmoid(z);
                // Stable weighted BCE.
                let softplus = (1.0 + (-z.abs()).exp()).ln() + z.max(0.0);
                total += weight * (softplus - y * z);
                let g = weight * (p - y);
                for (w, &xi) in self.w.iter_mut().zip(x) {
                    *w -= lr * (g * xi + 1e-5 * *w);
                }
                self.b -= lr * g;
            }
            epoch_losses.push(total / samples.len() as f64);
        }
        TrainStats { epoch_losses, phi_pos: self.phi_pos }
    }

    /// Raw probability before calibration.
    pub fn predict_raw(&self, sample: &Sample) -> f64 {
        let x = flatten(sample);
        let z: f64 = self.w.iter().zip(&x).map(|(w, x)| w * x).sum::<f64>() + self.b;
        sigmoid(z)
    }
}

impl ProbModel for LogisticModel {
    fn predict(&self, sample: &Sample) -> f64 {
        calibrate(self.predict_raw(sample), self.phi_pos, self.phi_neg)
    }

    fn name(&self) -> &'static str {
        "LogisticRegression"
    }

    /// The bid is the last flattened feature, so the dot product's 360-term
    /// left-fold prefix is bid-independent. Accumulated in flatten order
    /// (history records, then the leading present features) so the fold is
    /// the same one `predict` computes.
    fn probe_ctx(&self, sample: &Sample) -> ProbeCtx {
        let mut prefix = 0.0f64;
        let mut weights = self.w.iter();
        for rec in &sample.history {
            for &x in rec {
                prefix += weights.next().expect("weight per feature") * x;
            }
        }
        for &x in &sample.present[..RECORD_FEATURES] {
            prefix += weights.next().expect("weight per feature") * x;
        }
        ProbeCtx::Logistic { prefix }
    }

    /// `(prefix + w_bid·bid) + b` continues the cached fold exactly where
    /// `predict`'s full fold would have been after 360 terms — bit-identical.
    fn predict_probe(&self, ctx: &ProbeCtx, bid_feature: f64) -> f64 {
        let ProbeCtx::Logistic { prefix } = ctx else {
            unreachable!("probe context from a different model family");
        };
        let z = prefix + self.w[FLAT_FEATURES - 1] * bid_feature + self.b;
        calibrate(sigmoid(z), self.phi_pos, self.phi_neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_dataset, DeltaPolicy};
    use spottune_market::prelude::*;

    #[test]
    fn trains_on_market_data() {
        let pool = MarketPool::standard(SimDur::from_days(3), 5);
        let market = pool.market("r4.large").unwrap();
        let samples = build_dataset(
            market,
            SimTime::from_hours(2),
            SimTime::from_hours(50),
            SimDur::from_mins(15),
            DeltaPolicy::Algorithm2,
            13,
        );
        let cfg = TrainConfig { epochs: 4, ..TrainConfig::default() };
        let mut m = LogisticModel::new();
        let stats = m.train(&samples, &cfg);
        assert!(stats.epoch_losses.last().unwrap() <= &stats.epoch_losses[0]);
        let p = m.predict(&samples[0]);
        assert!((0.0..=1.0).contains(&p));
        assert_eq!(m.name(), "LogisticRegression");
    }

    #[test]
    fn flatten_width_matches_constant() {
        let pool = MarketPool::standard(SimDur::from_days(1), 5);
        let market = pool.market("r4.large").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let s = crate::dataset::build_sample(
            market,
            SimTime::from_hours(3),
            DeltaPolicy::Algorithm2,
            &mut rng,
        );
        assert_eq!(flatten(&s).len(), FLAT_FEATURES);
    }
}
