//! Cross-request trained-predictor tier: `(scenario × predictor kind)`-keyed,
//! `Arc`-backed sharing of trained [`MarketPredictorSet`]s.
//!
//! Training a learned revocation predictor is the most expensive thing a
//! campaign can ask for — a RevPred set is six three-tier LSTMs trained
//! over thousands of samples — and a sweep evaluates thousands of
//! campaigns against the *same* few scenarios. Like the market-pool tier
//! ([`spottune_market::PoolCache`]), a long-running server must train each
//! `(scenario, kind)` pair once and hand out reference-counted clones;
//! [`train_for_scenario`] makes the trained set a pure function of the
//! key, so a cache hit can never change a report, only wall-clock.

use crate::estimator::{train_for_scenario, MarketPredictorSet, PredictorKind};
use spottune_market::{CacheStats, MarketPool, MarketScenario};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A shared, thread-safe trained-predictor tier keyed by
/// `(MarketScenario, PredictorKind)`.
///
/// Cloning the cache clones a handle to the same tier (the server hands
/// one to every worker). The map mutex guards only the entry lookup; the
/// expensive training runs inside a per-key `OnceLock`, so distinct cold
/// keys train in parallel, hits never wait behind a training run, and two
/// workers racing on the *same* cold key still pay the training cost once.
#[derive(Debug, Clone, Default)]
pub struct PredictorCache {
    inner: Arc<PredictorCacheInner>,
}

#[derive(Debug, Default)]
struct PredictorCacheInner {
    sets: Mutex<PredictorMap>,
    hits: AtomicU64,
    misses: AtomicU64,
}

type PredictorMap =
    HashMap<(MarketScenario, PredictorKind), Arc<OnceLock<Arc<MarketPredictorSet>>>>;

impl PredictorCache {
    /// Creates an empty tier.
    pub fn new() -> Self {
        PredictorCache::default()
    }

    /// The process-wide shared tier, mirroring the curve memo's
    /// `CurveCache::global`: thin clients that spin up a short-lived
    /// server per sweep (the figure binaries) route through this so a
    /// `(scenario, kind)` pair trains once per *process*, not once per
    /// call.
    pub fn global() -> PredictorCache {
        static GLOBAL: OnceLock<PredictorCache> = OnceLock::new();
        GLOBAL.get_or_init(PredictorCache::new).clone()
    }

    /// The trained set for `(scenario, kind)`: a shared clone on a hit,
    /// trained (and retained) on a miss. `pool` must be the pool `scenario`
    /// describes — the server resolves it through its pool tier first, so
    /// the trace data is never built twice.
    pub fn get(
        &self,
        kind: PredictorKind,
        scenario: MarketScenario,
        pool: &MarketPool,
    ) -> Arc<MarketPredictorSet> {
        let key = (scenario, kind);
        let cell = {
            let mut sets = self.inner.sets.lock().expect("predictor cache lock");
            match sets.get(&key) {
                Some(cell) => {
                    self.inner.hits.fetch_add(1, Ordering::Relaxed);
                    Arc::clone(cell)
                }
                None => {
                    self.inner.misses.fetch_add(1, Ordering::Relaxed);
                    let cell = Arc::new(OnceLock::new());
                    sets.insert(key, Arc::clone(&cell));
                    cell
                }
            }
        };
        let trained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Arc::clone(cell.get_or_init(|| Arc::new(train_for_scenario(kind, scenario, pool))))
        }));
        match trained {
            Ok(set) => set,
            Err(payload) => {
                // Training panicked (e.g. a trace shorter than the warm-up
                // window). Drop the still-empty entry so the next request
                // for this key counts a fresh miss instead of a hit that
                // silently re-runs the failing training — keeping the
                // "every miss is one training attempt" counter semantic.
                {
                    let mut sets = self.inner.sets.lock().expect("predictor cache lock");
                    if let Some(existing) = sets.get(&key) {
                        if Arc::ptr_eq(existing, &cell) && cell.get().is_none() {
                            sets.remove(&key);
                        }
                    }
                    // Guard dropped here: resuming the unwind while holding
                    // the lock would poison the whole tier.
                }
                std::panic::resume_unwind(payload)
            }
        }
    }

    /// Number of distinct `(scenario, kind)` pairs currently resident.
    pub fn len(&self) -> usize {
        self.inner.sets.lock().expect("predictor cache lock").len()
    }

    /// Whether no predictor has been trained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident predictor set (counters are retained).
    pub fn clear(&self) {
        self.inner.sets.lock().expect("predictor cache lock").clear();
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_market::{RevocationEstimator, SimTime};

    #[test]
    fn hits_share_the_same_trained_set() {
        let cache = PredictorCache::new();
        let scenario = MarketScenario::from_days(1, 7);
        let pool = scenario.build();
        let a = cache.get(PredictorKind::Logistic, scenario, &pool);
        let b = cache.get(PredictorKind::Logistic, scenario, &pool);
        // Same Arc-backed set, not a retrained equal one.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_train_distinct_sets() {
        let cache = PredictorCache::new();
        let near = MarketScenario::from_days(1, 7);
        let far = MarketScenario::from_days(1, 8);
        let a = cache.get(PredictorKind::Logistic, near, &near.build());
        let b = cache.get(PredictorKind::Logistic, far, &far.build());
        // Distinct scenarios are distinct entries…
        assert!(!Arc::ptr_eq(&a, &b));
        // …and so are distinct kinds over one scenario.
        let c = cache.get(PredictorKind::Tributary, near, &near.build());
        assert_eq!(c.name(), "Tributary");
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.len(), 3);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_set_answers_like_a_fresh_training_run() {
        let cache = PredictorCache::new();
        let scenario = MarketScenario::from_days(1, 3);
        let pool = scenario.build();
        let cached = cache.get(PredictorKind::Logistic, scenario, &pool);
        let fresh = train_for_scenario(PredictorKind::Logistic, scenario, &pool);
        let t = SimTime::from_hours(20);
        for market in pool.iter() {
            let name = market.instance().name();
            let bid = market.price_at(t) + 0.02;
            assert_eq!(
                cached.revocation_probability(name, t, bid),
                fresh.revocation_probability(name, t, bid),
                "{name}: tier must be a pure memo of train_for_scenario"
            );
        }
    }

    #[test]
    fn failed_training_does_not_poison_the_entry() {
        let cache = PredictorCache::new();
        // A trace entirely inside the warm-up window makes training panic.
        let scenario = MarketScenario::new(spottune_market::SimDur::from_hours(2), 1);
        let pool = scenario.build();
        for _ in 0..2 {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cache.get(PredictorKind::Logistic, scenario, &pool)
            }));
            assert!(attempt.is_err(), "short trace must fail to train");
        }
        // Both attempts count as misses (each ran a training attempt) and
        // nothing poisoned stays resident.
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2, evictions: 0 });
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_handles_see_each_other() {
        let cache = PredictorCache::new();
        let clone = cache.clone();
        let scenario = MarketScenario::from_days(1, 4);
        clone.get(PredictorKind::Logistic, scenario, &scenario.build());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
    }
}
