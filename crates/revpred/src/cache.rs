//! Cross-request trained-predictor tier: `(scenario × predictor kind)`-keyed,
//! `Arc`-backed sharing of trained [`MarketPredictorSet`]s.
//!
//! Training a learned revocation predictor is the most expensive thing a
//! campaign can ask for — a RevPred set is six three-tier LSTMs trained
//! over thousands of samples — and a sweep evaluates thousands of
//! campaigns against the *same* few scenarios. Like the market-pool tier
//! ([`spottune_market::PoolCache`]), a long-running server must train each
//! `(scenario, kind)` pair once and hand out reference-counted clones;
//! [`train_for_scenario`] makes the trained set a pure function of the
//! key, so a cache hit can never change a report, only wall-clock.

use crate::estimator::{train_for_scenario, MarketPredictorSet, PredictorKind};
use spottune_market::{CacheStats, MarketPool, MarketScenario};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A shared, thread-safe trained-predictor tier keyed by
/// `(MarketScenario, PredictorKind)`.
///
/// Cloning the cache clones a handle to the same tier (the server hands
/// one to every worker). The map mutex guards only the entry lookup; the
/// expensive training runs inside a per-key `OnceLock`, so distinct cold
/// keys train in parallel, hits never wait behind a training run, and two
/// workers racing on the *same* cold key still pay the training cost once.
/// An optional capacity bound ([`PredictorCache::with_capacity`]) turns
/// the tier into an LRU, mirroring the curve tier
/// (`CurveCache::with_capacity`): a sweep over many market scenarios
/// would otherwise retain every trained set it ever produced. Evictions
/// are counted in [`CacheStats::evictions`]; an evicted key retrains on
/// its next request (a fresh miss), never changing any report.
#[derive(Debug, Clone, Default)]
pub struct PredictorCache {
    inner: Arc<PredictorCacheInner>,
}

#[derive(Debug, Default)]
struct PredictorCacheInner {
    sets: Mutex<PredictorStore>,
    /// Maximum resident trained sets; 0 means unbounded.
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

type PredictorKey = (MarketScenario, PredictorKind);
type PredictorCell = Arc<OnceLock<Arc<MarketPredictorSet>>>;

/// Resident entries plus the logical clock backing LRU ordering.
#[derive(Debug, Default)]
struct PredictorStore {
    entries: BTreeMap<PredictorKey, PredictorEntry>,
    /// Monotone lookup/insert counter; entries stamp their last touch.
    tick: u64,
}

#[derive(Debug)]
struct PredictorEntry {
    cell: PredictorCell,
    last_used: u64,
}

impl PredictorStore {
    fn touch(&mut self, key: &PredictorKey) -> Option<PredictorCell> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|e| {
            e.last_used = tick;
            Arc::clone(&e.cell)
        })
    }
}

impl PredictorCache {
    /// Creates an empty, unbounded tier.
    pub fn new() -> Self {
        PredictorCache::default()
    }

    /// Creates an empty tier retaining at most `capacity` trained sets,
    /// evicting the least-recently-used entry on overflow (`0` means
    /// unbounded). Eviction scans the resident entries for the oldest
    /// stamp — O(capacity) per overflowing insert, and only sweeps whose
    /// scenario working set exceeds the bound ever pay it. An entry whose
    /// training is still in flight can be evicted safely: the trainer
    /// holds its own handle and still returns its set; the tier merely
    /// forgets it.
    pub fn with_capacity(capacity: usize) -> Self {
        PredictorCache {
            inner: Arc::new(PredictorCacheInner { capacity, ..PredictorCacheInner::default() }),
        }
    }

    /// The capacity bound (`0` = unbounded).
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// The process-wide shared tier, mirroring the curve memo's
    /// `CurveCache::global`: thin clients that spin up a short-lived
    /// server per sweep (the figure binaries) route through this so a
    /// `(scenario, kind)` pair trains once per *process*, not once per
    /// call.
    pub fn global() -> PredictorCache {
        static GLOBAL: OnceLock<PredictorCache> = OnceLock::new();
        GLOBAL.get_or_init(PredictorCache::new).clone()
    }

    /// The trained set for `(scenario, kind)`: a shared clone on a hit,
    /// trained (and retained) on a miss. `pool` must be the pool `scenario`
    /// describes — the server resolves it through its pool tier first, so
    /// the trace data is never built twice.
    pub fn get(
        &self,
        kind: PredictorKind,
        scenario: MarketScenario,
        pool: &MarketPool,
    ) -> Arc<MarketPredictorSet> {
        let key = (scenario, kind);
        let cell = {
            let mut sets = self.inner.sets.lock().expect("predictor cache lock");
            match sets.touch(&key) {
                Some(cell) => {
                    self.inner.hits.fetch_add(1, Ordering::Relaxed);
                    cell
                }
                None => {
                    self.inner.misses.fetch_add(1, Ordering::Relaxed);
                    let capacity = self.inner.capacity;
                    if capacity > 0 && sets.entries.len() >= capacity {
                        let victim = sets
                            .entries
                            .iter()
                            .min_by_key(|(_, e)| e.last_used)
                            .map(|(k, _)| *k)
                            .expect("non-empty store at capacity");
                        sets.entries.remove(&victim);
                        self.inner.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    let cell: PredictorCell = Arc::new(OnceLock::new());
                    let tick = sets.tick;
                    sets.entries.insert(
                        key,
                        PredictorEntry { cell: Arc::clone(&cell), last_used: tick },
                    );
                    cell
                }
            }
        };
        let trained = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Arc::clone(cell.get_or_init(|| Arc::new(train_for_scenario(kind, scenario, pool))))
        }));
        match trained {
            Ok(set) => set,
            Err(payload) => {
                // Training panicked (e.g. a trace shorter than the warm-up
                // window). Drop the still-empty entry so the next request
                // for this key counts a fresh miss instead of a hit that
                // silently re-runs the failing training — keeping the
                // "every miss is one training attempt" counter semantic.
                {
                    let mut sets = self.inner.sets.lock().expect("predictor cache lock");
                    if let Some(existing) = sets.entries.get(&key) {
                        if Arc::ptr_eq(&existing.cell, &cell) && cell.get().is_none() {
                            sets.entries.remove(&key);
                        }
                    }
                    // Guard dropped here: resuming the unwind while holding
                    // the lock would poison the whole tier.
                }
                std::panic::resume_unwind(payload)
            }
        }
    }

    /// Number of distinct `(scenario, kind)` pairs currently resident.
    pub fn len(&self) -> usize {
        self.inner.sets.lock().expect("predictor cache lock").entries.len()
    }

    /// Whether no predictor has been trained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident predictor set (counters are retained).
    pub fn clear(&self) {
        self.inner.sets.lock().expect("predictor cache lock").entries.clear();
    }

    /// Hit/miss/eviction counters since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.hits.load(Ordering::Relaxed),
            misses: self.inner.misses.load(Ordering::Relaxed),
            evictions: self.inner.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_market::{RevocationEstimator, SimTime};

    #[test]
    fn hits_share_the_same_trained_set() {
        let cache = PredictorCache::new();
        let scenario = MarketScenario::from_days(1, 7);
        let pool = scenario.build();
        let a = cache.get(PredictorKind::Logistic, scenario, &pool);
        let b = cache.get(PredictorKind::Logistic, scenario, &pool);
        // Same Arc-backed set, not a retrained equal one.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1, evictions: 0 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_keys_train_distinct_sets() {
        let cache = PredictorCache::new();
        let near = MarketScenario::from_days(1, 7);
        let far = MarketScenario::from_days(1, 8);
        let a = cache.get(PredictorKind::Logistic, near, &near.build());
        let b = cache.get(PredictorKind::Logistic, far, &far.build());
        // Distinct scenarios are distinct entries…
        assert!(!Arc::ptr_eq(&a, &b));
        // …and so are distinct kinds over one scenario.
        let c = cache.get(PredictorKind::Tributary, near, &near.build());
        assert_eq!(c.name(), "Tributary");
        assert_eq!(cache.stats().misses, 3);
        assert_eq!(cache.len(), 3);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn cached_set_answers_like_a_fresh_training_run() {
        let cache = PredictorCache::new();
        let scenario = MarketScenario::from_days(1, 3);
        let pool = scenario.build();
        let cached = cache.get(PredictorKind::Logistic, scenario, &pool);
        let fresh = train_for_scenario(PredictorKind::Logistic, scenario, &pool);
        let t = SimTime::from_hours(20);
        for market in pool.iter() {
            let name = market.instance().name();
            let bid = market.price_at(t) + 0.02;
            assert_eq!(
                cached.revocation_probability(name, t, bid),
                fresh.revocation_probability(name, t, bid),
                "{name}: tier must be a pure memo of train_for_scenario"
            );
        }
    }

    #[test]
    fn failed_training_does_not_poison_the_entry() {
        let cache = PredictorCache::new();
        // A trace entirely inside the warm-up window makes training panic.
        let scenario = MarketScenario::new(spottune_market::SimDur::from_hours(2), 1);
        let pool = scenario.build();
        for _ in 0..2 {
            let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                cache.get(PredictorKind::Logistic, scenario, &pool)
            }));
            assert!(attempt.is_err(), "short trace must fail to train");
        }
        // Both attempts count as misses (each ran a training attempt) and
        // nothing poisoned stays resident.
        assert_eq!(cache.stats(), CacheStats { hits: 0, misses: 2, evictions: 0 });
        assert!(cache.is_empty());
    }

    #[test]
    fn bounded_tier_evicts_least_recently_used() {
        let cache = PredictorCache::with_capacity(2);
        assert_eq!(cache.capacity(), 2);
        let a = MarketScenario::from_days(1, 7);
        let b = MarketScenario::from_days(1, 8);
        let c = MarketScenario::from_days(1, 9);
        cache.get(PredictorKind::Logistic, a, &a.build());
        cache.get(PredictorKind::Logistic, b, &b.build());
        // Refresh `a` so `b` becomes the LRU victim.
        cache.get(PredictorKind::Logistic, a, &a.build());
        cache.get(PredictorKind::Logistic, c, &c.build());
        assert_eq!(cache.len(), 2, "capacity bound respected");
        assert_eq!(cache.stats().evictions, 1);
        // `b` was evicted: asking again retrains (a miss), while the
        // refreshed `a` is still a hit — and the retrained set answers
        // identically (pure function of the key).
        let before = cache.stats();
        let retrained = cache.get(PredictorKind::Logistic, b, &b.build());
        assert_eq!(cache.stats().misses, before.misses + 1);
        let fresh = train_for_scenario(PredictorKind::Logistic, b, &b.build());
        let t = SimTime::from_hours(20);
        let pool = b.build();
        let market = pool.iter().next().expect("non-empty pool");
        let name = market.instance().name();
        let bid = market.price_at(t) + 0.02;
        assert_eq!(
            retrained.revocation_probability(name, t, bid),
            fresh.revocation_probability(name, t, bid),
            "eviction must never change an answer"
        );
        let hit = cache.get(PredictorKind::Logistic, a, &a.build());
        assert_eq!(hit.name(), "LogisticRegression");
    }

    #[test]
    fn shared_handles_see_each_other() {
        let cache = PredictorCache::new();
        let clone = cache.clone();
        let scenario = MarketScenario::from_days(1, 4);
        clone.get(PredictorKind::Logistic, scenario, &scenario.build());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.len(), 1);
    }
}
