//! Re-implementation of Tributary's revocation predictor [1], the baseline
//! of paper Fig. 10 ("Tributary Predict").
//!
//! Differences from RevPred, per §III.B and §IV.D:
//! * the **whole** input goes through the LSTM — there is no separate dense
//!   path for the present record (we append the normalized max price as a
//!   constant 7th feature to every timestep);
//! * training max prices are generated with the **uniform-random** delta
//!   rather than Algorithm 2 (that choice lives in
//!   [`crate::dataset::DeltaPolicy`], picked by the caller).

use crate::dataset::{Sample, HISTORY_LEN, PRESENT_FEATURES};
use crate::features::RECORD_FEATURES;
use crate::model::{calibrate, ProbModel, TrainConfig, TrainStats};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use spottune_nn::activation::sigmoid;
use spottune_nn::loss::weighted_bce_with_logits;
use spottune_nn::optim::clip_global_norm;
use spottune_nn::prelude::*;

/// The Tributary baseline network.
#[derive(Debug)]
pub struct TributaryNet {
    lstm: StackedLstm,
    head: Dense,
    phi_pos: f64,
    phi_neg: f64,
    hidden: usize,
}

/// Packs samples for the single-path LSTM: 60 timesteps (59 history + the
/// present record), each with 7 features (6 engineered + max price).
fn batch_sequence(samples: &[&Sample]) -> Vec<Matrix> {
    let b = samples.len();
    let mut seq = Vec::with_capacity(HISTORY_LEN + 1);
    for t in 0..HISTORY_LEN {
        seq.push(Matrix::from_fn(b, PRESENT_FEATURES, |r, c| {
            if c < RECORD_FEATURES {
                samples[r].history[t][c]
            } else {
                // Max price replicated on every timestep.
                samples[r].present[RECORD_FEATURES]
            }
        }));
    }
    seq.push(Matrix::from_fn(b, PRESENT_FEATURES, |r, c| samples[r].present[c]));
    seq
}

impl TributaryNet {
    /// Initializes an untrained network.
    pub fn new(cfg: &TrainConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let lstm = StackedLstm::new(PRESENT_FEATURES, cfg.lstm_hidden, cfg.lstm_tiers, &mut rng);
        let head = Dense::new(cfg.lstm_hidden, 1, Activation::Identity, &mut rng);
        TributaryNet { lstm, head, phi_pos: 0.5, phi_neg: 0.5, hidden: cfg.lstm_hidden }
    }

    /// Trains on labeled samples (same weighted loss as RevPred so the
    /// comparison isolates input-shape and delta-policy differences).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train(&mut self, samples: &[Sample], cfg: &TrainConfig) -> TrainStats {
        assert!(!samples.is_empty(), "cannot train on an empty dataset");
        let n_pos = samples.iter().filter(|s| s.label).count();
        self.phi_pos = (n_pos as f64 / samples.len() as f64).clamp(0.02, 0.98);
        self.phi_neg = 1.0 - self.phi_pos;
        let (w_pos, w_neg) = (self.phi_neg, self.phi_pos);

        let mut rng = StdRng::seed_from_u64(cfg.seed ^ TRIB_SHUFFLE_SALT);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch) {
                let batch: Vec<&Sample> = chunk.iter().map(|&i| &samples[i]).collect();
                let targets: Vec<f64> =
                    batch.iter().map(|s| if s.label { 1.0 } else { 0.0 }).collect();
                self.lstm.zero_grad();
                self.head.zero_grad();
                let hs = self.lstm.forward(&batch_sequence(&batch));
                let logits = self.head.forward(hs.last().expect("nonempty"));
                let (loss, dlogits) = weighted_bce_with_logits(&logits, &targets, w_pos, w_neg);
                total += loss;
                batches += 1;
                let dh_last = self.head.backward(&dlogits);
                let mut dhs: Vec<Matrix> = (0..=HISTORY_LEN)
                    .map(|_| Matrix::zeros(batch.len(), self.hidden))
                    .collect();
                *dhs.last_mut().expect("nonempty") = dh_last;
                self.lstm.backward(&dhs);
                {
                    let mut grads: Vec<&mut [f64]> = Vec::new();
                    grads.extend(self.lstm.grads_mut());
                    grads.extend(self.head.grads_mut());
                    clip_global_norm(&mut grads, cfg.optim.grad_clip);
                }
                self.lstm.step_optim(&cfg.optim);
                self.head.step(&cfg.optim);
            }
            epoch_losses.push(total / batches.max(1) as f64);
        }
        TrainStats { epoch_losses, phi_pos: self.phi_pos }
    }

    /// Raw network probability before calibration.
    pub fn predict_raw(&self, sample: &Sample) -> f64 {
        let hs = self.lstm.forward_inference(&batch_sequence(&[sample]));
        let logits = self.head.forward_inference(hs.last().expect("nonempty"));
        sigmoid(logits[(0, 0)])
    }
}

impl ProbModel for TributaryNet {
    fn predict(&self, sample: &Sample) -> f64 {
        calibrate(self.predict_raw(sample), self.phi_pos, self.phi_neg)
    }

    fn name(&self) -> &'static str {
        "Tributary"
    }
}

/// Shuffle-seed salt, distinct from RevPred's so the baselines do not share
/// batch orderings.
const TRIB_SHUFFLE_SALT: u64 = 0x771b;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_dataset, DeltaPolicy};
    use spottune_market::prelude::*;

    fn tiny_cfg() -> TrainConfig {
        TrainConfig {
            lstm_hidden: 6,
            lstm_tiers: 2,
            dense_hidden: 6,
            epochs: 3,
            batch: 16,
            seed: 4,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn trains_and_predicts_probabilities() {
        let pool = MarketPool::standard(SimDur::from_days(3), 5);
        let market = pool.market("m4.2xlarge").unwrap();
        let samples = build_dataset(
            market,
            SimTime::from_hours(2),
            SimTime::from_hours(40),
            SimDur::from_mins(25),
            DeltaPolicy::UniformRandom,
            13,
        );
        let cfg = tiny_cfg();
        let mut net = TributaryNet::new(&cfg);
        let stats = net.train(&samples, &cfg);
        // Loss should not diverge (tiny net + few epochs may plateau).
        let first = stats.epoch_losses[0];
        let last = *stats.epoch_losses.last().unwrap();
        assert!(last.is_finite() && last < first * 1.05, "{first} -> {last}");
        for s in samples.iter().take(10) {
            let p = net.predict(s);
            assert!((0.0..=1.0).contains(&p));
        }
        assert_eq!(net.name(), "Tributary");
    }
}
