//! The six engineered features RevPred computes per price record (§III.B):
//!
//! 1. current spot market price;
//! 2. average spot market price (over the past hour);
//! 3. number of price changes in the past hour;
//! 4. time since the current price was set;
//! 5. whether the time is a workday;
//! 6. current hour of the day.

use spottune_market::time::HOUR;
use spottune_market::{PriceTrace, SimDur, SimTime};

/// Number of engineered features per record.
pub const RECORD_FEATURES: usize = 6;

/// Raw (un-normalized) feature vector at instant `t`.
pub fn raw_features(trace: &PriceTrace, t: SimTime) -> [f64; RECORD_FEATURES] {
    let hour_ago = t.saturating_sub(SimDur::from_secs(HOUR));
    [
        trace.price_at(t),
        trace.avg_over(hour_ago, t.max(SimTime::from_mins(1))),
        trace.changes_in(hour_ago, t.max(SimTime::from_mins(1))) as f64,
        trace.duration_since_change(t).as_hours_f64(),
        if t.is_workday() { 1.0 } else { 0.0 },
        t.hour_of_day() as f64,
    ]
}

/// Normalizes a raw feature vector into network-friendly ranges: prices are
/// divided by the instance's on-demand price, counts by 60, durations by one
/// hour (already in hours), the hour of day by 24.
pub fn normalize(raw: [f64; RECORD_FEATURES], on_demand_price: f64) -> [f64; RECORD_FEATURES] {
    assert!(on_demand_price > 0.0, "on-demand price must be positive");
    [
        raw[0] / on_demand_price,
        raw[1] / on_demand_price,
        raw[2] / 60.0,
        raw[3],
        raw[4],
        raw[5] / 24.0,
    ]
}

/// Normalized features at `t` in one call.
pub fn features_at(
    trace: &PriceTrace,
    t: SimTime,
    on_demand_price: f64,
) -> [f64; RECORD_FEATURES] {
    normalize(raw_features(trace, t), on_demand_price)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> PriceTrace {
        // 90 minutes: flat 0.2 for 60, then climbing.
        let mut prices = vec![0.2; 60];
        for i in 0..30 {
            prices.push(0.2 + 0.01 * (i + 1) as f64);
        }
        PriceTrace::from_minutes(prices)
    }

    #[test]
    fn raw_features_match_trace_queries() {
        let t = trace();
        let at = SimTime::from_mins(75);
        let f = raw_features(&t, at);
        assert_eq!(f[0], t.price_at(at));
        assert!(f[1] > 0.2 && f[1] < f[0]); // average lags the climb
        assert!(f[2] >= 15.0); // many changes during the climb
        assert_eq!(f[3], 0.0); // price changed this minute
        assert_eq!(f[4], 1.0); // day 0 is a Wednesday
        assert_eq!(f[5], 1.0); // 75 min = hour 1
    }

    #[test]
    fn flat_region_has_zero_changes() {
        let t = trace();
        let f = raw_features(&t, SimTime::from_mins(59));
        assert_eq!(f[2], 0.0);
        assert!(f[3] > 0.9); // ~59 minutes since the price was set
    }

    #[test]
    fn normalization_bounds() {
        let t = trace();
        let f = features_at(&t, SimTime::from_mins(80), 0.4);
        assert!(f[0] > 0.0 && f[0] < 2.0);
        assert!(f[2] <= 1.0);
        assert!(f[5] < 1.0);
    }

    #[test]
    #[should_panic(expected = "on-demand price must be positive")]
    fn bad_normalizer_rejected() {
        let _ = normalize([0.0; 6], 0.0);
    }
}
