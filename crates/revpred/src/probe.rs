//! Bid-split probe contexts and the probe-caching estimator wrapper.
//!
//! The provisioner probes `revocation_probability(market, t, max_price)`
//! once per market per deployment decision, and a batched sweep makes
//! hundreds of thousands of such probes. For the learned predictors each
//! probe rebuilt the full [`Sample`] — 59 history records, ~240 price-trace
//! window queries — even though only the *bid* (`max_price`) differs
//! between probes at the same `(market, t)`: the history and the six "now"
//! features are pure functions of the market and the instant.
//!
//! [`ProbeCtx`] is the bid-independent remainder of a prediction, computed
//! once and replayed per bid:
//!
//! * **Logistic** — `z = Σᵢ wᵢxᵢ + b` is a left fold whose final term is
//!   the bid feature, so the fold's 360-term prefix is cacheable and
//!   `(prefix + w_bid·x_bid) + b` re-associates nothing: the sum is
//!   bit-identical to the full fold.
//! * **RevPred** — the LSTM path consumes only the history, so its final
//!   hidden state is cacheable; the dense path (which sees the bid) is a
//!   handful of tiny matrix products replayed per probe. The two paths are
//!   independent sub-expressions, and reordering independent IEEE-754
//!   computations changes no bits.
//! * **Tributary** — the bid is replicated into every LSTM timestep, so
//!   only the assembled base sample is reusable; the forward pass replays
//!   per probe (still skipping the trace-window scans).
//!
//! [`ProbeCachedPredictors`] wraps a [`MarketPredictorSet`] with a
//! `(market, t)`-keyed context memo behind an (uncontended) mutex; the
//! batched sweep's SoA path installs it per scenario group, and the core
//! `batch_equivalence` suite locks the wrapped path bit-identical to the
//! plain one.

use crate::dataset::{build_input, Sample, PRESENT_FEATURES};
use crate::estimator::MarketPredictorSet;
use crate::features::RECORD_FEATURES;
use spottune_market::{RevocationEstimator, SimTime};
use spottune_nn::matrix::Matrix;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The bid-independent part of one `(model, market, t)` prediction. Only
/// meaningful for the model that built it (via [`ProbModel::probe_ctx`]) at
/// the same market and instant.
#[derive(Debug, Clone)]
pub enum ProbeCtx {
    /// Left-fold prefix of the logistic dot product over every feature
    /// except the trailing bid.
    Logistic {
        /// `Σᵢ<bid wᵢxᵢ`, accumulated in flatten order.
        prefix: f64,
    },
    /// LSTM hidden state over the history plus the base sample whose
    /// present record is re-bidded per probe.
    Hidden {
        /// Final hidden state of the (bid-independent) recurrent path.
        h_last: Matrix,
        /// The sample the context was built from (bid slot is overwritten).
        sample: Sample,
    },
    /// Full per-probe replay over a reusable base sample (models whose
    /// recurrent path consumes the bid, e.g. Tributary).
    Replay {
        /// The sample to re-bid and re-run.
        sample: Sample,
    },
}

/// One cached context: the model's bid-independent work plus the market's
/// on-demand price (the bid normalizer).
struct ProbeEntry {
    ctx: ProbeCtx,
    od: f64,
}

/// A [`MarketPredictorSet`] with a `(market, t)`-keyed [`ProbeCtx`] memo:
/// same probabilities bit for bit, one sample assembly per distinct probe
/// site instead of one per probe.
pub struct ProbeCachedPredictors {
    inner: Arc<MarketPredictorSet>,
    /// Market names in pool order; a name's position is its cache key.
    markets: Vec<String>,
    cache: Mutex<BTreeMap<(usize, u64), Arc<ProbeEntry>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl fmt::Debug for ProbeCachedPredictors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ProbeCachedPredictors")
            .field("inner", &self.inner)
            .field("entries", &self.cache.lock().map(|c| c.len()).unwrap_or(0))
            .finish()
    }
}

impl ProbeCachedPredictors {
    /// Wraps a trained predictor set.
    pub fn new(inner: Arc<MarketPredictorSet>) -> Self {
        let markets =
            inner.pool().iter().map(|m| m.instance().name().to_string()).collect();
        ProbeCachedPredictors {
            inner,
            markets,
            cache: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The wrapped set.
    pub fn inner(&self) -> &Arc<MarketPredictorSet> {
        &self.inner
    }

    /// `(hits, misses)` of the probe-context memo.
    pub fn probe_stats(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

impl RevocationEstimator for ProbeCachedPredictors {
    fn revocation_probability(&self, instance_name: &str, t: SimTime, max_price: f64) -> f64 {
        let (Some(model), Some(idx)) = (
            self.inner.model(instance_name),
            self.markets.iter().position(|n| n == instance_name),
        ) else {
            return 0.5; // unknown market: no information (as the plain set)
        };
        let key = (idx, t.as_secs());
        let entry = {
            let mut cache = self.cache.lock().expect("probe cache poisoned");
            if let Some(entry) = cache.get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(entry)
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let market = self
                    .inner
                    .pool()
                    .market(instance_name)
                    .expect("market listed at construction");
                let od = market.instance().on_demand_price();
                // The context is built from a sample carrying *this* probe's
                // bid, but every cached part of it is bid-independent, so
                // later probes at other bids replay correctly.
                let ctx = model.probe_ctx(&build_input(market, t, max_price));
                let entry = Arc::new(ProbeEntry { ctx, od });
                cache.insert(key, Arc::clone(&entry));
                entry
            }
        };
        model.predict_probe(&entry.ctx, max_price / entry.od)
    }

    fn name(&self) -> &str {
        RevocationEstimator::name(self.inner.as_ref())
    }
}

/// Builds a 1-row present-record matrix with the bid slot replaced —
/// the probe-path twin of `batch_present(&[sample])` for a re-bid sample.
pub(crate) fn rebid_present(sample: &Sample, bid_feature: f64) -> Matrix {
    let mut present = sample.present;
    present[RECORD_FEATURES] = bid_feature;
    Matrix::from_fn(1, PRESENT_FEATURES, |_, c| present[c])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{train_for_pool, PredictorKind};
    use spottune_market::prelude::*;

    fn pool() -> MarketPool {
        MarketPool::standard(SimDur::from_days(2), 7)
    }

    fn probe_grid(pool: &MarketPool) -> Vec<(String, SimTime, f64)> {
        let mut probes = Vec::new();
        for market in pool.iter() {
            let name = market.instance().name().to_string();
            for h in [0u64, 5, 17, 30, 41] {
                let t = SimTime::from_hours(h) + SimDur::from_secs(10);
                let price = market.price_at(t);
                for delta in [0.0005, 0.01, 0.05, 0.19] {
                    probes.push((name.clone(), t, price + delta));
                }
            }
        }
        probes
    }

    #[test]
    fn cached_probes_are_bit_identical_for_every_kind() {
        let pool = pool();
        for kind in [PredictorKind::Logistic, PredictorKind::RevPred, PredictorKind::Tributary] {
            let set = Arc::new(train_for_pool(kind, &pool, 11));
            let cached = ProbeCachedPredictors::new(Arc::clone(&set));
            for (name, t, bid) in probe_grid(&pool) {
                let want = set.revocation_probability(&name, t, bid);
                let got = cached.revocation_probability(&name, t, bid);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{kind:?} {name} t={t:?} bid={bid}: cached probe must match"
                );
            }
            let (hits, misses) = cached.probe_stats();
            assert!(hits > 0, "{kind:?}: repeated (market, t) probes must hit");
            assert!(misses > 0);
            assert_eq!(cached.name(), set.name());
        }
    }

    #[test]
    fn unknown_markets_keep_the_uninformative_prior() {
        let pool = pool();
        let set = Arc::new(train_for_pool(PredictorKind::Logistic, &pool, 3));
        let cached = ProbeCachedPredictors::new(set);
        assert_eq!(cached.revocation_probability("bogus", SimTime::from_hours(1), 1.0), 0.5);
    }
}
