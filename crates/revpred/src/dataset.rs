//! Training-sample assembly for the revocation predictors: sliding windows
//! over a market's price trace, the Algorithm-2 max-price generation, and
//! ground-truth labels.

use crate::features::{features_at, RECORD_FEATURES};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use spottune_market::stats::trimmed_mean;
use spottune_market::time::HOUR;
use spottune_market::{SimDur, SimTime, SpotMarket};

/// History window length: "the history prices across the past 59 minutes"
/// (§III.B).
pub const HISTORY_LEN: usize = 59;

/// Width of the present record: six engineered features plus the maximum
/// price.
pub const PRESENT_FEATURES: usize = RECORD_FEATURES + 1;

/// One supervised sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// `HISTORY_LEN` normalized feature records, oldest first.
    pub history: Vec<[f64; RECORD_FEATURES]>,
    /// Present record: 6 normalized features + normalized max price.
    pub present: [f64; PRESENT_FEATURES],
    /// Whether the market price exceeded the max price within the next hour.
    pub label: bool,
    /// Sample timestamp (for splits and debugging).
    pub at: SimTime,
}

/// How the training max price is generated from the current price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeltaPolicy {
    /// RevPred's Algorithm 2: current price + trimmed mean (drop smallest
    /// and largest 20 %) of the absolute per-minute price changes over the
    /// previous hour — deltas near the revoked/not-revoked decision border
    /// (an active-learning argument, §III.B).
    Algorithm2,
    /// Tributary's policy: current price + Uniform(1e-5, 0.2) [1].
    UniformRandom,
}

/// The Algorithm-2 delta at time `t`: trimmed mean of `|Δprice|` over the
/// previous hour.
pub fn algorithm2_delta(market: &SpotMarket, t: SimTime) -> f64 {
    let hour_ago = t.saturating_sub(SimDur::from_secs(HOUR));
    let deltas = market.trace().abs_deltas(hour_ago, t.max(SimTime::from_mins(2)));
    trimmed_mean(&deltas, 0.2)
}

/// Builds one (unlabeled) input at `t` with an explicit max price.
pub fn build_input(market: &SpotMarket, t: SimTime, max_price: f64) -> Sample {
    let od = market.instance().on_demand_price();
    let trace = market.trace();
    let mut history = Vec::with_capacity(HISTORY_LEN);
    for back in (1..=HISTORY_LEN).rev() {
        let at = t.saturating_sub(SimDur::from_mins(back as u64));
        history.push(features_at(trace, at, od));
    }
    let now = features_at(trace, t, od);
    let mut present = [0.0; PRESENT_FEATURES];
    present[..RECORD_FEATURES].copy_from_slice(&now);
    present[RECORD_FEATURES] = max_price / od;
    Sample { history, present, label: false, at: t }
}

/// Builds a labeled sample at `t` using the given delta policy.
pub fn build_sample(
    market: &SpotMarket,
    t: SimTime,
    policy: DeltaPolicy,
    rng: &mut StdRng,
) -> Sample {
    let price = market.price_at(t);
    let delta = match policy {
        DeltaPolicy::Algorithm2 => {
            // Half the samples sit at the decision border — current price
            // plus (jittered) average fluctuation, the active-learning
            // argument of §III.B — and half cover the full inference-time
            // delta range so random max prices are in-distribution. On the
            // paper's us-east-1 traces the average fluctuation itself spans
            // the [1e-5, 0.2] range; our synthetic markets trade at smaller
            // absolute prices, so coverage needs the explicit mixture
            // (substitution documented in DESIGN.md).
            if rng.random_bool(0.5) {
                let d = algorithm2_delta(market, t);
                let d = if d > 0.0 { d } else { 1e-4 };
                d * rng.random_range(0.5..3.0)
            } else {
                rng.random_range(0.00001..0.2)
            }
        }
        DeltaPolicy::UniformRandom => rng.random_range(0.00001..0.2),
    };
    let max_price = price + delta;
    let mut sample = build_input(market, t, max_price);
    sample.label = market.revoked_within_hour(t, max_price);
    sample
}

/// Builds a dataset by sliding over `[from, to)` with `stride`.
///
/// # Panics
///
/// Panics if the window is empty or the stride is zero.
pub fn build_dataset(
    market: &SpotMarket,
    from: SimTime,
    to: SimTime,
    stride: SimDur,
    policy: DeltaPolicy,
    seed: u64,
) -> Vec<Sample> {
    assert!(from < to, "empty sampling window");
    assert!(stride.as_secs() > 0, "stride must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    let mut t = from;
    while t < to {
        out.push(build_sample(market, t, policy, &mut rng));
        t += stride;
    }
    out
}

/// Positive-class fraction `φ⁺` of a dataset (for the class-weighted loss
/// and the Eq. 3 calibration).
pub fn positive_fraction(samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|s| s.label).count() as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_market::prelude::*;

    fn market() -> SpotMarket {
        let pool = MarketPool::standard(SimDur::from_days(3), 9);
        pool.market("r4.large").unwrap().clone()
    }

    #[test]
    fn sample_shapes() {
        let m = market();
        let mut rng = StdRng::seed_from_u64(1);
        let s = build_sample(&m, SimTime::from_hours(5), DeltaPolicy::Algorithm2, &mut rng);
        assert_eq!(s.history.len(), HISTORY_LEN);
        assert_eq!(s.present.len(), PRESENT_FEATURES);
        // Max price strictly above current (delta > 0).
        let od = m.instance().on_demand_price();
        assert!(s.present[RECORD_FEATURES] * od > m.price_at(SimTime::from_hours(5)));
    }

    #[test]
    fn labels_match_ground_truth() {
        let m = market();
        let mut rng = StdRng::seed_from_u64(2);
        for h in [2u64, 10, 20, 40] {
            let t = SimTime::from_hours(h);
            let s = build_sample(&m, t, DeltaPolicy::Algorithm2, &mut rng);
            let od = m.instance().on_demand_price();
            let max_price = s.present[RECORD_FEATURES] * od;
            assert_eq!(s.label, m.revoked_within_hour(t, max_price));
        }
    }

    #[test]
    fn dataset_has_both_classes_on_volatile_market() {
        let m = market(); // r4.large is the Volatile regime
        let samples = build_dataset(
            &m,
            SimTime::from_hours(2),
            SimTime::from_hours(60),
            SimDur::from_mins(10),
            DeltaPolicy::Algorithm2,
            3,
        );
        let phi = positive_fraction(&samples);
        assert!(
            phi > 0.05 && phi < 0.95,
            "positive fraction {phi} should be non-degenerate"
        );
    }

    #[test]
    fn algorithm2_tracks_volatility() {
        let pool = MarketPool::standard(SimDur::from_days(2), 4);
        let stable = pool.market("m4.4xlarge").unwrap();
        let volatile = pool.market("r4.large").unwrap();
        let t = SimTime::from_hours(20);
        // Normalize by on-demand price to compare across instance types.
        let ds = algorithm2_delta(stable, t) / stable.instance().on_demand_price();
        let dv = algorithm2_delta(volatile, t) / volatile.instance().on_demand_price();
        assert!(
            dv >= ds,
            "volatile market delta {dv} should be at least stable {ds}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let m = market();
        let a = build_dataset(
            &m,
            SimTime::from_hours(2),
            SimTime::from_hours(6),
            SimDur::from_mins(30),
            DeltaPolicy::UniformRandom,
            7,
        );
        let b = build_dataset(
            &m,
            SimTime::from_hours(2),
            SimTime::from_hours(6),
            SimDur::from_mins(30),
            DeltaPolicy::UniformRandom,
            7,
        );
        assert_eq!(a, b);
    }
}
