//! The RevPred network (§III.B): a three-tier LSTM over the 59 history
//! records, three fully-connected layers over the present record, a
//! concatenated head producing a logit, class-weighted BCE training, and the
//! Eq. 3 odds-ratio calibration.

use crate::dataset::{Sample, HISTORY_LEN, PRESENT_FEATURES};
use crate::features::RECORD_FEATURES;
use crate::probe::ProbeCtx;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use spottune_nn::activation::sigmoid;
use spottune_nn::loss::weighted_bce_with_logits;
use spottune_nn::optim::clip_global_norm;
use spottune_nn::prelude::*;

/// A model that maps a [`Sample`] to a calibrated revocation probability.
///
/// Implemented by [`RevPredNet`], the Tributary baseline and the logistic
/// baseline, so the estimator plumbing and the evaluation harness are shared.
pub trait ProbModel: std::fmt::Debug + Send + Sync {
    /// Calibrated probability that the instance is revoked within an hour.
    fn predict(&self, sample: &Sample) -> f64;

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// The bid-independent part of a prediction at `sample`'s market and
    /// instant, reusable across probes that differ only in their bid (see
    /// [`crate::probe`]). The default keeps the whole sample and replays
    /// per probe — correct for any model; models with a bid-free sub-path
    /// override this to cache that sub-path's result.
    fn probe_ctx(&self, sample: &Sample) -> ProbeCtx {
        ProbeCtx::Replay { sample: sample.clone() }
    }

    /// Completes a prediction from a context this model built (same market,
    /// same instant) and a normalized bid feature (`max_price / od`, the
    /// value `build_input` writes into the present record's bid slot).
    /// Bit-identical to `predict` over the samely-bidded full sample.
    fn predict_probe(&self, ctx: &ProbeCtx, bid_feature: f64) -> f64 {
        match ctx {
            ProbeCtx::Replay { sample } => {
                let mut s = sample.clone();
                s.present[RECORD_FEATURES] = bid_feature;
                self.predict(&s)
            }
            _ => unreachable!("probe context from a different model family"),
        }
    }
}

/// Training hyper-parameters for the neural predictors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// LSTM hidden width.
    pub lstm_hidden: usize,
    /// Number of stacked LSTM tiers (3 in the paper).
    pub lstm_tiers: usize,
    /// Width of the present-record dense path.
    pub dense_hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
    /// Optimizer settings.
    pub optim: OptimConfig,
    /// Weight-init / shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            lstm_hidden: 16,
            lstm_tiers: 3,
            dense_hidden: 16,
            epochs: 10,
            batch: 32,
            optim: OptimConfig { lr: 3e-3, ..OptimConfig::default() },
            seed: 1,
        }
    }
}

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainStats {
    /// Mean weighted BCE per epoch.
    pub epoch_losses: Vec<f64>,
    /// Positive fraction `φ⁺` of the training set.
    pub phi_pos: f64,
}

/// The RevPred network.
#[derive(Debug)]
pub struct RevPredNet {
    lstm: StackedLstm,
    fc1: Dense,
    fc2: Dense,
    fc3: Dense,
    head: Dense,
    phi_pos: f64,
    phi_neg: f64,
    lstm_hidden: usize,
}

/// Packs sample histories into per-timestep batch matrices.
pub(crate) fn batch_history(samples: &[&Sample]) -> Vec<Matrix> {
    let b = samples.len();
    (0..HISTORY_LEN)
        .map(|t| {
            Matrix::from_fn(b, RECORD_FEATURES, |r, c| samples[r].history[t][c])
        })
        .collect()
}

/// Packs sample present records into a batch matrix.
pub(crate) fn batch_present(samples: &[&Sample]) -> Matrix {
    Matrix::from_fn(samples.len(), PRESENT_FEATURES, |r, c| samples[r].present[c])
}

/// The class-imbalance calibration of §III.B: converts the raw network
/// output `p_hat` into the final probability using the training-set class
/// fractions.
///
/// With the paper's class weights (positive weighted by `φ⁻`, negative by
/// `φ⁺`), the optimum of the weighted BCE is
/// `P̂ = φ⁻π / (φ⁻π + φ⁺(1−π))` for true posterior `π`, so recovering `π`
/// requires `π/(1−π) = P̂·φ⁺ / ((1−P̂)·φ⁻)`. The paper's printed Eq. 3 has
/// the `φ` ratio inverted, which contradicts its own weighting scheme and
/// empirically collapses recall on positive-heavy markets — we implement
/// the consistent form and document the erratum in DESIGN.md.
pub fn calibrate(p_hat: f64, phi_pos: f64, phi_neg: f64) -> f64 {
    let p_hat = p_hat.clamp(1e-9, 1.0 - 1e-9);
    let odds = (p_hat * phi_pos) / ((1.0 - p_hat) * phi_neg);
    odds / (1.0 + odds)
}

impl RevPredNet {
    /// Initializes an untrained network.
    pub fn new(cfg: &TrainConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let lstm = StackedLstm::new(RECORD_FEATURES, cfg.lstm_hidden, cfg.lstm_tiers, &mut rng);
        let fc1 = Dense::new(PRESENT_FEATURES, cfg.dense_hidden, Activation::Tanh, &mut rng);
        let fc2 = Dense::new(cfg.dense_hidden, cfg.dense_hidden, Activation::Tanh, &mut rng);
        let fc3 = Dense::new(cfg.dense_hidden, cfg.dense_hidden, Activation::Tanh, &mut rng);
        let head = Dense::new(
            cfg.lstm_hidden + cfg.dense_hidden,
            1,
            Activation::Identity,
            &mut rng,
        );
        RevPredNet {
            lstm,
            fc1,
            fc2,
            fc3,
            head,
            phi_pos: 0.5,
            phi_neg: 0.5,
            lstm_hidden: cfg.lstm_hidden,
        }
    }

    /// Raw (uncalibrated) batch forward: returns logits.
    fn forward_train(&mut self, samples: &[&Sample]) -> Matrix {
        let hs = self.lstm.forward(&batch_history(samples));
        let h_last = hs.last().expect("non-empty history").clone();
        let p = self.fc3.forward(&self.fc2.forward(&self.fc1.forward(&batch_present(samples))));
        self.head.forward(&h_last.hconcat(&p))
    }

    fn forward_infer(&self, samples: &[&Sample]) -> Matrix {
        let hs = self.lstm.forward_inference(&batch_history(samples));
        let h_last = hs.last().expect("non-empty history");
        let p = self.fc3.forward_inference(
            &self.fc2.forward_inference(&self.fc1.forward_inference(&batch_present(samples))),
        );
        self.head.forward_inference(&h_last.hconcat(&p))
    }

    fn zero_grad(&mut self) {
        self.lstm.zero_grad();
        self.fc1.zero_grad();
        self.fc2.zero_grad();
        self.fc3.zero_grad();
        self.head.zero_grad();
    }

    fn step_optim(&mut self, cfg: &OptimConfig) {
        {
            let mut grads: Vec<&mut [f64]> = Vec::new();
            grads.extend(self.lstm.grads_mut());
            grads.extend(self.fc1.grads_mut());
            grads.extend(self.fc2.grads_mut());
            grads.extend(self.fc3.grads_mut());
            grads.extend(self.head.grads_mut());
            clip_global_norm(&mut grads, cfg.grad_clip);
        }
        self.lstm.step_optim(cfg);
        self.fc1.step(cfg);
        self.fc2.step(cfg);
        self.fc3.step(cfg);
        self.head.step(cfg);
    }

    /// Trains on labeled samples with the class-weighted loss.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn train(&mut self, samples: &[Sample], cfg: &TrainConfig) -> TrainStats {
        assert!(!samples.is_empty(), "cannot train on an empty dataset");
        let n_pos = samples.iter().filter(|s| s.label).count();
        // Clamp the fractions so fully one-sided markets still train.
        self.phi_pos = (n_pos as f64 / samples.len() as f64).clamp(0.02, 0.98);
        self.phi_neg = 1.0 - self.phi_pos;
        // Positive class weighted by φ⁻, negative by φ⁺ (§III.B).
        let (w_pos, w_neg) = (self.phi_neg, self.phi_pos);

        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xbeef);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch) {
                let batch: Vec<&Sample> = chunk.iter().map(|&i| &samples[i]).collect();
                let targets: Vec<f64> =
                    batch.iter().map(|s| if s.label { 1.0 } else { 0.0 }).collect();
                self.zero_grad();
                let logits = self.forward_train(&batch);
                let (loss, dlogits) =
                    weighted_bce_with_logits(&logits, &targets, w_pos, w_neg);
                total += loss;
                batches += 1;
                // Backward: head → (lstm tail, dense path).
                let dconcat = self.head.backward(&dlogits);
                let (dh_last, dp) = dconcat.hsplit(self.lstm_hidden);
                let dp = self.fc1.backward(&self.fc2.backward(&self.fc3.backward(&dp)));
                let _ = dp;
                let mut dhs: Vec<Matrix> = (0..HISTORY_LEN)
                    .map(|_| Matrix::zeros(batch.len(), self.lstm_hidden))
                    .collect();
                *dhs.last_mut().expect("nonempty") = dh_last;
                self.lstm.backward(&dhs);
                self.step_optim(&cfg.optim);
            }
            epoch_losses.push(total / batches.max(1) as f64);
        }
        TrainStats { epoch_losses, phi_pos: self.phi_pos }
    }

    /// Raw network probability (sigmoid of the logit), before calibration.
    pub fn predict_raw(&self, sample: &Sample) -> f64 {
        let logits = self.forward_infer(&[sample]);
        sigmoid(logits[(0, 0)])
    }
}

impl ProbModel for RevPredNet {
    fn predict(&self, sample: &Sample) -> f64 {
        calibrate(self.predict_raw(sample), self.phi_pos, self.phi_neg)
    }

    fn name(&self) -> &'static str {
        "RevPred"
    }

    /// The recurrent path consumes only the (bid-independent) history, so
    /// its final hidden state is the reusable half of a prediction.
    fn probe_ctx(&self, sample: &Sample) -> ProbeCtx {
        let hs = self.lstm.forward_inference(&batch_history(&[sample]));
        let h_last = hs.last().expect("non-empty history").clone();
        ProbeCtx::Hidden { h_last, sample: sample.clone() }
    }

    /// Replays only the dense path over the re-bidded present record and
    /// joins it with the cached hidden state — the exact operations of
    /// [`RevPredNet::predict_raw`] on the re-bidded sample, with the two
    /// independent sub-paths evaluated at different times (which changes
    /// no bits).
    fn predict_probe(&self, ctx: &ProbeCtx, bid_feature: f64) -> f64 {
        let ProbeCtx::Hidden { h_last, sample } = ctx else {
            unreachable!("probe context from a different model family");
        };
        let present = crate::probe::rebid_present(sample, bid_feature);
        let p = self.fc3.forward_inference(
            &self.fc2.forward_inference(&self.fc1.forward_inference(&present)),
        );
        let logits = self.head.forward_inference(&h_last.hconcat(&p));
        calibrate(sigmoid(logits[(0, 0)]), self.phi_pos, self.phi_neg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{build_dataset, DeltaPolicy};
    use spottune_market::prelude::*;

    fn tiny_cfg() -> TrainConfig {
        TrainConfig {
            lstm_hidden: 6,
            lstm_tiers: 2,
            dense_hidden: 6,
            epochs: 3,
            batch: 16,
            seed: 3,
            ..TrainConfig::default()
        }
    }

    fn samples() -> Vec<Sample> {
        let pool = MarketPool::standard(SimDur::from_days(3), 5);
        let market = pool.market("r4.large").unwrap();
        build_dataset(
            market,
            SimTime::from_hours(2),
            SimTime::from_hours(50),
            SimDur::from_mins(20),
            DeltaPolicy::Algorithm2,
            11,
        )
    }

    #[test]
    fn training_reduces_loss() {
        let samples = samples();
        let cfg = tiny_cfg();
        let mut net = RevPredNet::new(&cfg);
        let stats = net.train(&samples, &cfg);
        assert_eq!(stats.epoch_losses.len(), cfg.epochs);
        let first = stats.epoch_losses[0];
        let last = *stats.epoch_losses.last().unwrap();
        assert!(last < first, "loss should fall: {first} -> {last}");
    }

    #[test]
    fn predictions_are_probabilities() {
        let samples = samples();
        let cfg = tiny_cfg();
        let mut net = RevPredNet::new(&cfg);
        net.train(&samples, &cfg);
        for s in samples.iter().take(20) {
            let p = net.predict(s);
            assert!((0.0..=1.0).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn calibration_matches_closed_form() {
        // With balanced classes calibration is the identity.
        assert!((calibrate(0.3, 0.5, 0.5) - 0.3).abs() < 1e-12);
        // Rare positives shrink the balanced output back toward the prior.
        assert!(calibrate(0.5, 0.1, 0.9) < 0.5);
        // The direction flips with the imbalance.
        assert!(calibrate(0.5, 0.9, 0.1) > 0.5);
        // Round-trip: weighting then calibrating recovers the posterior.
        let (pi, phi_pos) = (0.3, 0.2);
        let phi_neg = 1.0 - phi_pos;
        let p_hat = phi_neg * pi / (phi_neg * pi + phi_pos * (1.0 - pi));
        assert!((calibrate(p_hat, phi_pos, phi_neg) - pi).abs() < 1e-9);
        // Extremes stay in range.
        assert!(calibrate(1.0, 0.5, 0.5) <= 1.0);
        assert!(calibrate(0.0, 0.5, 0.5) >= 0.0);
    }

    #[test]
    fn deterministic_training() {
        let samples = samples();
        let cfg = tiny_cfg();
        let mut a = RevPredNet::new(&cfg);
        let mut b = RevPredNet::new(&cfg);
        let sa = a.train(&samples, &cfg);
        let sb = b.train(&samples, &cfg);
        assert_eq!(sa.epoch_losses, sb.epoch_losses);
        assert_eq!(a.predict(&samples[0]), b.predict(&samples[0]));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_training_panics() {
        let cfg = tiny_cfg();
        let mut net = RevPredNet::new(&cfg);
        net.train(&[], &cfg);
    }
}
