//! Binary-classification evaluation: accuracy and F1 (paper Fig. 10(a,b)).

use serde::{Deserialize, Serialize};

/// Confusion-matrix counts at a fixed threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BinaryEval {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl BinaryEval {
    /// Scores predicted probabilities against labels at `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn score(probs: &[f64], labels: &[bool], threshold: f64) -> Self {
        assert_eq!(probs.len(), labels.len(), "prediction/label mismatch");
        let mut e = BinaryEval::default();
        for (&p, &y) in probs.iter().zip(labels) {
            match (p >= threshold, y) {
                (true, true) => e.tp += 1,
                (true, false) => e.fp += 1,
                (false, false) => e.tn += 1,
                (false, true) => e.fn_ += 1,
            }
        }
        e
    }

    /// Total samples scored.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// `#correct / #total` (paper's accuracy definition).
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// Precision `tp / (tp + fp)` (0 when undefined).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// Recall `tp / (tp + fn)` (0 when undefined).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 0.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// F1: harmonic mean of precision and recall ("a synthetic accuracy
    /// measurement when the dataset is skewed", §IV.D).
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let e = BinaryEval::score(&[0.9, 0.1, 0.8, 0.2], &[true, false, true, false], 0.5);
        assert_eq!(e.accuracy(), 1.0);
        assert_eq!(e.f1(), 1.0);
        assert_eq!(e.total(), 4);
    }

    #[test]
    fn known_confusion_matrix() {
        // tp=1 (0.9/true), fp=1 (0.7/false), tn=1 (0.2/false), fn=1 (0.3/true)
        let e = BinaryEval::score(&[0.9, 0.7, 0.2, 0.3], &[true, false, false, true], 0.5);
        assert_eq!((e.tp, e.fp, e.tn, e.fn_), (1, 1, 1, 1));
        assert_eq!(e.accuracy(), 0.5);
        assert_eq!(e.precision(), 0.5);
        assert_eq!(e.recall(), 0.5);
        assert_eq!(e.f1(), 0.5);
    }

    #[test]
    fn degenerate_cases_do_not_divide_by_zero() {
        let empty = BinaryEval::default();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.f1(), 0.0);
        // All-negative predictions on all-negative labels.
        let e = BinaryEval::score(&[0.1, 0.1], &[false, false], 0.5);
        assert_eq!(e.accuracy(), 1.0);
        assert_eq!(e.f1(), 0.0); // no positives to find
    }

    #[test]
    fn threshold_moves_the_tradeoff() {
        let probs = [0.3, 0.6, 0.8];
        let labels = [false, true, true];
        let strict = BinaryEval::score(&probs, &labels, 0.7);
        let lax = BinaryEval::score(&probs, &labels, 0.5);
        assert!(strict.recall() < lax.recall());
    }
}
