//! Bridges trained per-market models to the orchestrator's
//! [`RevocationEstimator`] interface ("for each individual spot market, an
//! independent model is trained offline", §III.B).

use crate::dataset::{build_dataset, build_input, DeltaPolicy, Sample};
use crate::logistic::LogisticModel;
use crate::model::{ProbModel, RevPredNet, TrainConfig};
use crate::tributary::TributaryNet;
use spottune_market::{MarketPool, RevocationEstimator, SimDur, SimTime};
use std::collections::HashMap;
use std::fmt;

/// Which predictor family to train per market.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictorKind {
    /// RevPred: dual-path LSTM + Algorithm-2 deltas.
    RevPred,
    /// Tributary: single-path LSTM + uniform-random deltas.
    Tributary,
    /// Logistic regression on flattened features + Algorithm-2 deltas.
    Logistic,
}

impl PredictorKind {
    /// Delta policy the paper pairs with each predictor.
    pub fn delta_policy(self) -> DeltaPolicy {
        match self {
            PredictorKind::RevPred | PredictorKind::Logistic => DeltaPolicy::Algorithm2,
            PredictorKind::Tributary => DeltaPolicy::UniformRandom,
        }
    }
}

/// One trained model per spot market, usable as a [`RevocationEstimator`].
pub struct MarketPredictorSet {
    pool: MarketPool,
    models: HashMap<String, Box<dyn ProbModel>>,
    label: String,
}

impl fmt::Debug for MarketPredictorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MarketPredictorSet")
            .field("label", &self.label)
            .field("markets", &self.models.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl MarketPredictorSet {
    /// Trains one predictor per market on `[train_from, train_to)` with the
    /// given sampling stride.
    ///
    /// # Panics
    ///
    /// Panics if the training window produces no samples.
    pub fn train(
        kind: PredictorKind,
        pool: &MarketPool,
        train_from: SimTime,
        train_to: SimTime,
        stride: SimDur,
        cfg: &TrainConfig,
    ) -> Self {
        let mut models: HashMap<String, Box<dyn ProbModel>> = HashMap::new();
        for market in pool.iter() {
            let samples = build_dataset(
                market,
                train_from,
                train_to,
                stride,
                kind.delta_policy(),
                cfg.seed ^ market.instance().name().len() as u64,
            );
            let model: Box<dyn ProbModel> = match kind {
                PredictorKind::RevPred => {
                    let mut net = RevPredNet::new(cfg);
                    net.train(&samples, cfg);
                    Box::new(net)
                }
                PredictorKind::Tributary => {
                    let mut net = TributaryNet::new(cfg);
                    net.train(&samples, cfg);
                    Box::new(net)
                }
                PredictorKind::Logistic => {
                    let mut model = LogisticModel::new();
                    model.train(&samples, cfg);
                    Box::new(model)
                }
            };
            models.insert(market.instance().name().to_string(), model);
        }
        let label = match kind {
            PredictorKind::RevPred => "RevPred",
            PredictorKind::Tributary => "Tributary",
            PredictorKind::Logistic => "LogisticRegression",
        };
        MarketPredictorSet { pool: pool.clone(), models, label: label.to_string() }
    }

    /// Predicts for an explicit, already-built sample (evaluation path).
    pub fn predict_sample(&self, instance_name: &str, sample: &Sample) -> Option<f64> {
        Some(self.models.get(instance_name)?.predict(sample))
    }
}

impl RevocationEstimator for MarketPredictorSet {
    fn revocation_probability(&self, instance_name: &str, t: SimTime, max_price: f64) -> f64 {
        let (Some(model), Some(market)) =
            (self.models.get(instance_name), self.pool.market(instance_name))
        else {
            return 0.5; // unknown market: no information
        };
        model.predict(&build_input(market, t, max_price))
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_per_market_and_estimates() {
        let pool = MarketPool::standard(SimDur::from_days(2), 5);
        let cfg = TrainConfig {
            lstm_hidden: 4,
            lstm_tiers: 1,
            dense_hidden: 4,
            epochs: 1,
            batch: 32,
            seed: 2,
            ..TrainConfig::default()
        };
        let set = MarketPredictorSet::train(
            PredictorKind::Logistic, // fast baseline for the unit test
            &pool,
            SimTime::from_hours(2),
            SimTime::from_hours(20),
            SimDur::from_mins(30),
            &cfg,
        );
        let t = SimTime::from_hours(30);
        for market in pool.iter() {
            let price = market.price_at(t);
            let p = set.revocation_probability(market.instance().name(), t, price + 0.01);
            assert!((0.0..=1.0).contains(&p));
        }
        // Unknown instances return the uninformative prior.
        assert_eq!(set.revocation_probability("bogus", t, 1.0), 0.5);
        assert_eq!(set.name(), "LogisticRegression");
    }

    #[test]
    fn policy_pairing_matches_paper() {
        assert_eq!(PredictorKind::RevPred.delta_policy(), DeltaPolicy::Algorithm2);
        assert_eq!(PredictorKind::Tributary.delta_policy(), DeltaPolicy::UniformRandom);
    }
}
