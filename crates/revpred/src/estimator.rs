//! Bridges trained per-market models to the orchestrator's
//! [`RevocationEstimator`] interface ("for each individual spot market, an
//! independent model is trained offline", §III.B).

use crate::dataset::{build_dataset, build_input, DeltaPolicy, Sample};
use crate::logistic::LogisticModel;
use crate::model::{ProbModel, RevPredNet, TrainConfig};
use crate::tributary::TributaryNet;
use spottune_market::{EstimatorSpec, MarketPool, MarketScenario, RevocationEstimator, SimDur, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Which predictor family to train per market.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PredictorKind {
    /// RevPred: dual-path LSTM + Algorithm-2 deltas.
    RevPred,
    /// Tributary: single-path LSTM + uniform-random deltas.
    Tributary,
    /// Logistic regression on flattened features + Algorithm-2 deltas.
    Logistic,
}

impl PredictorKind {
    /// Delta policy the paper pairs with each predictor.
    pub fn delta_policy(self) -> DeltaPolicy {
        match self {
            PredictorKind::RevPred | PredictorKind::Logistic => DeltaPolicy::Algorithm2,
            PredictorKind::Tributary => DeltaPolicy::UniformRandom,
        }
    }

    /// The predictor family an [`EstimatorSpec`] names, or `None` for the
    /// ground-truth (untrained) specs. This is the bridge between the
    /// wire-level estimator registry and the trained-predictor tier.
    pub fn from_spec(spec: &EstimatorSpec) -> Option<PredictorKind> {
        match spec {
            EstimatorSpec::RevPred => Some(PredictorKind::RevPred),
            EstimatorSpec::Tributary => Some(PredictorKind::Tributary),
            EstimatorSpec::Logistic => Some(PredictorKind::Logistic),
            EstimatorSpec::Oracle { .. } | EstimatorSpec::Constant { .. } => None,
        }
    }
}

/// Standard training split: models train on the first
/// `TRAIN_FRACTION_NUM/TRAIN_FRACTION_DEN` of the trace (the paper trains
/// on nine of the twelve trace days and holds out the rest).
const TRAIN_FRACTION_NUM: u64 = 3;
const TRAIN_FRACTION_DEN: u64 = 4;

/// Warm-up skipped before the first training sample (the engineered
/// features need an hour of history; two keeps clear of the trace edge).
const TRAIN_WARMUP: SimTime = SimTime::from_hours(2);

/// Sampling stride of the standard training set.
const TRAIN_STRIDE: SimDur = SimDur::from_mins(20);

/// The deterministic standard training entry point: one predictor per
/// market, trained on the first three quarters of the pool's trace
/// (warm-up-adjusted) with the standard stride and `TrainConfig` seeded by
/// `seed`. For the 12-day evaluation pool this is exactly the paper's
/// nine-day training split, so `fig10_revpred` and the campaign paths
/// train byte-identical models from the same call.
///
/// # Panics
///
/// Panics if the pool's trace is too short to hold a training window past
/// the warm-up (needs more than `2 h · 4/3` of trace).
pub fn train_for_pool(kind: PredictorKind, pool: &MarketPool, seed: u64) -> MarketPredictorSet {
    let total_mins = pool
        .iter()
        .map(|m| m.trace().len_minutes() as u64)
        .min()
        .expect("market pool must not be empty");
    let train_to = SimTime::from_mins(total_mins * TRAIN_FRACTION_NUM / TRAIN_FRACTION_DEN);
    assert!(
        TRAIN_WARMUP < train_to,
        "trace too short to train on: {total_mins} min leaves no window past warm-up"
    );
    let cfg = TrainConfig { seed, ..TrainConfig::default() };
    MarketPredictorSet::train(kind, pool, TRAIN_WARMUP, train_to, TRAIN_STRIDE, &cfg)
}

/// [`train_for_pool`] keyed the way the campaign paths key it: the
/// training seed is the scenario's seed, so a predictor is a pure function
/// of `(scenario, kind)` — exactly the identity the server's predictor
/// tier caches under.
///
/// # Panics
///
/// Panics if `pool`'s trace length disagrees with `scenario` (the tier
/// must never train on mismatched data), or if the trace is too short.
pub fn train_for_scenario(
    kind: PredictorKind,
    scenario: MarketScenario,
    pool: &MarketPool,
) -> MarketPredictorSet {
    assert!(
        pool.iter().all(|m| m.trace().len_minutes() as u64 == scenario.trace_mins),
        "pool/scenario mismatch: traces are not {} min long",
        scenario.trace_mins
    );
    train_for_pool(kind, pool, scenario.seed)
}

/// One trained model per spot market, usable as a [`RevocationEstimator`].
pub struct MarketPredictorSet {
    pool: MarketPool,
    models: BTreeMap<String, Box<dyn ProbModel>>,
    label: String,
}

impl fmt::Debug for MarketPredictorSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MarketPredictorSet")
            .field("label", &self.label)
            .field("markets", &self.models.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl MarketPredictorSet {
    /// The market pool the predictors were trained against.
    pub(crate) fn pool(&self) -> &MarketPool {
        &self.pool
    }

    /// The per-market model, if this market was trained.
    pub(crate) fn model(&self, name: &str) -> Option<&dyn ProbModel> {
        self.models.get(name).map(|b| b.as_ref())
    }

    /// Trains one predictor per market on `[train_from, train_to)` with the
    /// given sampling stride.
    ///
    /// # Panics
    ///
    /// Panics if the training window produces no samples.
    pub fn train(
        kind: PredictorKind,
        pool: &MarketPool,
        train_from: SimTime,
        train_to: SimTime,
        stride: SimDur,
        cfg: &TrainConfig,
    ) -> Self {
        let mut models: BTreeMap<String, Box<dyn ProbModel>> = BTreeMap::new();
        for market in pool.iter() {
            let samples = build_dataset(
                market,
                train_from,
                train_to,
                stride,
                kind.delta_policy(),
                cfg.seed ^ market.instance().name().len() as u64,
            );
            let model: Box<dyn ProbModel> = match kind {
                PredictorKind::RevPred => {
                    let mut net = RevPredNet::new(cfg);
                    net.train(&samples, cfg);
                    Box::new(net)
                }
                PredictorKind::Tributary => {
                    let mut net = TributaryNet::new(cfg);
                    net.train(&samples, cfg);
                    Box::new(net)
                }
                PredictorKind::Logistic => {
                    let mut model = LogisticModel::new();
                    model.train(&samples, cfg);
                    Box::new(model)
                }
            };
            models.insert(market.instance().name().to_string(), model);
        }
        let label = match kind {
            PredictorKind::RevPred => "RevPred",
            PredictorKind::Tributary => "Tributary",
            PredictorKind::Logistic => "LogisticRegression",
        };
        MarketPredictorSet { pool: pool.clone(), models, label: label.to_string() }
    }

    /// Predicts for an explicit, already-built sample (evaluation path).
    pub fn predict_sample(&self, instance_name: &str, sample: &Sample) -> Option<f64> {
        Some(self.models.get(instance_name)?.predict(sample))
    }
}

impl RevocationEstimator for MarketPredictorSet {
    fn revocation_probability(&self, instance_name: &str, t: SimTime, max_price: f64) -> f64 {
        let (Some(model), Some(market)) =
            (self.models.get(instance_name), self.pool.market(instance_name))
        else {
            return 0.5; // unknown market: no information
        };
        model.predict(&build_input(market, t, max_price))
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_per_market_and_estimates() {
        let pool = MarketPool::standard(SimDur::from_days(2), 5);
        let cfg = TrainConfig {
            lstm_hidden: 4,
            lstm_tiers: 1,
            dense_hidden: 4,
            epochs: 1,
            batch: 32,
            seed: 2,
            ..TrainConfig::default()
        };
        let set = MarketPredictorSet::train(
            PredictorKind::Logistic, // fast baseline for the unit test
            &pool,
            SimTime::from_hours(2),
            SimTime::from_hours(20),
            SimDur::from_mins(30),
            &cfg,
        );
        let t = SimTime::from_hours(30);
        for market in pool.iter() {
            let price = market.price_at(t);
            let p = set.revocation_probability(market.instance().name(), t, price + 0.01);
            assert!((0.0..=1.0).contains(&p));
        }
        // Unknown instances return the uninformative prior.
        assert_eq!(set.revocation_probability("bogus", t, 1.0), 0.5);
        assert_eq!(set.name(), "LogisticRegression");
    }

    #[test]
    fn policy_pairing_matches_paper() {
        assert_eq!(PredictorKind::RevPred.delta_policy(), DeltaPolicy::Algorithm2);
        assert_eq!(PredictorKind::Tributary.delta_policy(), DeltaPolicy::UniformRandom);
    }

    #[test]
    fn spec_bridge_maps_exactly_the_trained_kinds() {
        assert_eq!(
            PredictorKind::from_spec(&EstimatorSpec::RevPred),
            Some(PredictorKind::RevPred)
        );
        assert_eq!(
            PredictorKind::from_spec(&EstimatorSpec::Tributary),
            Some(PredictorKind::Tributary)
        );
        assert_eq!(
            PredictorKind::from_spec(&EstimatorSpec::Logistic),
            Some(PredictorKind::Logistic)
        );
        assert_eq!(PredictorKind::from_spec(&EstimatorSpec::default()), None);
        assert_eq!(PredictorKind::from_spec(&EstimatorSpec::Constant { p: 0.1 }), None);
    }

    #[test]
    fn standard_entry_point_matches_explicit_paper_split() {
        // The shared entry point must reproduce fig10's private loop: for a
        // pool of T minutes it trains on [2 h, 3T/4) at a 20-minute stride
        // with the default config at the given seed.
        let pool = MarketPool::standard(SimDur::from_days(2), 9);
        let via_entry = train_for_pool(PredictorKind::Logistic, &pool, 9);
        let cfg = TrainConfig { seed: 9, ..TrainConfig::default() };
        let explicit = MarketPredictorSet::train(
            PredictorKind::Logistic,
            &pool,
            SimTime::from_hours(2),
            SimTime::from_hours(36), // 3/4 of two days
            SimDur::from_mins(20),
            &cfg,
        );
        let t = SimTime::from_hours(40);
        for market in pool.iter() {
            let name = market.instance().name();
            let bid = market.price_at(t) + 0.01;
            assert_eq!(
                via_entry.revocation_probability(name, t, bid),
                explicit.revocation_probability(name, t, bid),
                "{name}: entry point must reproduce the explicit split"
            );
        }
        // Scenario keying: the training seed is the scenario seed.
        let scenario = MarketScenario::from_days(2, 9);
        let via_scenario = train_for_scenario(PredictorKind::Logistic, scenario, &pool);
        let name = pool.markets()[0].instance().name();
        assert_eq!(
            via_scenario.revocation_probability(name, t, 0.5),
            via_entry.revocation_probability(name, t, 0.5)
        );
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn entry_point_rejects_traces_inside_the_warmup() {
        let pool = MarketPool::standard(SimDur::from_hours(2), 1);
        let _ = train_for_pool(PredictorKind::Logistic, &pool, 1);
    }
}
