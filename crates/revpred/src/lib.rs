//! # spottune-revpred
//!
//! Spot-instance revocation-probability prediction (paper §III.B): the six
//! engineered features, the Algorithm-2 training-delta generation, the
//! RevPred dual-path network (three-tier LSTM over 59 history records ⊕
//! three dense layers over the present record), the Eq. 3 calibration, and
//! the two baselines of Fig. 10 (a re-implementation of Tributary's
//! predictor and a logistic regression), plus the evaluation metrics, the
//! bridge to the orchestrator's `RevocationEstimator` interface, the
//! deterministic per-scenario training entry point
//! ([`estimator::train_for_scenario`]) and the shared trained-predictor
//! tier ([`cache::PredictorCache`]) the campaign server amortizes
//! training through.

pub mod cache;
pub mod dataset;
pub mod estimator;
pub mod eval;
pub mod features;
pub mod logistic;
pub mod model;
pub mod probe;
pub mod tributary;

pub use cache::PredictorCache;
pub use dataset::{build_dataset, build_input, build_sample, DeltaPolicy, Sample};
pub use estimator::{train_for_pool, train_for_scenario, MarketPredictorSet, PredictorKind};
pub use eval::BinaryEval;
pub use logistic::LogisticModel;
pub use model::{ProbModel, RevPredNet, TrainConfig, TrainStats};
pub use probe::{ProbeCachedPredictors, ProbeCtx};
pub use tributary::TributaryNet;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::dataset::{
        algorithm2_delta, build_dataset, build_input, build_sample, positive_fraction,
        DeltaPolicy, Sample, HISTORY_LEN, PRESENT_FEATURES,
    };
    pub use crate::cache::PredictorCache;
    pub use crate::estimator::{
        train_for_pool, train_for_scenario, MarketPredictorSet, PredictorKind,
    };
    pub use crate::eval::BinaryEval;
    pub use crate::features::{features_at, raw_features, RECORD_FEATURES};
    pub use crate::logistic::LogisticModel;
    pub use crate::model::{calibrate, ProbModel, RevPredNet, TrainConfig, TrainStats};
    pub use crate::tributary::TributaryNet;
}
