//! Fully-connected layer with cached forward state for backprop.

use crate::activation::Activation;
use crate::init;
use crate::matrix::Matrix;
use crate::optim::{Adam, OptimConfig};
use rand::rngs::StdRng;

/// A dense layer `y = act(x · W + b)` over row-batched inputs.
#[derive(Debug, Clone)]
pub struct Dense {
    w: Matrix,
    b: Matrix,
    act: Activation,
    gw: Matrix,
    gb: Matrix,
    adam_w: Adam,
    adam_b: Adam,
    cache_x: Option<Matrix>,
    cache_y: Option<Matrix>,
}

impl Dense {
    /// Creates a layer mapping `input` features to `output` features.
    pub fn new(input: usize, output: usize, act: Activation, rng: &mut StdRng) -> Self {
        Dense {
            w: init::xavier(input, output, rng),
            b: Matrix::zeros(1, output),
            act,
            gw: Matrix::zeros(input, output),
            gb: Matrix::zeros(1, output),
            adam_w: Adam::new(input * output),
            adam_b: Adam::new(output),
            cache_x: None,
            cache_y: None,
        }
    }

    /// Input feature count.
    pub fn input_size(&self) -> usize {
        self.w.rows()
    }

    /// Output feature count.
    pub fn output_size(&self) -> usize {
        self.w.cols()
    }

    /// Forward pass caching activations for a later [`Dense::backward`].
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let y = self.forward_inference(x);
        self.cache_x = Some(x.clone());
        self.cache_y = Some(y.clone());
        y
    }

    /// Forward pass without caching (no backprop possible).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        z.add_row_broadcast(&self.b);
        self.act.apply(&z)
    }

    /// Backward pass: consumes `dy = ∂L/∂y`, accumulates parameter
    /// gradients, returns `∂L/∂x`.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Dense::forward`].
    pub fn backward(&mut self, dy: &Matrix) -> Matrix {
        let x = self.cache_x.as_ref().expect("backward before forward");
        let y = self.cache_y.as_ref().expect("backward before forward");
        let dz = dy.hadamard(&self.act.deriv_from_output(y));
        self.gw.add_assign(&x.t_matmul(&dz));
        self.gb.add_assign(&dz.sum_rows());
        dz.matmul_t(&self.w)
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gw.fill_zero();
        self.gb.fill_zero();
    }

    /// Mutable views of the gradient buffers (for global-norm clipping).
    pub fn grads_mut(&mut self) -> Vec<&mut [f64]> {
        vec![self.gw.data_mut(), self.gb.data_mut()]
    }

    /// Applies one Adam step with the accumulated gradients.
    pub fn step(&mut self, cfg: &OptimConfig) {
        self.adam_w.step(self.w.data_mut(), self.gw.data(), cfg);
        self.adam_b.step(self.b.data_mut(), self.gb.data(), cfg);
    }

    /// Immutable weight access (tests, serialization).
    pub fn weights(&self) -> (&Matrix, &Matrix) {
        (&self.w, &self.b)
    }

    /// Mutable weight access (numerical gradient checks).
    pub fn weights_mut(&mut self) -> (&mut Matrix, &mut Matrix) {
        (&mut self.w, &mut self.b)
    }

    /// Accumulated gradient access (numerical gradient checks).
    pub fn grads(&self) -> (&Matrix, &Matrix) {
        (&self.gw, &self.gb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mse_loss(y: &Matrix, target: &Matrix) -> (f64, Matrix) {
        let diff = y.sub(target);
        let n = (y.rows() * y.cols()) as f64;
        let loss = diff.data().iter().map(|d| d * d).sum::<f64>() / n;
        let mut grad = diff;
        grad.scale(2.0 / n);
        (loss, grad)
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = Dense::new(4, 2, Activation::Tanh, &mut rng);
        let x = Matrix::from_fn(5, 4, |r, c| (r + c) as f64 * 0.1);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (5, 2));
        assert_eq!(layer.input_size(), 4);
        assert_eq!(layer.output_size(), 2);
        // Inference path matches the training path.
        assert_eq!(layer.forward_inference(&x), y);
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut layer = Dense::new(3, 2, Activation::Sigmoid, &mut rng);
        let x = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) as f64 * 0.17).sin());
        let target = Matrix::from_fn(4, 2, |r, c| ((r * 2 + c) as f64 * 0.3).cos());

        layer.zero_grad();
        let y = layer.forward(&x);
        let (_, dy) = mse_loss(&y, &target);
        layer.backward(&dy);

        let eps = 1e-6;
        // Check a handful of weight entries numerically.
        for idx in [0usize, 2, 5] {
            let analytic = layer.grads().0.data()[idx];
            layer.weights_mut().0.data_mut()[idx] += eps;
            let (lp, _) = mse_loss(&layer.forward_inference(&x), &target);
            layer.weights_mut().0.data_mut()[idx] -= 2.0 * eps;
            let (lm, _) = mse_loss(&layer.forward_inference(&x), &target);
            layer.weights_mut().0.data_mut()[idx] += eps;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 1e-7,
                "grad mismatch at {idx}: numeric {numeric}, analytic {analytic}"
            );
        }
        // And one bias entry.
        let analytic = layer.grads().1.data()[1];
        layer.weights_mut().1.data_mut()[1] += eps;
        let (lp, _) = mse_loss(&layer.forward_inference(&x), &target);
        layer.weights_mut().1.data_mut()[1] -= 2.0 * eps;
        let (lm, _) = mse_loss(&layer.forward_inference(&x), &target);
        let numeric = (lp - lm) / (2.0 * eps);
        assert!((numeric - analytic).abs() < 1e-7);
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut layer = Dense::new(2, 1, Activation::Identity, &mut rng);
        // Learn y = x0 - 2*x1.
        let x = Matrix::from_fn(16, 2, |r, c| ((r * 2 + c) as f64 * 0.37).sin());
        let target = Matrix::from_fn(16, 1, |r, _| x[(r, 0)] - 2.0 * x[(r, 1)]);
        let cfg = OptimConfig { lr: 0.05, ..OptimConfig::default() };
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..300 {
            layer.zero_grad();
            let y = layer.forward(&x);
            let (loss, dy) = mse_loss(&y, &target);
            layer.backward(&dy);
            layer.step(&cfg);
            first.get_or_insert(loss);
            last = loss;
        }
        assert!(last < first.unwrap() * 0.01, "loss {last} vs {first:?}");
    }
}
