//! Element-wise activation functions and their derivatives.

use crate::matrix::Matrix;

/// Supported activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Rectified linear unit.
    Relu,
}

/// Numerically stable logistic sigmoid.
pub fn sigmoid(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

impl Activation {
    /// Applies the activation element-wise.
    pub fn apply(self, z: &Matrix) -> Matrix {
        match self {
            Activation::Identity => z.clone(),
            Activation::Sigmoid => z.map(sigmoid),
            Activation::Tanh => z.map(f64::tanh),
            Activation::Relu => z.map(|x| x.max(0.0)),
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(z)`.
    ///
    /// All four supported activations admit this form, which lets layers
    /// cache only their outputs.
    pub fn deriv_from_output(self, y: &Matrix) -> Matrix {
        match self {
            Activation::Identity => y.map(|_| 1.0),
            Activation::Sigmoid => y.map(|v| v * (1.0 - v)),
            Activation::Tanh => y.map(|v| 1.0 - v * v),
            Activation::Relu => y.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_and_symmetric() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(800.0) <= 1.0);
        assert!(sigmoid(-800.0) >= 0.0);
        assert!((sigmoid(3.0) + sigmoid(-3.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn derivatives_match_numeric() {
        let xs = Matrix::row_vector(vec![-1.5, -0.2, 0.0, 0.7, 2.0]);
        let eps = 1e-6;
        for act in [Activation::Identity, Activation::Sigmoid, Activation::Tanh] {
            let y = act.apply(&xs);
            let dy = act.deriv_from_output(&y);
            for i in 0..xs.cols() {
                let x = xs.data()[i];
                let plus = act.apply(&Matrix::row_vector(vec![x + eps])).data()[0];
                let minus = act.apply(&Matrix::row_vector(vec![x - eps])).data()[0];
                let numeric = (plus - minus) / (2.0 * eps);
                assert!(
                    (numeric - dy.data()[i]).abs() < 1e-6,
                    "{act:?} deriv mismatch at {x}: {numeric} vs {}",
                    dy.data()[i]
                );
            }
        }
    }

    #[test]
    fn relu_clamps_negative() {
        let xs = Matrix::row_vector(vec![-2.0, 0.0, 3.0]);
        let y = Activation::Relu.apply(&xs);
        assert_eq!(y.data(), &[0.0, 0.0, 3.0]);
        let d = Activation::Relu.deriv_from_output(&y);
        assert_eq!(d.data(), &[0.0, 0.0, 1.0]);
    }
}
