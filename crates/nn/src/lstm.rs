//! LSTM layers with full backpropagation-through-time, plus a stacked
//! variant for the "three-tier LSTM structure" RevPred uses (§III.B).

use crate::activation::sigmoid;
use crate::init;
use crate::matrix::Matrix;
use crate::optim::{Adam, OptimConfig};
use rand::rngs::StdRng;

/// Cached per-timestep state required by BPTT.
#[derive(Debug, Clone)]
struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    tanh_c: Matrix,
}

/// A single LSTM layer over row-batched sequences.
///
/// Gate order inside the fused `4H` dimension is `[i | f | g | o]`. The
/// forget-gate bias initializes to 1.0 (standard practice; keeps gradients
/// alive early in training).
#[derive(Debug, Clone)]
pub struct Lstm {
    input: usize,
    hidden: usize,
    wx: Matrix,
    wh: Matrix,
    b: Matrix,
    gwx: Matrix,
    gwh: Matrix,
    gb: Matrix,
    adam_wx: Adam,
    adam_wh: Adam,
    adam_b: Adam,
    cache: Vec<StepCache>,
}

impl Lstm {
    /// Creates an LSTM mapping `input` features to `hidden` state size.
    pub fn new(input: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut b = Matrix::zeros(1, 4 * hidden);
        // Forget-gate bias = 1.
        for c in hidden..2 * hidden {
            b[(0, c)] = 1.0;
        }
        Lstm {
            input,
            hidden,
            wx: init::xavier(input, 4 * hidden, rng),
            wh: init::xavier(hidden, 4 * hidden, rng),
            b,
            gwx: Matrix::zeros(input, 4 * hidden),
            gwh: Matrix::zeros(hidden, 4 * hidden),
            gb: Matrix::zeros(1, 4 * hidden),
            adam_wx: Adam::new(input * 4 * hidden),
            adam_wh: Adam::new(hidden * 4 * hidden),
            adam_b: Adam::new(4 * hidden),
            cache: Vec::new(),
        }
    }

    /// Input feature count.
    pub fn input_size(&self) -> usize {
        self.input
    }

    /// Hidden state size.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    fn split4(&self, z: &Matrix) -> (Matrix, Matrix, Matrix, Matrix) {
        let h = self.hidden;
        let b = z.rows();
        let mut parts = [
            Matrix::zeros(b, h),
            Matrix::zeros(b, h),
            Matrix::zeros(b, h),
            Matrix::zeros(b, h),
        ];
        for r in 0..b {
            let row = z.row(r);
            for (k, part) in parts.iter_mut().enumerate() {
                part.data_mut()[r * h..(r + 1) * h].copy_from_slice(&row[k * h..(k + 1) * h]);
            }
        }
        let [i, f, g, o] = parts;
        (i, f, g, o)
    }

    fn concat4(&self, i: &Matrix, f: &Matrix, g: &Matrix, o: &Matrix) -> Matrix {
        let h = self.hidden;
        let b = i.rows();
        let mut z = Matrix::zeros(b, 4 * h);
        for r in 0..b {
            z.data_mut()[r * 4 * h..r * 4 * h + h].copy_from_slice(i.row(r));
            z.data_mut()[r * 4 * h + h..r * 4 * h + 2 * h].copy_from_slice(f.row(r));
            z.data_mut()[r * 4 * h + 2 * h..r * 4 * h + 3 * h].copy_from_slice(g.row(r));
            z.data_mut()[r * 4 * h + 3 * h..r * 4 * h + 4 * h].copy_from_slice(o.row(r));
        }
        z
    }

    fn step(
        &self,
        x: &Matrix,
        h_prev: &Matrix,
        c_prev: &Matrix,
    ) -> (Matrix, Matrix, StepCache) {
        let mut z = x.matmul(&self.wx);
        z.add_assign(&h_prev.matmul(&self.wh));
        z.add_row_broadcast(&self.b);
        let (zi, zf, zg, zo) = self.split4(&z);
        let i = zi.map(sigmoid);
        let f = zf.map(sigmoid);
        let g = zg.map(f64::tanh);
        let o = zo.map(sigmoid);
        let c = f.hadamard(c_prev);
        let mut c2 = i.hadamard(&g);
        c2.add_assign(&c);
        let c = c2;
        let tanh_c = c.map(f64::tanh);
        let h = o.hadamard(&tanh_c);
        let cache = StepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            c_prev: c_prev.clone(),
            i,
            f,
            g,
            o,
            tanh_c,
        };
        (h, c, cache)
    }

    /// Forward pass over a sequence (`xs[t]` is batch × input), caching
    /// state for [`Lstm::backward`]. Returns the hidden state per step.
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or any step has the wrong width.
    pub fn forward(&mut self, xs: &[Matrix]) -> Vec<Matrix> {
        self.cache.clear();
        let (hs, caches) = self.run(xs);
        self.cache = caches;
        hs
    }

    /// Forward pass without caching (inference only).
    pub fn forward_inference(&self, xs: &[Matrix]) -> Vec<Matrix> {
        self.run(xs).0
    }

    fn run(&self, xs: &[Matrix]) -> (Vec<Matrix>, Vec<StepCache>) {
        assert!(!xs.is_empty(), "lstm sequence must not be empty");
        let batch = xs[0].rows();
        let mut h = Matrix::zeros(batch, self.hidden);
        let mut c = Matrix::zeros(batch, self.hidden);
        let mut caches = Vec::with_capacity(xs.len());
        let mut hs = Vec::with_capacity(xs.len());
        for x in xs {
            assert_eq!(x.cols(), self.input, "lstm input width mismatch");
            assert_eq!(x.rows(), batch, "lstm batch size must be constant");
            let (h_new, c_new, cache) = self.step(x, &h, &c);
            caches.push(cache);
            h = h_new;
            c = c_new;
            hs.push(h.clone());
        }
        (hs, caches)
    }

    /// BPTT: `dhs[t] = ∂L/∂h_t` from above (zeros where unused). Returns
    /// `∂L/∂x_t` per step and accumulates parameter gradients.
    ///
    /// # Panics
    ///
    /// Panics if `dhs` does not match the cached forward sequence.
    pub fn backward(&mut self, dhs: &[Matrix]) -> Vec<Matrix> {
        assert_eq!(dhs.len(), self.cache.len(), "backward length mismatch");
        let t_max = self.cache.len();
        let batch = self.cache[0].x.rows();
        let mut dh_next = Matrix::zeros(batch, self.hidden);
        let mut dc_next = Matrix::zeros(batch, self.hidden);
        let mut dxs = vec![Matrix::zeros(batch, self.input); t_max];
        for t in (0..t_max).rev() {
            let cache = &self.cache[t];
            let mut dh = dhs[t].clone();
            dh.add_assign(&dh_next);
            // dc = dc_next + dh ∘ o ∘ (1 − tanh²(c))
            let one_minus_tc2 = cache.tanh_c.map(|v| 1.0 - v * v);
            let mut dc = dh.hadamard(&cache.o).hadamard(&one_minus_tc2);
            dc.add_assign(&dc_next);
            let do_ = dh.hadamard(&cache.tanh_c);
            let di = dc.hadamard(&cache.g);
            let df = dc.hadamard(&cache.c_prev);
            let dg = dc.hadamard(&cache.i);
            dc_next = dc.hadamard(&cache.f);
            // Pre-activation gradients.
            let dzi = di.hadamard(&cache.i.map(|v| v * (1.0 - v)));
            let dzf = df.hadamard(&cache.f.map(|v| v * (1.0 - v)));
            let dzg = dg.hadamard(&cache.g.map(|v| 1.0 - v * v));
            let dzo = do_.hadamard(&cache.o.map(|v| v * (1.0 - v)));
            let dz = self.concat4(&dzi, &dzf, &dzg, &dzo);
            self.gwx.add_assign(&cache.x.t_matmul(&dz));
            self.gwh.add_assign(&cache.h_prev.t_matmul(&dz));
            self.gb.add_assign(&dz.sum_rows());
            dxs[t] = dz.matmul_t(&self.wx);
            dh_next = dz.matmul_t(&self.wh);
        }
        dxs
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.gwx.fill_zero();
        self.gwh.fill_zero();
        self.gb.fill_zero();
    }

    /// Mutable views of the gradient buffers (for global-norm clipping).
    pub fn grads_mut(&mut self) -> Vec<&mut [f64]> {
        vec![self.gwx.data_mut(), self.gwh.data_mut(), self.gb.data_mut()]
    }

    /// Applies one Adam step with the accumulated gradients.
    pub fn step_optim(&mut self, cfg: &OptimConfig) {
        self.adam_wx.step(self.wx.data_mut(), self.gwx.data(), cfg);
        self.adam_wh.step(self.wh.data_mut(), self.gwh.data(), cfg);
        self.adam_b.step(self.b.data_mut(), self.gb.data(), cfg);
    }

    /// Weight access for gradient checks: `(wx, wh, b)`.
    pub fn weights_mut(&mut self) -> (&mut Matrix, &mut Matrix, &mut Matrix) {
        (&mut self.wx, &mut self.wh, &mut self.b)
    }

    /// Gradient access for gradient checks: `(gwx, gwh, gb)`.
    pub fn grads(&self) -> (&Matrix, &Matrix, &Matrix) {
        (&self.gwx, &self.gwh, &self.gb)
    }
}

/// A stack of LSTM layers; layer `k+1` consumes layer `k`'s hidden states.
///
/// RevPred feeds "the 59 price records in the past hour ... into a three-tier
/// LSTM structure" (§III.B); [`StackedLstm::new`] with `tiers = 3` builds
/// exactly that.
#[derive(Debug, Clone)]
pub struct StackedLstm {
    layers: Vec<Lstm>,
}

impl StackedLstm {
    /// Creates `tiers` stacked layers: `input → hidden → … → hidden`.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is zero.
    pub fn new(input: usize, hidden: usize, tiers: usize, rng: &mut StdRng) -> Self {
        assert!(tiers > 0, "need at least one LSTM tier");
        let mut layers = Vec::with_capacity(tiers);
        layers.push(Lstm::new(input, hidden, rng));
        for _ in 1..tiers {
            layers.push(Lstm::new(hidden, hidden, rng));
        }
        StackedLstm { layers }
    }

    /// Number of tiers.
    pub fn tiers(&self) -> usize {
        self.layers.len()
    }

    /// Hidden size of the top tier.
    pub fn hidden_size(&self) -> usize {
        self.layers.last().expect("non-empty").hidden_size()
    }

    /// Forward with caching; returns the top tier's hidden state sequence.
    pub fn forward(&mut self, xs: &[Matrix]) -> Vec<Matrix> {
        let mut seq = xs.to_vec();
        for layer in &mut self.layers {
            seq = layer.forward(&seq);
        }
        seq
    }

    /// Forward without caching.
    pub fn forward_inference(&self, xs: &[Matrix]) -> Vec<Matrix> {
        let mut seq = xs.to_vec();
        for layer in &self.layers {
            seq = layer.forward_inference(&seq);
        }
        seq
    }

    /// BPTT through all tiers; `dhs` applies to the top tier's outputs.
    pub fn backward(&mut self, dhs: &[Matrix]) -> Vec<Matrix> {
        let mut grad = dhs.to_vec();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Clears accumulated gradients in all tiers.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Mutable views of every tier's gradient buffers.
    pub fn grads_mut(&mut self) -> Vec<&mut [f64]> {
        self.layers.iter_mut().flat_map(Lstm::grads_mut).collect()
    }

    /// Applies one Adam step in every tier.
    pub fn step_optim(&mut self, cfg: &OptimConfig) {
        for layer in &mut self.layers {
            layer.step_optim(cfg);
        }
    }

    /// Access to individual tiers (gradient checks).
    pub fn layer_mut(&mut self, k: usize) -> &mut Lstm {
        &mut self.layers[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Scalar loss = sum of final hidden state; its gradient w.r.t. the
    /// final h is all-ones, other steps zero.
    fn loss_and_grads(hs: &[Matrix]) -> (f64, Vec<Matrix>) {
        let last = hs.last().unwrap();
        let loss = last.data().iter().sum::<f64>();
        let mut dhs: Vec<Matrix> = hs
            .iter()
            .map(|h| Matrix::zeros(h.rows(), h.cols()))
            .collect();
        *dhs.last_mut().unwrap() = last.map(|_| 1.0);
        (loss, dhs)
    }

    fn sample_seq(t: usize, b: usize, i: usize) -> Vec<Matrix> {
        (0..t)
            .map(|step| Matrix::from_fn(b, i, |r, c| ((step * 31 + r * 7 + c) as f64 * 0.23).sin()))
            .collect()
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut lstm = Lstm::new(3, 5, &mut rng);
        let xs = sample_seq(4, 2, 3);
        let hs = lstm.forward(&xs);
        assert_eq!(hs.len(), 4);
        assert_eq!((hs[0].rows(), hs[0].cols()), (2, 5));
        let hs2 = lstm.forward_inference(&xs);
        assert_eq!(hs, hs2);
    }

    #[test]
    fn gradient_check_lstm() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lstm = Lstm::new(3, 4, &mut rng);
        let xs = sample_seq(3, 2, 3);

        lstm.zero_grad();
        let hs = lstm.forward(&xs);
        let (_, dhs) = loss_and_grads(&hs);
        let dxs = lstm.backward(&dhs);

        let eps = 1e-6;
        // Weight gradient checks on wx, wh and b.
        for (widx, pick) in [(0usize, 5usize), (1, 3), (2, 2)] {
            let analytic = match widx {
                0 => lstm.grads().0.data()[pick],
                1 => lstm.grads().1.data()[pick],
                _ => lstm.grads().2.data()[pick],
            };
            let perturb = |l: &mut Lstm, delta: f64| {
                let (wx, wh, b) = l.weights_mut();
                match widx {
                    0 => wx.data_mut()[pick] += delta,
                    1 => wh.data_mut()[pick] += delta,
                    _ => b.data_mut()[pick] += delta,
                }
            };
            perturb(&mut lstm, eps);
            let (lp, _) = loss_and_grads(&lstm.forward_inference(&xs));
            perturb(&mut lstm, -2.0 * eps);
            let (lm, _) = loss_and_grads(&lstm.forward_inference(&xs));
            perturb(&mut lstm, eps);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - analytic).abs() < 1e-6,
                "weight {widx}[{pick}]: numeric {numeric}, analytic {analytic}"
            );
        }

        // Input gradient check.
        let analytic = dxs[1][(0, 2)];
        let mut xs_p = xs.clone();
        xs_p[1][(0, 2)] += eps;
        let (lp, _) = loss_and_grads(&lstm.forward_inference(&xs_p));
        xs_p[1][(0, 2)] -= 2.0 * eps;
        let (lm, _) = loss_and_grads(&lstm.forward_inference(&xs_p));
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 1e-6,
            "input grad: numeric {numeric}, analytic {analytic}"
        );
    }

    #[test]
    fn gradient_check_stacked() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut stack = StackedLstm::new(2, 3, 2, &mut rng);
        let xs = sample_seq(3, 2, 2);
        stack.zero_grad();
        let hs = stack.forward(&xs);
        let (_, dhs) = loss_and_grads(&hs);
        stack.backward(&dhs);

        let eps = 1e-6;
        // Check one weight in the *bottom* tier (exercises inter-tier BPTT).
        let analytic = stack.layer_mut(0).grads().0.data()[1];
        stack.layer_mut(0).weights_mut().0.data_mut()[1] += eps;
        let (lp, _) = loss_and_grads(&stack.forward_inference(&xs));
        stack.layer_mut(0).weights_mut().0.data_mut()[1] -= 2.0 * eps;
        let (lm, _) = loss_and_grads(&stack.forward_inference(&xs));
        stack.layer_mut(0).weights_mut().0.data_mut()[1] += eps;
        let numeric = (lp - lm) / (2.0 * eps);
        assert!(
            (numeric - analytic).abs() < 1e-6,
            "stacked grad: numeric {numeric}, analytic {analytic}"
        );
    }

    #[test]
    fn lstm_learns_to_remember_first_input() {
        // Task: output at the end of the sequence should equal the first
        // input (requires carrying state across steps).
        let mut rng = StdRng::seed_from_u64(13);
        let mut lstm = Lstm::new(1, 8, &mut rng);
        let mut head = crate::dense::Dense::new(8, 1, crate::activation::Activation::Identity, &mut rng);
        let cfg = OptimConfig { lr: 0.01, ..OptimConfig::default() };
        let seqs: Vec<(f64, Vec<Matrix>)> = (0..8)
            .map(|k| {
                let v = (k as f64 / 8.0) * 2.0 - 1.0;
                let mut xs = vec![Matrix::from_vec(1, 1, vec![v])];
                for j in 0..4 {
                    xs.push(Matrix::from_vec(1, 1, vec![(j as f64 * 0.9).cos() * 0.1]));
                }
                (v, xs)
            })
            .collect();
        let mut last_loss = f64::INFINITY;
        for epoch in 0..200 {
            let mut total = 0.0;
            for (target, xs) in &seqs {
                lstm.zero_grad();
                head.zero_grad();
                let hs = lstm.forward(xs);
                let y = head.forward(hs.last().unwrap());
                let err = y.data()[0] - target;
                total += err * err;
                let dy = Matrix::from_vec(1, 1, vec![2.0 * err]);
                let dh = head.backward(&dy);
                let mut dhs: Vec<Matrix> = hs.iter().map(|_| Matrix::zeros(1, 8)).collect();
                *dhs.last_mut().unwrap() = dh;
                lstm.backward(&dhs);
                lstm.step_optim(&cfg);
                head.step(&cfg);
            }
            if epoch == 199 {
                last_loss = total / seqs.len() as f64;
            }
        }
        assert!(last_loss < 0.01, "memorization loss {last_loss}");
    }
}
