//! First-order optimizers operating on flat parameter/gradient slices.

/// Hyper-parameters shared by the optimizers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OptimConfig {
    /// Learning rate.
    pub lr: f64,
    /// Adam β₁.
    pub beta1: f64,
    /// Adam β₂.
    pub beta2: f64,
    /// Adam ε.
    pub eps: f64,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f64,
}

impl Default for OptimConfig {
    fn default() -> Self {
        OptimConfig { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, grad_clip: 5.0 }
    }
}

/// Per-parameter-tensor Adam state.
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// Creates state for a tensor with `n` scalar parameters.
    pub fn new(n: usize) -> Self {
        Adam { m: vec![0.0; n], v: vec![0.0; n], t: 0 }
    }

    /// Applies one Adam update of `params` given `grads`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths disagree with the state size.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64], cfg: &OptimConfig) {
        assert_eq!(params.len(), self.m.len(), "param size mismatch");
        assert_eq!(grads.len(), self.m.len(), "grad size mismatch");
        self.t += 1;
        let b1t = 1.0 - cfg.beta1.powi(self.t as i32);
        let b2t = 1.0 - cfg.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = cfg.beta1 * self.m[i] + (1.0 - cfg.beta1) * g;
            self.v[i] = cfg.beta2 * self.v[i] + (1.0 - cfg.beta2) * g * g;
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
        }
    }
}

/// Plain SGD step (no state).
pub fn sgd_step(params: &mut [f64], grads: &[f64], lr: f64) {
    assert_eq!(params.len(), grads.len(), "grad size mismatch");
    for (p, &g) in params.iter_mut().zip(grads) {
        *p -= lr * g;
    }
}

/// Scales `grads` in place so their global L2 norm is at most `clip`.
/// No-op when `clip <= 0` or the norm is already within bounds.
pub fn clip_global_norm(grads: &mut [&mut [f64]], clip: f64) {
    if clip <= 0.0 {
        return;
    }
    let norm: f64 = grads
        .iter()
        .map(|g| g.iter().map(|x| x * x).sum::<f64>())
        .sum::<f64>()
        .sqrt();
    if norm <= clip {
        return;
    }
    let s = clip / norm;
    for g in grads.iter_mut() {
        for x in g.iter_mut() {
            *x *= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_reduces_quadratic_loss() {
        // Minimize f(x) = (x - 3)^2 from x = 0.
        let mut x = [0.0f64];
        let mut adam = Adam::new(1);
        let cfg = OptimConfig { lr: 0.1, ..OptimConfig::default() };
        for _ in 0..500 {
            let g = [2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g, &cfg);
        }
        assert!((x[0] - 3.0).abs() < 1e-3, "x = {}", x[0]);
    }

    #[test]
    fn sgd_matches_closed_form() {
        let mut x = [10.0f64];
        sgd_step(&mut x, &[4.0], 0.5);
        assert_eq!(x[0], 8.0);
    }

    #[test]
    fn clipping_preserves_direction() {
        let mut a = vec![3.0, 0.0];
        let mut b = vec![0.0, 4.0];
        {
            let mut views: Vec<&mut [f64]> = vec![&mut a, &mut b];
            clip_global_norm(&mut views, 1.0);
        }
        // Norm was 5; after clipping it is 1 with the same direction.
        assert!((a[0] - 0.6).abs() < 1e-12);
        assert!((b[1] - 0.8).abs() < 1e-12);
        // Already-small gradients are untouched.
        let mut c = vec![0.1];
        {
            let mut views: Vec<&mut [f64]> = vec![&mut c];
            clip_global_norm(&mut views, 1.0);
        }
        assert_eq!(c[0], 0.1);
    }
}
