//! Seeded weight initialization.

use crate::matrix::Matrix;
use rand::rngs::StdRng;
use rand::RngExt;

/// Xavier/Glorot uniform initialization for a `rows × cols` weight matrix:
/// samples from `U(-a, a)` with `a = sqrt(6 / (rows + cols))`.
pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / (rows + cols) as f64).sqrt();
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-a..a))
}

/// Small uniform initialization `U(-scale, scale)`.
pub fn uniform(rows: usize, cols: usize, scale: f64, rng: &mut StdRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.random_range(-scale..scale))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_respects_bound_and_seed() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier(10, 20, &mut rng);
        let a = (6.0 / 30.0f64).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= a));
        let mut rng2 = StdRng::seed_from_u64(1);
        assert_eq!(w, xavier(10, 20, &mut rng2));
    }

    #[test]
    fn uniform_respects_scale() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = uniform(5, 5, 0.01, &mut rng);
        assert!(w.data().iter().all(|&x| x.abs() <= 0.01));
        // Not all zero.
        assert!(w.norm() > 0.0);
    }
}
