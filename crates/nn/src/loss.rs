//! Loss functions returning `(loss, ∂loss/∂input)` pairs.

use crate::activation::sigmoid;
use crate::matrix::Matrix;

/// Class-weighted binary cross-entropy on logits.
///
/// RevPred mitigates the skew of spot-market labels by "assigning different
/// weights for different classes": with `φ⁺`/`φ⁻` the positive/negative
/// sample fractions, the positive class gets weight `φ⁻` and the negative
/// class `φ⁺` (§III.B). Pass those as `w_pos` / `w_neg`.
///
/// `logits` must be batch×1; `targets` holds 0.0/1.0 labels per row.
/// Returns the mean weighted loss and its gradient w.r.t. the logits.
///
/// # Panics
///
/// Panics if shapes disagree or weights are non-positive.
pub fn weighted_bce_with_logits(
    logits: &Matrix,
    targets: &[f64],
    w_pos: f64,
    w_neg: f64,
) -> (f64, Matrix) {
    assert_eq!(logits.cols(), 1, "logits must be a column");
    assert_eq!(logits.rows(), targets.len(), "target count mismatch");
    assert!(w_pos > 0.0 && w_neg > 0.0, "class weights must be positive");
    let n = targets.len() as f64;
    let mut loss = 0.0;
    let mut grad = Matrix::zeros(logits.rows(), 1);
    for r in 0..logits.rows() {
        let z = logits[(r, 0)];
        let y = targets[r];
        debug_assert!(y == 0.0 || y == 1.0, "targets must be 0/1");
        let p = sigmoid(z);
        let w = if y > 0.5 { w_pos } else { w_neg };
        // -w [ y ln p + (1-y) ln(1-p) ], computed stably from the logit:
        // ln(1+e^{-|z|}) + max(z,0) - y z.
        let softplus = (1.0 + (-z.abs()).exp()).ln() + z.max(0.0);
        loss += w * (softplus - y * z);
        grad[(r, 0)] = w * (p - y) / n;
    }
    (loss / n, grad)
}

/// Mean squared error; returns `(loss, ∂loss/∂pred)`.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mse(pred: &Matrix, target: &Matrix) -> (f64, Matrix) {
    assert_eq!(
        (pred.rows(), pred.cols()),
        (target.rows(), target.cols()),
        "shape mismatch"
    );
    let n = (pred.rows() * pred.cols()) as f64;
    let diff = pred.sub(target);
    let loss = diff.data().iter().map(|d| d * d).sum::<f64>() / n;
    let mut grad = diff;
    grad.scale(2.0 / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_matches_manual_computation() {
        let logits = Matrix::from_vec(2, 1, vec![0.0, 2.0]);
        let (loss, grad) = weighted_bce_with_logits(&logits, &[1.0, 0.0], 1.0, 1.0);
        // Row 0: -ln σ(0) = ln 2. Row 1: -ln(1-σ(2)).
        let expected = ((2.0f64).ln() + -(1.0 - sigmoid(2.0)).ln()) / 2.0;
        assert!((loss - expected).abs() < 1e-12);
        // Gradients: (p - y)/n.
        assert!((grad[(0, 0)] - (0.5 - 1.0) / 2.0).abs() < 1e-12);
        assert!((grad[(1, 0)] - (sigmoid(2.0) - 0.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn bce_gradient_check() {
        let eps = 1e-6;
        for &(z, y, wp, wn) in &[(0.3, 1.0, 2.0, 0.5), (-1.2, 0.0, 0.7, 1.9)] {
            let logits = Matrix::from_vec(1, 1, vec![z]);
            let (_, grad) = weighted_bce_with_logits(&logits, &[y], wp, wn);
            let (lp, _) =
                weighted_bce_with_logits(&Matrix::from_vec(1, 1, vec![z + eps]), &[y], wp, wn);
            let (lm, _) =
                weighted_bce_with_logits(&Matrix::from_vec(1, 1, vec![z - eps]), &[y], wp, wn);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad[(0, 0)]).abs() < 1e-6,
                "z={z} y={y}: numeric {numeric} vs {}",
                grad[(0, 0)]
            );
        }
    }

    #[test]
    fn bce_is_stable_at_extreme_logits() {
        let logits = Matrix::from_vec(2, 1, vec![500.0, -500.0]);
        let (loss, grad) = weighted_bce_with_logits(&logits, &[1.0, 0.0], 1.0, 1.0);
        assert!(loss.is_finite());
        assert!(loss < 1e-9); // both predictions are correct
        assert!(grad.data().iter().all(|g| g.is_finite()));
    }

    #[test]
    fn class_weights_scale_contributions() {
        let logits = Matrix::from_vec(1, 1, vec![0.0]);
        let (l1, _) = weighted_bce_with_logits(&logits, &[1.0], 1.0, 1.0);
        let (l3, _) = weighted_bce_with_logits(&logits, &[1.0], 3.0, 1.0);
        assert!((l3 - 3.0 * l1).abs() < 1e-12);
    }

    #[test]
    fn mse_basics() {
        let p = Matrix::from_vec(1, 2, vec![1.0, 2.0]);
        let t = Matrix::from_vec(1, 2, vec![0.0, 4.0]);
        let (loss, grad) = mse(&p, &t);
        assert!((loss - (1.0 + 4.0) / 2.0).abs() < 1e-12);
        assert_eq!(grad.data(), &[1.0, -2.0]);
    }
}
