//! # spottune-nn
//!
//! A deliberately small, dependency-free neural-network library backing
//! SpotTune's RevPred predictor: row-major `f64` matrices, dense layers,
//! LSTM layers with full backpropagation-through-time, class-weighted BCE,
//! and Adam. Everything is seeded and deterministic; all backward passes are
//! verified against numerical gradients in the test suite.
//!
//! ```
//! use spottune_nn::prelude::*;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut layer = Dense::new(4, 1, Activation::Sigmoid, &mut rng);
//! let x = Matrix::from_fn(2, 4, |r, c| (r + c) as f64 * 0.1);
//! let y = layer.forward(&x);
//! assert_eq!((y.rows(), y.cols()), (2, 1));
//! ```

pub mod activation;
pub mod dense;
pub mod init;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod optim;

pub use activation::Activation;
pub use dense::Dense;
pub use lstm::{Lstm, StackedLstm};
pub use matrix::Matrix;
pub use optim::{Adam, OptimConfig};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::activation::Activation;
    pub use crate::dense::Dense;
    pub use crate::loss::{mse, weighted_bce_with_logits};
    pub use crate::lstm::{Lstm, StackedLstm};
    pub use crate::matrix::Matrix;
    pub use crate::optim::{clip_global_norm, sgd_step, Adam, OptimConfig};
}
