//! A small row-major `f64` matrix, sufficient for the LSTM/dense networks
//! used by RevPred. No BLAS, no SIMD — clarity and determinism first.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Matrix { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(data: Vec<f64>) -> Self {
        let n = data.len();
        Matrix::from_vec(1, n, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow of one row.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // No zero-skip: LSTM/dense weights are dense, so a branch per
        // element only mispredicts; the straight-line axpy loop vectorizes.
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "t_matmul dimension mismatch");
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            for r in 0..self.cols {
                let a = self.data[k * self.cols + r];
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[r * rhs.cols..(r + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · rhsᵀ` without materializing the transpose.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "matmul_t dimension mismatch");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        for r in 0..self.rows {
            let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
            for c in 0..rhs.rows {
                let b_row = &rhs.data[c * rhs.cols..(c + 1) * rhs.cols];
                // Four independent accumulators break the serial f64-add
                // dependency chain of the dot product.
                let chunks = self.cols / 4 * 4;
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                let mut i = 0;
                while i < chunks {
                    s0 += a_row[i] * b_row[i];
                    s1 += a_row[i + 1] * b_row[i + 1];
                    s2 += a_row[i + 2] * b_row[i + 2];
                    s3 += a_row[i + 3] * b_row[i + 3];
                    i += 4;
                }
                let mut acc = (s0 + s1) + (s2 + s3);
                for j in chunks..self.cols {
                    acc += a_row[j] * b_row[j];
                }
                out.data[r * rhs.rows + c] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Element-wise sum into `self`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Element-wise difference `self - rhs` as a new matrix.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise (Hadamard) product as a new matrix.
    pub fn hadamard(&self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols), "shape mismatch");
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a * b).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Element-wise map as a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.iter().map(|&x| f(x)).collect())
    }

    /// Adds a 1×cols row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols()`.
    pub fn add_row_broadcast(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (a, &b) in row.iter_mut().zip(&bias.data) {
                *a += b;
            }
        }
    }

    /// Column sums as a 1×cols row vector (bias-gradient reduction).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Horizontal concatenation `[self | rhs]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    pub fn hconcat(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows, "hconcat row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + rhs.cols);
        for r in 0..self.rows {
            out.data[r * out.cols..r * out.cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * out.cols + self.cols..(r + 1) * out.cols].copy_from_slice(rhs.row(r));
        }
        out
    }

    /// Splits horizontally at `col`, returning `(left, right)`.
    pub fn hsplit(&self, col: usize) -> (Matrix, Matrix) {
        assert!(col > 0 && col < self.cols, "split point out of range");
        let mut left = Matrix::zeros(self.rows, col);
        let mut right = Matrix::zeros(self.rows, self.cols - col);
        for r in 0..self.rows {
            left.data[r * col..(r + 1) * col].copy_from_slice(&self.row(r)[..col]);
            right.data[r * (self.cols - col)..(r + 1) * (self.cols - col)]
                .copy_from_slice(&self.row(r)[col..]);
        }
        (left, right)
    }

    /// Sets every element to zero (gradient reset).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:+.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_basics() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transposed_products_match_explicit_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64 * 0.3 - 1.0);
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64 * 0.7 + 0.1);
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
        // matmul_t uses a 4-way unrolled accumulator, which reorders the
        // f64 sums — compare elementwise within rounding noise.
        let d = Matrix::from_fn(5, 4, |r, c| (r + c) as f64);
        let fast = a.matmul_t(&d);
        let reference = a.matmul(&d.transpose());
        assert_eq!((fast.rows(), fast.cols()), (reference.rows(), reference.cols()));
        for (x, y) in fast.data().iter().zip(reference.data()) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn unrolled_matmul_t_handles_all_remainders() {
        // Inner dimensions 1..=9 cover every `cols % 4` case of the
        // unrolled dot product.
        for cols in 1..=9usize {
            let a = Matrix::from_fn(2, cols, |r, c| (r * cols + c) as f64 * 0.17 - 0.5);
            let d = Matrix::from_fn(3, cols, |r, c| (r + 2 * c) as f64 * 0.23 + 0.1);
            let fast = a.matmul_t(&d);
            let reference = a.matmul(&d.transpose());
            for (x, y) in fast.data().iter().zip(reference.data()) {
                assert!((x - y).abs() < 1e-12, "cols={cols}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn broadcast_and_reduce_are_inverse_shapes() {
        let mut m = Matrix::zeros(3, 2);
        let bias = Matrix::row_vector(vec![1.0, -2.0]);
        m.add_row_broadcast(&bias);
        assert_eq!(m.sum_rows().data(), &[3.0, -6.0]);
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        let b = Matrix::from_fn(2, 2, |r, c| 10.0 + (r * 2 + c) as f64);
        let joined = a.hconcat(&b);
        assert_eq!(joined.cols(), 5);
        let (l, r) = joined.hsplit(3);
        assert_eq!(l, a);
        assert_eq!(r, b);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c.data(), &[2.0, 4.0, 6.0]);
        assert_eq!(a.map(|x| x * x).data(), &[1.0, 4.0, 9.0]);
        assert!((a.norm() - 14.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn mismatched_matmul_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_dims_rejected() {
        let _ = Matrix::zeros(0, 3);
    }
}
