//! `spottune-serve`: the TCP campaign service.
//!
//! ```text
//! spottune-serve [--addr HOST:PORT] [--workers N] [--queue-capacity N]
//!                [--burst N] [--refill PER_SEC]
//! ```
//!
//! Binds (port `0` picks an ephemeral port), prints
//! `listening on <addr>` on stdout, and serves newline-delimited wire
//! frames until a client sends `{"shutdown":true}` — then drains
//! gracefully and exits 0. See `crates/server/README.md` for the
//! protocol.

use spottune_server::net::{AdmissionConfig, NetServer, NetServerConfig};
use spottune_server::ServerConfig;
use std::io::Write;

fn usage(program: &str) -> String {
    format!(
        "usage: {program} [--addr HOST:PORT] [--workers N] [--queue-capacity N] \
         [--burst N] [--refill PER_SEC]"
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let program = args.first().map(String::as_str).unwrap_or("spottune-serve");
    let mut addr = "127.0.0.1:7915".to_string();
    let mut server = ServerConfig::default();
    let mut admission = AdmissionConfig::default();
    let mut iter = args.iter().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> String {
            match iter.next() {
                Some(v) => v.clone(),
                None => {
                    eprintln!("{name} needs a value\n{}", usage(program));
                    std::process::exit(2);
                }
            }
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => server.workers = parse(&value("--workers"), program),
            "--queue-capacity" => {
                server.queue_capacity = parse(&value("--queue-capacity"), program)
            }
            "--burst" => admission.burst = parse(&value("--burst"), program),
            "--refill" => admission.refill_per_sec = parse(&value("--refill"), program),
            "--help" | "-h" => {
                println!("{}", usage(program));
                return;
            }
            other => {
                eprintln!("unknown flag {other:?}\n{}", usage(program));
                std::process::exit(2);
            }
        }
    }
    let config = NetServerConfig { server, admission };
    let net = match NetServer::bind(&addr, config) {
        Ok(net) => net,
        Err(e) => {
            eprintln!("failed to bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    // The soak harness parses this line to find the ephemeral port.
    println!("listening on {}", net.local_addr());
    let _ = std::io::stdout().flush();
    if let Err(e) = net.run() {
        eprintln!("server error: {e}");
        std::process::exit(1);
    }
}

fn parse<T: std::str::FromStr>(text: &str, program: &str) -> T {
    match text.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("malformed numeric argument {text:?}\n{}", usage(program));
            std::process::exit(2);
        }
    }
}
