//! TCP front-end for the campaign server: the robustness layer that
//! turns [`CampaignServer`](crate::CampaignServer) into a multi-tenant
//! network service.
//!
//! ## Protocol
//!
//! Newline-delimited JSON frames over a plain TCP stream, encoded by
//! [`spottune_core::wire`]. A client sends one frame per line:
//!
//! * a campaign request (optionally carrying `deadline_ms`),
//! * `{"stats":true}` — answered with a flattened counter snapshot,
//! * `{"shutdown":true}` — begins a graceful drain of the whole server.
//!
//! The server answers every accepted request with exactly one frame: a
//! campaign response, or a typed error frame whose `kind` is one of
//! [`spottune_core::wire::registered_error_kinds`]. Nothing is silently
//! dropped — a connection that stays alive sees one reply per request.
//!
//! ## Robustness model
//!
//! * **Admission control** — each connection owns a token bucket
//!   ([`AdmissionConfig`]); a flood past the refill rate gets `throttled`
//!   frames instead of queue space.
//! * **Fairness** — admitted requests enter a small per-connection
//!   staging queue; a single dispatcher drains the staging queues
//!   round-robin (one request per connection per pass) into the core's
//!   bounded queue, so one chatty client cannot starve the rest.
//! * **Backpressure** — the core queue is bounded
//!   ([`ServerConfig::queue_capacity`](crate::ServerConfig)); an
//!   over-capacity submit comes back as an `overloaded` frame.
//! * **Deadlines** — `deadline_ms` starts counting at receipt; a request
//!   still queued past its deadline is cancelled (never run) and
//!   answered with a `deadline-exceeded` frame.
//! * **Graceful drain** — on shutdown the listener closes, new requests
//!   get `draining` frames, staged work is flushed into the core, queued
//!   campaigns finish, every pending response is written, and only then
//!   do the sockets close and [`NetServer::run`] return.
//!
//! Connection handling never panics: malformed frames, truncated lines,
//! mid-sweep disconnects and write failures are all confined to the
//! connection that caused them.

use crate::{CampaignServer, ServerConfig, SubmitError, WorkOutcome};
use crossbeam::channel::{self, Receiver, Sender};
use spottune_core::wire::{
    self, ClientFrame, ErrorFrame, ErrorKind,
};
use spottune_core::CampaignRequest;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Per-connection token-bucket admission knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionConfig {
    /// Bucket capacity: how many requests a connection may burst before
    /// the refill rate applies.
    pub burst: u32,
    /// Sustained admission rate in requests/second; `0.0` disables
    /// throttling entirely.
    pub refill_per_sec: f64,
    /// Staging-queue bound per connection; requests admitted past a full
    /// staging queue get an `overloaded` frame.
    pub staging_capacity: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig { burst: 64, refill_per_sec: 256.0, staging_capacity: 256 }
    }
}

/// Configuration of the TCP front-end: the core server's knobs plus
/// admission control.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetServerConfig {
    /// The wrapped [`CampaignServer`]'s configuration (worker count,
    /// cache tiers, queue capacity).
    pub server: ServerConfig,
    /// Per-connection admission control.
    pub admission: AdmissionConfig,
}

/// Classic token bucket over wall-clock time (permitted in this crate —
/// deadlines and admission are service time, not simulation time).
struct TokenBucket {
    tokens: f64,
    burst: f64,
    rate: f64,
    last: Instant,
}

impl TokenBucket {
    fn new(config: &AdmissionConfig) -> Self {
        TokenBucket {
            tokens: f64::from(config.burst),
            burst: f64::from(config.burst),
            rate: config.refill_per_sec,
            last: Instant::now(),
        }
    }

    fn admit(&mut self) -> bool {
        if self.rate <= 0.0 {
            return true;
        }
        let now = Instant::now();
        self.tokens =
            (self.tokens + now.duration_since(self.last).as_secs_f64() * self.rate).min(self.burst);
        self.last = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// A request admitted by a connection, waiting for the dispatcher.
struct Staged {
    request: CampaignRequest,
    deadline: Option<Instant>,
}

/// The write half of a connection, shared by the reader (error/stats
/// frames), the dispatcher (submit refusals) and the responder
/// (responses). Write errors mean the client left; they are ignored —
/// the reader observes the disconnect and retires the connection.
#[derive(Clone)]
struct SharedWriter {
    stream: Arc<Mutex<TcpStream>>,
}

impl SharedWriter {
    fn send_line(&self, line: &str) {
        let mut stream = lock_clean(&self.stream);
        let _ = stream
            .write_all(line.as_bytes())
            .and_then(|()| stream.write_all(b"\n"))
            .and_then(|()| stream.flush());
    }

    fn send_error(&self, id: Option<u64>, kind: ErrorKind, message: impl Into<String>) {
        self.send_line(&wire::encode_error_frame(&ErrorFrame {
            id,
            kind,
            message: message.into(),
        }));
    }
}

/// Mutex lock that shrugs off poisoning: every holder only mutates
/// state that stays coherent line-by-line, so continuing with the inner
/// value is always safe (and P1 forbids panicking here).
fn lock_clean<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// One connection's entry in the dispatcher's registry.
struct ConnSlot {
    staging: Arc<Mutex<VecDeque<Staged>>>,
    writer: SharedWriter,
    /// Hands `(request id, outcome receiver)` pairs to the responder in
    /// submission order.
    outcome_tx: Sender<(u64, Receiver<WorkOutcome>)>,
    /// Cleared by the reader at EOF; the dispatcher then retires the slot
    /// once its staging queue is empty.
    open: Arc<AtomicBool>,
}

/// Front-end counters, folded into the stats frame next to
/// [`ServerStats`](crate::ServerStats).
#[derive(Default)]
struct NetCounters {
    connections: AtomicU64,
    connections_active: AtomicU64,
    throttled: AtomicU64,
    malformed: AtomicU64,
}

struct Inner {
    core: CampaignServer,
    admission: AdmissionConfig,
    addr: SocketAddr,
    draining: AtomicBool,
    counters: NetCounters,
    registry: Mutex<Vec<ConnSlot>>,
    /// Responder threads: joined *before* the sockets close, so every
    /// pending response reaches the wire.
    responder_threads: Mutex<Vec<JoinHandle<()>>>,
    /// Reader threads: unblocked by the socket shutdown, joined last.
    reader_threads: Mutex<Vec<JoinHandle<()>>>,
    /// TCP streams of live connections, kept so drain can unblock
    /// readers by shutting the sockets down after the final flush.
    sockets: Mutex<Vec<TcpStream>>,
}

impl Inner {
    fn stats_frame(&self) -> String {
        let s = self.core.stats();
        wire::encode_stats_frame(&[
            ("workers", s.workers as u64),
            ("submitted", s.submitted),
            ("completed", s.completed),
            ("queue_capacity", s.queue_capacity),
            ("queue_depth", s.queue_depth),
            ("peak_queue_depth", s.peak_queue_depth),
            ("rejected", s.rejected),
            ("overloaded", s.overloaded),
            ("expired", s.expired),
            ("drained", s.drained),
            ("revocations", s.revocations),
            ("lost_steps", s.lost_steps),
            ("migrations", s.migrations),
            ("resident_pools", s.resident_pools as u64),
            ("resident_curves", s.resident_curves as u64),
            ("resident_predictors", s.resident_predictors as u64),
            ("resident_spines", s.resident_spines as u64),
            ("pool_hits", s.pool_cache.hits),
            ("pool_misses", s.pool_cache.misses),
            ("curve_hits", s.curve_cache.hits),
            ("curve_misses", s.curve_cache.misses),
            ("predictor_hits", s.predictor_cache.hits),
            ("predictor_misses", s.predictor_cache.misses),
            ("spine_hits", s.spine_cache.hits),
            ("spine_misses", s.spine_cache.misses),
            ("spine_queries", s.spine_queries),
            ("batched_groups", s.batched_groups),
            ("connections", self.counters.connections.load(Ordering::Relaxed)),
            ("connections_active", self.counters.connections_active.load(Ordering::Relaxed)),
            ("throttled", self.counters.throttled.load(Ordering::Relaxed)),
            ("malformed_frames", self.counters.malformed.load(Ordering::Relaxed)),
        ])
    }

    /// Flips the draining flag and nudges the accept loop awake with a
    /// throwaway connection to our own listener.
    fn request_shutdown(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect(self.addr);
        }
    }
}

/// Handle for triggering a graceful drain from outside [`NetServer::run`]
/// (tests, signal handlers). Cloneable and thread-safe.
#[derive(Clone)]
pub struct ShutdownHandle {
    inner: Arc<Inner>,
}

impl ShutdownHandle {
    /// Begins the graceful drain; [`NetServer::run`] returns once every
    /// pending response has been flushed.
    pub fn shutdown(&self) {
        self.inner.request_shutdown();
    }
}

/// The bound-but-not-yet-serving TCP front-end.
pub struct NetServer {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl NetServer {
    /// Binds the listener (use port `0` for an ephemeral port) and spawns
    /// the wrapped [`CampaignServer`]'s worker pool.
    ///
    /// # Errors
    ///
    /// Returns the bind error, e.g. when the address is taken.
    pub fn bind(addr: &str, config: NetServerConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            core: CampaignServer::start(config.server),
            admission: config.admission,
            addr,
            draining: AtomicBool::new(false),
            counters: NetCounters::default(),
            registry: Mutex::new(Vec::new()),
            responder_threads: Mutex::new(Vec::new()),
            reader_threads: Mutex::new(Vec::new()),
            sockets: Mutex::new(Vec::new()),
        });
        Ok(NetServer { listener, inner })
    }

    /// The bound address (resolves the ephemeral port of `bind(":0")`).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// A handle that can trigger the graceful drain from another thread.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle { inner: Arc::clone(&self.inner) }
    }

    /// Serves connections until a shutdown is requested (wire
    /// `{"shutdown":true}` or [`ShutdownHandle::shutdown`]), then drains
    /// gracefully: stops accepting, flushes staged work into the core,
    /// finishes queued campaigns, writes every pending response, closes
    /// the sockets and joins every thread — including the worker pool.
    ///
    /// # Errors
    ///
    /// Returns accept-loop I/O errors other than transient per-connection
    /// failures (which are skipped).
    pub fn run(self) -> std::io::Result<()> {
        let NetServer { listener, inner } = self;
        let dispatcher = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || dispatcher_loop(&inner))
        };
        loop {
            let (stream, _) = match listener.accept() {
                Ok(accepted) => accepted,
                // Transient accept errors (aborted handshake) are not
                // fatal to the service.
                Err(_) if !inner.draining.load(Ordering::SeqCst) => continue,
                Err(_) => break,
            };
            if inner.draining.load(Ordering::SeqCst) {
                // The wake-up connection (or a late client): refuse.
                let writer = match stream.try_clone() {
                    Ok(clone) => SharedWriter { stream: Arc::new(Mutex::new(clone)) },
                    Err(_) => continue,
                };
                writer.send_error(None, ErrorKind::Draining, "server is shutting down");
                break;
            }
            spawn_connection(&inner, stream);
        }
        drop(listener);
        // 1. Dispatcher flushes every staging queue, then exits.
        let _ = dispatcher.join();
        // 2. Core drains: queued campaigns finish, workers exit idle.
        inner.core.begin_drain();
        // 3. Responders flush the last responses and exit (their feed
        //    channels closed when the dispatcher retired every slot);
        //    joining them *before* the sockets close is what guarantees
        //    every pending response reaches the wire.
        let responders: Vec<JoinHandle<()>> =
            lock_clean(&inner.responder_threads).drain(..).collect();
        for handle in responders {
            let _ = handle.join();
        }
        // 4. Unblock readers with a socket shutdown and join them.
        for socket in lock_clean(&inner.sockets).drain(..) {
            let _ = socket.shutdown(Shutdown::Both);
        }
        let readers: Vec<JoinHandle<()>> = lock_clean(&inner.reader_threads).drain(..).collect();
        for handle in readers {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Spawns the reader + responder pair for one accepted connection.
fn spawn_connection(inner: &Arc<Inner>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    inner.counters.connections.fetch_add(1, Ordering::Relaxed);
    inner.counters.connections_active.fetch_add(1, Ordering::Relaxed);
    let writer = SharedWriter { stream: Arc::new(Mutex::new(write_half)) };
    let staging = Arc::new(Mutex::new(VecDeque::new()));
    let open = Arc::new(AtomicBool::new(true));
    let (outcome_tx, outcome_rx) = channel::unbounded::<(u64, Receiver<WorkOutcome>)>();
    lock_clean(&inner.registry).push(ConnSlot {
        staging: Arc::clone(&staging),
        writer: writer.clone(),
        outcome_tx,
        open: Arc::clone(&open),
    });
    lock_clean(&inner.sockets).push(stream);
    let responder = {
        let writer = writer.clone();
        std::thread::spawn(move || responder_loop(&outcome_rx, &writer))
    };
    let reader = {
        let inner = Arc::clone(inner);
        std::thread::spawn(move || {
            reader_loop(&inner, read_half, &writer, &staging);
            open.store(false, Ordering::SeqCst);
            inner.counters.connections_active.fetch_sub(1, Ordering::Relaxed);
        })
    };
    lock_clean(&inner.responder_threads).push(responder);
    lock_clean(&inner.reader_threads).push(reader);
}

/// Reads frames off one connection until EOF, answering admin frames
/// inline and staging admitted requests for the dispatcher.
fn reader_loop(
    inner: &Arc<Inner>,
    read_half: TcpStream,
    writer: &SharedWriter,
    staging: &Mutex<VecDeque<Staged>>,
) {
    let mut bucket = TokenBucket::new(&inner.admission);
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        match wire::decode_client_frame(text) {
            Ok(ClientFrame::Stats) => writer.send_line(&inner.stats_frame()),
            Ok(ClientFrame::Shutdown) => {
                // Ack with a stats snapshot *before* flipping the drain
                // flag: once the drain starts, the socket teardown races
                // this write and the requester could lose its ack.
                // Responses still flush before close either way.
                writer.send_line(&inner.stats_frame());
                inner.request_shutdown();
            }
            Ok(ClientFrame::Request { request, deadline_ms }) => {
                let id = request.id;
                if !bucket.admit() {
                    inner.counters.throttled.fetch_add(1, Ordering::Relaxed);
                    writer.send_error(
                        Some(id),
                        ErrorKind::Throttled,
                        "admission rate exceeded; slow down and retry",
                    );
                    continue;
                }
                let deadline =
                    deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
                let mut queue = lock_clean(staging);
                // The draining check must happen under the staging lock:
                // the dispatcher's final flush serializes on it, so a
                // request staged here is guaranteed to be flushed.
                if inner.draining.load(Ordering::SeqCst) {
                    drop(queue);
                    writer.send_error(
                        Some(id),
                        ErrorKind::Draining,
                        "server is shutting down; no new work accepted",
                    );
                    continue;
                }
                if queue.len() >= inner.admission.staging_capacity {
                    drop(queue);
                    writer.send_error(
                        Some(id),
                        ErrorKind::Overloaded,
                        "connection staging queue full; retry after backoff",
                    );
                    continue;
                }
                queue.push_back(Staged { request, deadline });
            }
            Err(e) => {
                inner.counters.malformed.fetch_add(1, Ordering::Relaxed);
                writer.send_error(None, ErrorKind::Malformed, e.to_string());
            }
        }
    }
}

/// Round-robin dispatcher: one staged request per connection per pass
/// into the core's bounded queue. Submit refusals become typed error
/// frames on the owning connection. Exits only after a drain has been
/// requested *and* every staging queue has been flushed.
fn dispatcher_loop(inner: &Arc<Inner>) {
    loop {
        let draining = inner.draining.load(Ordering::SeqCst);
        let slots: Vec<usize> = (0..lock_clean(&inner.registry).len()).collect();
        let mut moved = false;
        for idx in slots {
            let Some((staged, writer, outcome_tx)) = ({
                let registry = lock_clean(&inner.registry);
                registry.get(idx).map(|slot| {
                    let mut queue = lock_clean(&slot.staging);
                    let batch: Vec<Staged> = if draining {
                        // Final flush: take everything so nothing staged
                        // before the drain flag is ever dropped.
                        queue.drain(..).collect()
                    } else {
                        queue.pop_front().into_iter().collect()
                    };
                    (batch, slot.writer.clone(), slot.outcome_tx.clone())
                })
            }) else {
                continue;
            };
            for item in staged {
                moved = true;
                submit_staged(inner, item, &writer, &outcome_tx);
            }
        }
        // Retire connections that hit EOF and have nothing staged;
        // dropping the slot's outcome sender lets the responder finish.
        lock_clean(&inner.registry).retain(|slot| {
            slot.open.load(Ordering::SeqCst) || !lock_clean(&slot.staging).is_empty()
        });
        if draining {
            // The flush above happened entirely after the draining flag
            // was set; readers refuse new stages from now on, so the
            // queues stay empty. Drop every slot so responders wind down.
            lock_clean(&inner.registry).clear();
            return;
        }
        if !moved {
            std::thread::sleep(Duration::from_micros(500));
        }
    }
}

/// Offers one staged request to the core, converting refusals to frames.
fn submit_staged(
    inner: &Arc<Inner>,
    item: Staged,
    writer: &SharedWriter,
    outcome_tx: &Sender<(u64, Receiver<WorkOutcome>)>,
) {
    let id = item.request.id;
    match inner.core.try_submit(item.request, item.deadline) {
        Ok(rx) => {
            // The responder owns delivery from here; if it is already
            // gone the client has disconnected and the response is moot.
            let _ = outcome_tx.send((id, rx));
        }
        Err(SubmitError::Overloaded { capacity }) => writer.send_error(
            Some(id),
            ErrorKind::Overloaded,
            format!("request queue at capacity ({capacity}); retry after backoff"),
        ),
        Err(SubmitError::Rejected(reason)) => {
            writer.send_error(Some(id), ErrorKind::Rejected, reason)
        }
        Err(SubmitError::Draining) => writer.send_error(
            Some(id),
            ErrorKind::Draining,
            "server is shutting down; no new work accepted",
        ),
    }
}

/// Writes one frame per submitted request, in submission order: the
/// response, a `deadline-exceeded` frame, or (if the campaign died
/// without a verdict) a `rejected` frame — never silence.
fn responder_loop(feed: &Receiver<(u64, Receiver<WorkOutcome>)>, writer: &SharedWriter) {
    while let Ok((id, rx)) = feed.recv() {
        match rx.recv() {
            Ok(WorkOutcome::Done(response)) => {
                writer.send_line(&wire::encode_response(&response));
            }
            Ok(WorkOutcome::Expired { id }) => writer.send_error(
                Some(id),
                ErrorKind::DeadlineExceeded,
                "deadline passed while queued; campaign cancelled",
            ),
            // The outcome lane died without a verdict: the campaign
            // panicked mid-run. Typed refusal instead of silence.
            Err(_) => writer.send_error(
                Some(id),
                ErrorKind::Rejected,
                "campaign aborted without a response",
            ),
        }
    }
}
