//! # spottune-server
//!
//! A long-running, sharded multi-campaign service: the scaling layer that
//! turns the per-process campaign fan-out into a reusable subsystem able to
//! sweep 10⁵–10⁶ campaigns (workload × policy × θ × seed × market scenario)
//! in one process. Every registered provisioning policy — SpotTune, the
//! baselines, hybrid and bid-aware — runs through the same engine and the
//! same cached pipeline; a request's `approach` is part of its identity.
//!
//! ## Architecture
//!
//! * **Sharding** — [`CampaignServer::start`] spawns a fixed pool of
//!   resident worker threads. Requests flow through an unbounded
//!   `crossbeam::channel` MPMC queue, so an idle worker steals the next
//!   request the moment it finishes — coarse campaigns shard evenly
//!   without a scheduler.
//! * **Streaming** — every submission (single request or sweep) carries its
//!   own reply channel; [`CampaignResponse`]s stream back in *completion*
//!   order, tagged with the request id so clients needing submission order
//!   can reorder. The reply receiver disconnects exactly when the last
//!   response of the submission has been delivered.
//! * **Shared tiers** — workers resolve the market environment through a
//!   scenario-keyed [`PoolCache`], memoize training curves through a
//!   cross-request [`CurveCache`], and resolve learned revocation
//!   predictors through a `(scenario × kind)`-keyed [`PredictorCache`] —
//!   all `Arc`-backed with hit/miss counters ([`CampaignServer::stats`]).
//!   The predictor tier is what makes learned-estimator sweeps viable:
//!   training a RevPred set is minutes of LSTM work, so it happens at most
//!   once per `(scenario, kind)` no matter how many thousand campaigns
//!   request it. Campaign results are pure functions of
//!   `(request, scenario)`, so shared tiers change wall-clock and
//!   counters, never reports: a sweep through the server is bit-identical
//!   to running each campaign serially
//!   ([`CampaignRequest::run_serial`]).
//!
//! ```no_run
//! use spottune_core::prelude::*;
//! use spottune_market::{EstimatorSpec, MarketScenario};
//! use spottune_mlsim::prelude::*;
//! use spottune_server::{CampaignServer, ServerConfig};
//!
//! let server = CampaignServer::start(ServerConfig::default());
//! let scenario = MarketScenario::from_days(12, 42);
//! let requests: Vec<CampaignRequest> = (0..1000)
//!     .map(|i| CampaignRequest {
//!         id: i,
//!         approach: Approach::SpotTune { theta: 0.7 },
//!         workload: Workload::benchmark(Algorithm::ResNet),
//!         scenario,
//!         seed: i,
//!         // The learned predictor trains once; 999 campaigns reuse it.
//!         estimator: EstimatorSpec::RevPred,
//!     })
//!     .collect();
//! for response in server.submit_sweep(requests) {
//!     println!("{}", response.report.summary());
//! }
//! let stats = server.stats();
//! println!("curve memo hit rate: {:.1}%", 100.0 * stats.curve_cache.hit_rate());
//! println!("predictor tier: {} trainings", stats.predictor_cache.misses);
//! ```

use crossbeam::channel::{self, Receiver, Sender};
use serde::{Deserialize, Serialize};
use spottune_core::{CampaignRequest, CampaignResponse};
use spottune_market::{CacheStats, PoolCache};
use spottune_mlsim::CurveCache;
use spottune_revpred::{PredictorCache, PredictorKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Campaign-server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Worker-pool size; `0` (the default) means one worker per available
    /// core. Campaigns are single-threaded and CPU-bound, so more workers
    /// than cores only adds contention on the shared tiers.
    pub workers: usize,
    /// Capacity bound of the curve tier; `0` (the default) is unbounded.
    /// Many-seed sweeps touch a distinct curve set per master seed, so a
    /// 10⁶-campaign sweep needs a bound to keep the memo from growing with
    /// the sweep; evictions are LRU and counted in the tier's
    /// [`CacheStats`].
    pub curve_capacity: usize,
    /// Capacity bound of the trained-predictor tier; `0` (the default) is
    /// unbounded. Each resident entry is a full trained predictor set
    /// (three models per market), so scenario-heavy sweeps bound this to
    /// cap memory; evictions are LRU and counted in the tier's
    /// [`CacheStats`]. An evicted `(scenario, kind)` retrains on its next
    /// request.
    pub predictor_capacity: usize,
}

impl ServerConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        ServerConfig { workers, ..ServerConfig::default() }
    }

    /// Builder-style curve-tier capacity override (`0` = unbounded).
    pub fn with_curve_capacity(mut self, curve_capacity: usize) -> Self {
        self.curve_capacity = curve_capacity;
        self
    }

    /// Builder-style predictor-tier capacity override (`0` = unbounded).
    pub fn with_predictor_capacity(mut self, predictor_capacity: usize) -> Self {
        self.predictor_capacity = predictor_capacity;
        self
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    }
}

/// A snapshot of the server's counters and shared-tier state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Worker-pool size.
    pub workers: usize,
    /// Requests accepted so far.
    pub submitted: u64,
    /// Responses delivered (or dropped by a departed client) so far.
    pub completed: u64,
    /// Hit/miss counters of the scenario-keyed market-pool tier.
    pub pool_cache: CacheStats,
    /// Hit/miss counters of the cross-request training-curve tier.
    pub curve_cache: CacheStats,
    /// Hit/miss counters of the `(scenario × kind)`-keyed trained-predictor
    /// tier (every miss is one full training run).
    pub predictor_cache: CacheStats,
    /// Distinct market scenarios currently resident.
    pub resident_pools: usize,
    /// Completed training curves currently resident.
    pub resident_curves: usize,
    /// Trained predictor sets currently resident.
    pub resident_predictors: usize,
    /// Spot revocations absorbed across every completed campaign — the
    /// server-level view of how hostile the swept markets were.
    pub revocations: u64,
    /// Training steps rolled back across every completed campaign (grace
    /// windows too short, or checkpoints lost to injected faults).
    pub lost_steps: u64,
    /// Grace-window batch migrations executed across every completed
    /// campaign (non-zero only for policies overriding
    /// `assign_migrations`).
    pub migrations: u64,
}

/// One queued unit of work: the request plus the submission's reply lane.
struct WorkItem {
    request: CampaignRequest,
    reply: Sender<CampaignResponse>,
}

/// Graceful-degradation counters accumulated from every completed
/// campaign's report (revocations absorbed, steps rolled back, batch
/// migrations executed).
#[derive(Debug, Default)]
struct DegradationCounters {
    revocations: AtomicU64,
    lost_steps: AtomicU64,
    migrations: AtomicU64,
}

/// The long-running sharded campaign service.
///
/// Dropping the server disconnects the request queue and joins every
/// worker; in-flight campaigns finish first ([`CampaignServer::shutdown`]
/// does the same explicitly).
pub struct CampaignServer {
    req_tx: Option<Sender<WorkItem>>,
    workers: Vec<JoinHandle<()>>,
    pools: PoolCache,
    curves: CurveCache,
    predictors: PredictorCache,
    submitted: AtomicU64,
    completed: Arc<AtomicU64>,
    degradation: Arc<DegradationCounters>,
}

impl CampaignServer {
    /// Spawns the worker pool with fresh, server-private cache tiers (the
    /// curve and predictor tiers honour [`ServerConfig::curve_capacity`]
    /// and [`ServerConfig::predictor_capacity`]).
    pub fn start(config: ServerConfig) -> Self {
        CampaignServer::start_with_tiers(
            config,
            PoolCache::new(),
            CurveCache::with_capacity(config.curve_capacity),
            PredictorCache::with_capacity(config.predictor_capacity),
        )
    }

    /// Spawns the worker pool against caller-provided tiers — e.g.
    /// [`CurveCache::global`] to share curves with non-server work in the
    /// same process, or tiers handed from a previous server instance to
    /// carry warm state (resident pools, curves and trained predictors)
    /// across restarts.
    pub fn start_with_tiers(
        config: ServerConfig,
        pools: PoolCache,
        curves: CurveCache,
        predictors: PredictorCache,
    ) -> Self {
        let workers = config.resolved_workers();
        let (req_tx, req_rx) = channel::unbounded::<WorkItem>();
        let completed = Arc::new(AtomicU64::new(0));
        let degradation = Arc::new(DegradationCounters::default());
        let handles = (0..workers)
            .map(|i| {
                let rx = req_rx.clone();
                let pools = pools.clone();
                let curves = curves.clone();
                let predictors = predictors.clone();
                let completed = Arc::clone(&completed);
                let degradation = Arc::clone(&degradation);
                std::thread::Builder::new()
                    .name(format!("campaign-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&rx, &pools, &curves, &predictors, &completed, &degradation)
                    })
                    .expect("spawn campaign worker")
            })
            .collect();
        CampaignServer {
            req_tx: Some(req_tx),
            workers: handles,
            pools,
            curves,
            predictors,
            submitted: AtomicU64::new(0),
            completed,
            degradation,
        }
    }

    /// Submits one campaign; the returned receiver yields its single
    /// response.
    pub fn submit(&self, request: CampaignRequest) -> Receiver<CampaignResponse> {
        self.submit_sweep(vec![request])
    }

    /// Validating variant of [`CampaignServer::submit`]: a malformed
    /// request (NaN θ, empty grid, zero-length scenario, bad estimator
    /// spec) is rejected here with its reason instead of being queued to
    /// panic inside a worker.
    pub fn submit_checked(
        &self,
        request: CampaignRequest,
    ) -> Result<Receiver<CampaignResponse>, String> {
        self.submit_sweep_checked(vec![request])
    }

    /// Submits a sweep; the returned receiver streams one response per
    /// request in **completion** order and disconnects after the last one.
    ///
    /// Responses echo [`CampaignRequest::id`], so a client that needs
    /// submission order sorts by id on its side (see
    /// [`CampaignServer::run_sweep`]).
    ///
    /// Untrusted (wire-decoded) requests should go through
    /// [`CampaignServer::submit_sweep_checked`] instead: this path queues
    /// whatever it is given, and a request that fails engine validation
    /// panics its campaign, shortening the stream by one response.
    pub fn submit_sweep(&self, requests: Vec<CampaignRequest>) -> Receiver<CampaignResponse> {
        let (reply_tx, reply_rx) = channel::unbounded();
        // `req_tx` is only `None` mid-teardown; a send fails only if every
        // worker is gone. Neither is a reason to panic the *client* thread:
        // an unqueued request simply never answers, which the stream
        // reports by disconnecting short (same contract as a panicked
        // campaign).
        let Some(req_tx) = self.req_tx.as_ref() else {
            return reply_rx;
        };
        self.submitted.fetch_add(requests.len() as u64, Ordering::Relaxed);
        for request in requests {
            if req_tx.send(WorkItem { request, reply: reply_tx.clone() }).is_err() {
                break;
            }
        }
        // Workers hold the only remaining clones: the stream disconnects
        // exactly when the sweep's last response has been sent.
        drop(reply_tx);
        reply_rx
    }

    /// Validating variant of [`CampaignServer::submit_sweep`]: every
    /// request is checked ([`CampaignRequest::validate`]) before anything
    /// is queued, so a malformed submission yields an error naming the
    /// offending request instead of a worker panic and a silently
    /// shortened response stream. All-or-nothing: one bad request rejects
    /// the whole sweep.
    pub fn submit_sweep_checked(
        &self,
        requests: Vec<CampaignRequest>,
    ) -> Result<Receiver<CampaignResponse>, String> {
        for request in &requests {
            request
                .validate()
                .map_err(|reason| format!("request {}: {reason}", request.id))?;
        }
        Ok(self.submit_sweep(requests))
    }

    /// Blocking convenience: runs a sweep and returns the responses in
    /// *request* order.
    ///
    /// # Panics
    ///
    /// Panics if request ids are not unique within the sweep, or if a
    /// response went missing (its campaign panicked).
    pub fn run_sweep(&self, requests: Vec<CampaignRequest>) -> Vec<CampaignResponse> {
        let order: std::collections::HashMap<u64, usize> = requests
            .iter()
            .enumerate()
            .map(|(pos, r)| (r.id, pos))
            .collect();
        assert_eq!(order.len(), requests.len(), "sweep request ids must be unique");
        let expected = requests.len();
        let mut responses: Vec<Option<CampaignResponse>> = (0..expected).map(|_| None).collect();
        for response in self.submit_sweep(requests) {
            let pos = order[&response.id];
            responses[pos] = Some(response);
        }
        responses
            .into_iter()
            .map(|r| r.expect("every sweep request must produce a response"))
            .collect()
    }

    /// Handle to the scenario-keyed market-pool tier.
    pub fn pool_cache(&self) -> &PoolCache {
        &self.pools
    }

    /// Handle to the cross-request curve-memo tier.
    pub fn curve_cache(&self) -> &CurveCache {
        &self.curves
    }

    /// Handle to the `(scenario × kind)`-keyed trained-predictor tier.
    pub fn predictor_cache(&self) -> &PredictorCache {
        &self.predictors
    }

    /// Counters and shared-tier state.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            workers: self.workers.len(),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            pool_cache: self.pools.stats(),
            curve_cache: self.curves.stats(),
            predictor_cache: self.predictors.stats(),
            resident_pools: self.pools.len(),
            resident_curves: self.curves.len(),
            resident_predictors: self.predictors.len(),
            revocations: self.degradation.revocations.load(Ordering::Relaxed),
            lost_steps: self.degradation.lost_steps.load(Ordering::Relaxed),
            migrations: self.degradation.migrations.load(Ordering::Relaxed),
        }
    }

    /// Finishes in-flight campaigns, then stops and joins every worker.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        drop(self.req_tx.take());
        for handle in self.workers.drain(..) {
            // Propagate a worker panic — unless we are already unwinding
            // (Drop during a client panic), where a second panic would
            // abort the process and mask the original error.
            if handle.join().is_err() && !std::thread::panicking() {
                panic!("campaign worker panicked");
            }
        }
    }
}

impl Drop for CampaignServer {
    fn drop(&mut self) {
        if self.req_tx.is_some() {
            self.finish();
        }
    }
}

/// The resident worker body: pull a request, resolve its pool through the
/// shared tier, resolve its estimator (learned specs go through the
/// trained-predictor tier, so each `(scenario, kind)` trains at most
/// once), run the campaign against the shared curve memo, stream the
/// response back on the submission's reply lane.
///
/// Campaign panics (a malformed wire request — NaN θ, empty grid — hitting
/// a validation assert) are confined to the request: the worker drops that
/// response and lives on to serve the rest of the queue. Letting the
/// worker die instead would strand every queued request holding a reply
/// lane, hanging their clients forever.
fn worker_loop(
    rx: &Receiver<WorkItem>,
    pools: &PoolCache,
    curves: &CurveCache,
    predictors: &PredictorCache,
    completed: &AtomicU64,
    degradation: &DegradationCounters,
) {
    while let Ok(WorkItem { request, reply }) = rx.recv() {
        let id = request.id;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let pool = pools.get(request.scenario);
            let campaign = request.campaign();
            match PredictorKind::from_spec(&request.estimator) {
                Some(kind) => {
                    let trained = predictors.get(kind, request.scenario, &pool);
                    campaign.run_with_estimator(&pool, curves, trained.as_ref())
                }
                None => campaign.run_with_cache(&pool, curves),
            }
        }));
        match outcome {
            Ok(report) => {
                completed.fetch_add(1, Ordering::Relaxed);
                degradation.revocations.fetch_add(report.revocations, Ordering::Relaxed);
                degradation.lost_steps.fetch_add(report.lost_steps, Ordering::Relaxed);
                degradation.migrations.fetch_add(report.migrations, Ordering::Relaxed);
                // A client that dropped its receiver no longer wants the
                // report; that is not a server error.
                let _ = reply.send(CampaignResponse { id, report });
            }
            // The panic message has already been printed by the default
            // hook; dropping `reply` shortens the sweep's stream by one,
            // which streaming clients observe as a missing id and
            // `run_sweep` reports by panicking.
            Err(_) => eprintln!("campaign request {id} panicked; dropping its response"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_core::{Approach, SingleSpotKind};
    use spottune_market::{EstimatorSpec, MarketScenario};
    use spottune_mlsim::{Algorithm, Workload};

    fn tiny_workload() -> Workload {
        let base = Workload::benchmark(Algorithm::LoR);
        Workload::custom(Algorithm::LoR, 25, base.hp_grid()[..2].to_vec())
    }

    fn request(id: u64) -> CampaignRequest {
        CampaignRequest {
            id,
            approach: Approach::SingleSpot(SingleSpotKind::Cheapest),
            workload: tiny_workload(),
            scenario: MarketScenario::from_days(1, 5),
            seed: id,
            estimator: EstimatorSpec::default(),
        }
    }

    #[test]
    fn single_submission_round_trips() {
        let server = CampaignServer::start(ServerConfig::with_workers(2));
        let rx = server.submit(request(7));
        let response = rx.recv().expect("one response");
        assert_eq!(response.id, 7);
        assert!(response.report.cost > 0.0);
        // Stream disconnects after the single response.
        assert!(rx.recv().is_err());
        let stats = server.stats();
        assert_eq!((stats.submitted, stats.completed), (1, 1));
        server.shutdown();
    }

    #[test]
    fn sweep_streams_every_response_and_shares_pools() {
        let server = CampaignServer::start(ServerConfig::with_workers(4));
        let requests: Vec<CampaignRequest> = (0..12).map(request).collect();
        let mut ids: Vec<u64> = server.submit_sweep(requests).iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
        let stats = server.stats();
        // One scenario, twelve campaigns: eleven pool-tier hits.
        assert_eq!(stats.resident_pools, 1);
        assert_eq!(stats.pool_cache.hits, 11);
        assert_eq!(stats.pool_cache.misses, 1);
        assert_eq!(stats.workers, 4);
        server.shutdown();
    }

    #[test]
    fn run_sweep_restores_request_order() {
        let server = CampaignServer::start(ServerConfig::with_workers(3));
        // Scrambled, non-contiguous ids.
        let requests: Vec<CampaignRequest> = [5u64, 1, 9, 3].into_iter().map(request).collect();
        let responses = server.run_sweep(requests);
        let ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![5, 1, 9, 3]);
        server.shutdown();
    }

    #[test]
    fn dropped_client_does_not_wedge_the_server() {
        let server = CampaignServer::start(ServerConfig::with_workers(1));
        drop(server.submit(request(1)));
        // The next submission still answers.
        let response = server.submit(request(2)).recv().expect("second response");
        assert_eq!(response.id, 2);
        server.shutdown();
    }

    #[test]
    #[should_panic(expected = "ids must be unique")]
    fn duplicate_sweep_ids_rejected() {
        let server = CampaignServer::start(ServerConfig::with_workers(1));
        let _ = server.run_sweep(vec![request(1), request(1)]);
    }

    #[test]
    fn predictor_tier_trains_once_for_a_shared_scenario() {
        let server = CampaignServer::start(ServerConfig::with_workers(2));
        // Two learned-spec requests over the same scenario: one training,
        // one tier hit. (Logistic is the cheap family; the LSTM kinds go
        // through exactly the same tier path.)
        let mut requests: Vec<CampaignRequest> = (0..2).map(request).collect();
        for req in &mut requests {
            req.approach = Approach::SpotTune { theta: 0.7 };
            req.estimator = EstimatorSpec::Logistic;
        }
        let responses = server.run_sweep(requests);
        assert_eq!(responses.len(), 2);
        let stats = server.stats();
        assert_eq!(stats.predictor_cache.misses, 1, "{:?}", stats.predictor_cache);
        assert!(stats.predictor_cache.hits > 0, "{:?}", stats.predictor_cache);
        assert_eq!(stats.resident_predictors, 1);
        // Oracle campaigns never touch the tier.
        server.run_sweep(vec![request(9)]);
        assert_eq!(server.stats().predictor_cache.lookups(), 2);
        server.shutdown();
    }

    #[test]
    fn bounded_predictor_tier_evicts_across_a_scenario_sweep() {
        let server = CampaignServer::start(
            ServerConfig::with_workers(1).with_predictor_capacity(1),
        );
        // Three distinct scenarios through a capacity-1 tier: every
        // training displaces the previous resident.
        let mut requests: Vec<CampaignRequest> = (0..3).map(request).collect();
        for (i, req) in requests.iter_mut().enumerate() {
            req.approach = Approach::SpotTune { theta: 0.7 };
            req.estimator = EstimatorSpec::Logistic;
            req.scenario = MarketScenario::from_days(1, 100 + i as u64);
        }
        let responses = server.run_sweep(requests);
        assert_eq!(responses.len(), 3);
        let stats = server.stats();
        assert_eq!(stats.predictor_cache.misses, 3, "{:?}", stats.predictor_cache);
        assert_eq!(stats.predictor_cache.evictions, 2, "{:?}", stats.predictor_cache);
        assert_eq!(stats.resident_predictors, 1);
        server.shutdown();
    }

    #[test]
    fn stats_sum_degradation_counters_over_completed_reports() {
        let server = CampaignServer::start(ServerConfig::with_workers(2));
        // Long enough campaigns on spot capacity to see real revocations.
        let mut requests: Vec<CampaignRequest> = (0..6).map(request).collect();
        for req in &mut requests {
            req.approach = Approach::SpotTune { theta: 0.7 };
            req.workload = Workload::custom(
                Algorithm::LoR,
                60,
                Workload::benchmark(Algorithm::LoR).hp_grid()[..2].to_vec(),
            );
        }
        let responses = server.run_sweep(requests);
        let expected: u64 = responses.iter().map(|r| r.report.revocations).sum();
        let stats = server.stats();
        assert_eq!(stats.revocations, expected, "server counter must equal the report sum");
        // Default hooks never roll back or batch-migrate (the fault-free
        // bit-identity invariant, observed at the server boundary).
        assert_eq!((stats.lost_steps, stats.migrations), (0, 0));
        server.shutdown();
    }

    #[test]
    fn malformed_request_is_rejected_before_queueing() {
        let server = CampaignServer::start(ServerConfig::with_workers(1));
        // NaN θ straight off the wire: rejected with its reason, nothing
        // queued, nothing panicked.
        let mut poisoned = request(0);
        poisoned.approach = Approach::SpotTune { theta: f64::NAN };
        let err = server.submit_checked(poisoned).err().expect("NaN theta must be rejected");
        assert!(err.contains("theta"), "{err}");
        // A zero-length scenario is just as undecodable-into-work.
        let mut empty = request(1);
        empty.scenario = MarketScenario::from_days(0, 1);
        assert!(server.submit_checked(empty).is_err());
        // One bad request rejects the whole sweep before queueing any of it.
        let mut bad = request(3);
        bad.approach = Approach::SpotTune { theta: -0.5 };
        assert!(server.submit_sweep_checked(vec![request(2), bad]).is_err());
        assert_eq!(server.stats().submitted, 0, "rejected requests are never queued");
        // The same server still serves healthy submissions.
        let rx = server.submit_checked(request(4)).expect("valid request passes");
        assert_eq!(rx.recv().expect("one response").id, 4);
        server.shutdown();
    }

    #[test]
    fn panicking_campaign_does_not_strand_queued_requests() {
        let server = CampaignServer::start(ServerConfig::with_workers(1));
        // NaN θ fails SpotTuneConfig validation inside the campaign; with a
        // single worker the two healthy requests sit queued behind it.
        let mut poisoned = request(0);
        poisoned.approach = Approach::SpotTune { theta: f64::NAN };
        let mut ids: Vec<u64> = server
            .submit_sweep(vec![poisoned, request(1), request(2)])
            .iter()
            .map(|r| r.id)
            .collect();
        ids.sort_unstable();
        // The stream terminates (no hang), one response short.
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(server.stats().completed, 2);
        server.shutdown();
    }
}
