//! # spottune-server
//!
//! A long-running, sharded multi-campaign service: the scaling layer that
//! turns the per-process campaign fan-out into a reusable subsystem able to
//! sweep 10⁵–10⁶ campaigns (workload × policy × θ × seed × market scenario)
//! in one process. Every registered provisioning policy — SpotTune, the
//! baselines, hybrid and bid-aware — runs through the same engine and the
//! same cached pipeline; a request's `approach` is part of its identity.
//!
//! ## Architecture
//!
//! * **Sharding** — [`CampaignServer::start`] spawns a fixed pool of
//!   resident worker threads. Requests flow through a
//!   `crossbeam::channel` MPMC queue — bounded to
//!   [`ServerConfig::queue_capacity`] (the default `0` keeps the legacy
//!   unbounded feed) — so an idle worker steals the next request the
//!   moment it finishes; coarse campaigns shard evenly without a
//!   scheduler.
//! * **Backpressure & drain** — with a bounded queue, the non-blocking
//!   submission paths ([`CampaignServer::try_submit`]) refuse
//!   over-capacity work with [`SubmitError::Overloaded`] instead of
//!   queueing forever, and per-request deadlines expire not-yet-started
//!   work at dequeue time ([`WorkOutcome::Expired`]). A graceful
//!   shutdown ([`CampaignServer::begin_drain`]) closes the intake —
//!   later submits observe [`SubmitError::Draining`], already-queued
//!   requests finish and stream their responses — and
//!   [`CampaignServer::shutdown`] then joins the pool. All of it is
//!   observable: [`ServerStats`] carries the live queue depth, its
//!   high-water mark and the rejected/overloaded/expired/drained
//!   counters.
//! * **Streaming** — every submission (single request or sweep) carries its
//!   own reply channel; [`CampaignResponse`]s stream back in *completion*
//!   order, tagged with the request id so clients needing submission order
//!   can reorder. The reply receiver disconnects exactly when the last
//!   response of the submission has been delivered.
//! * **Shared tiers** — workers resolve the market environment through a
//!   scenario-keyed [`PoolCache`], memoize training curves through a
//!   cross-request [`CurveCache`], and resolve learned revocation
//!   predictors through a `(scenario × kind)`-keyed [`PredictorCache`] —
//!   all `Arc`-backed with hit/miss counters ([`CampaignServer::stats`]).
//!   The predictor tier is what makes learned-estimator sweeps viable:
//!   training a RevPred set is minutes of LSTM work, so it happens at most
//!   once per `(scenario, kind)` no matter how many thousand campaigns
//!   request it. Campaign results are pure functions of
//!   `(request, scenario)`, so shared tiers change wall-clock and
//!   counters, never reports: a sweep through the server is bit-identical
//!   to running each campaign serially
//!   ([`CampaignRequest::run_serial`]).
//!
//! ```no_run
//! use spottune_core::prelude::*;
//! use spottune_market::{EstimatorSpec, MarketScenario};
//! use spottune_mlsim::prelude::*;
//! use spottune_server::{CampaignServer, ServerConfig};
//!
//! let server = CampaignServer::start(ServerConfig::default());
//! let scenario = MarketScenario::from_days(12, 42);
//! let requests: Vec<CampaignRequest> = (0..1000)
//!     .map(|i| CampaignRequest {
//!         id: i,
//!         approach: Approach::SpotTune { theta: 0.7 },
//!         workload: Workload::benchmark(Algorithm::ResNet),
//!         scenario,
//!         seed: i,
//!         // The learned predictor trains once; 999 campaigns reuse it.
//!         estimator: EstimatorSpec::RevPred,
//!     })
//!     .collect();
//! for response in server.submit_sweep(requests) {
//!     println!("{}", response.report.summary());
//! }
//! let stats = server.stats();
//! println!("curve memo hit rate: {:.1}%", 100.0 * stats.curve_cache.hit_rate());
//! println!("predictor tier: {} trainings", stats.predictor_cache.misses);
//! ```

use crossbeam::channel::{self, Receiver, Sender, TrySendError};
use serde::{Deserialize, Serialize};
use spottune_core::{BatchRunner, CampaignRequest, CampaignResponse};
use spottune_market::{CacheStats, MarketScenario, PoolCache, SpineCache};
use spottune_mlsim::CurveCache;
use spottune_revpred::{PredictorCache, PredictorKind};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

pub mod net;

/// Campaign-server configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Whether sweep submissions ride the batched path: requests grouped
    /// by market scenario and chunked into [`WorkPayload::Group`] items,
    /// so a worker resolves the group's pool, [`spine`](SpineCache) and
    /// predictors once and reuses one engine scratch across the chunk.
    /// Default `true`; `false` restores the one-request-per-work-item
    /// serial path (the `run_campaigns --no-batch` A/B reference).
    /// Bit-identity between the two is locked by the core
    /// `batch_equivalence` suite.
    pub batch: bool,
    /// Whether batched group items run through the SoA cohort path:
    /// campaigns staged in [`spottune_core::COHORT_WIDTH`] cohorts, final-
    /// metric extrapolations batched through the cross-campaign lane
    /// kernel, learned estimators behind the probe-context memo. Default
    /// `true`; `false` restores the one-campaign-at-a-time group loop
    /// (the `--no-soa` A/B reference). Bit-identity between the two is
    /// locked by the core `batch_equivalence` suite and the
    /// `soa_worker_path` server test. Ignored when
    /// [`batch`](ServerConfig::batch) is off.
    pub soa: bool,
    /// Worker-pool size; `0` (the default) means one worker per available
    /// core. Campaigns are single-threaded and CPU-bound, so more workers
    /// than cores only adds contention on the shared tiers.
    pub workers: usize,
    /// Capacity bound of the curve tier; `0` (the default) is unbounded.
    /// Many-seed sweeps touch a distinct curve set per master seed, so a
    /// 10⁶-campaign sweep needs a bound to keep the memo from growing with
    /// the sweep; evictions are LRU and counted in the tier's
    /// [`CacheStats`].
    pub curve_capacity: usize,
    /// Capacity bound of the trained-predictor tier; `0` (the default) is
    /// unbounded. Each resident entry is a full trained predictor set
    /// (three models per market), so scenario-heavy sweeps bound this to
    /// cap memory; evictions are LRU and counted in the tier's
    /// [`CacheStats`]. An evicted `(scenario, kind)` retrains on its next
    /// request.
    pub predictor_capacity: usize,
    /// Capacity bound of the request queue; `0` (the default) is the
    /// legacy unbounded feed. With a bound, blocking submissions
    /// ([`CampaignServer::submit_sweep`]) wait for space while the
    /// non-blocking paths ([`CampaignServer::try_submit`]) refuse
    /// over-capacity work with [`SubmitError::Overloaded`].
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            batch: true,
            soa: true,
            workers: 0,
            curve_capacity: 0,
            predictor_capacity: 0,
            queue_capacity: 0,
        }
    }
}

impl ServerConfig {
    /// Config with an explicit worker count.
    pub fn with_workers(workers: usize) -> Self {
        ServerConfig { workers, ..ServerConfig::default() }
    }

    /// Builder-style batched-sweep toggle (`true` is the default; `false`
    /// is the serial A/B reference path).
    pub fn with_batch(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }

    /// Builder-style SoA cohort-path toggle (`true` is the default;
    /// `false` is the scalar A/B reference within the batched path).
    pub fn with_soa(mut self, soa: bool) -> Self {
        self.soa = soa;
        self
    }

    /// Builder-style curve-tier capacity override (`0` = unbounded).
    pub fn with_curve_capacity(mut self, curve_capacity: usize) -> Self {
        self.curve_capacity = curve_capacity;
        self
    }

    /// Builder-style predictor-tier capacity override (`0` = unbounded).
    pub fn with_predictor_capacity(mut self, predictor_capacity: usize) -> Self {
        self.predictor_capacity = predictor_capacity;
        self
    }

    /// Builder-style request-queue capacity override (`0` = unbounded).
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    }
}

/// A snapshot of the server's counters and shared-tier state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Worker-pool size.
    pub workers: usize,
    /// Requests accepted so far.
    pub submitted: u64,
    /// Responses delivered (or dropped by a departed client) so far.
    pub completed: u64,
    /// Hit/miss counters of the scenario-keyed market-pool tier.
    pub pool_cache: CacheStats,
    /// Hit/miss counters of the cross-request training-curve tier.
    pub curve_cache: CacheStats,
    /// Hit/miss counters of the `(scenario × kind)`-keyed trained-predictor
    /// tier (every miss is one full training run).
    pub predictor_cache: CacheStats,
    /// Hit/miss counters of the scenario-keyed price-spine tier (every
    /// miss builds one event spine over the scenario's pool).
    pub spine_cache: CacheStats,
    /// Distinct market scenarios currently resident.
    pub resident_pools: usize,
    /// Completed training curves currently resident.
    pub resident_curves: usize,
    /// Trained predictor sets currently resident.
    pub resident_predictors: usize,
    /// Price spines currently resident.
    pub resident_spines: usize,
    /// Revocation lookups answered by resident spines across every batched
    /// campaign — non-zero whenever the batched path actually ran (the CI
    /// sweep-throughput check asserts this).
    pub spine_queries: u64,
    /// Scenario-group sessions opened by the batched sweep path.
    pub batched_groups: u64,
    /// Cross-campaign lane-kernel passes executed by the SoA cohort path
    /// (zero when [`ServerConfig::soa`] is off or no transient campaign
    /// extrapolated).
    pub kernel_invocations: u64,
    /// Kernel lane slots processed, including padding up to the 8-wide
    /// chunk boundary; `lane_jobs / lane_slots` is the lane occupancy.
    pub lane_slots: u64,
    /// Jobs whose final-metric extrapolation ran through kernel lanes.
    pub lane_jobs: u64,
    /// Spot revocations absorbed across every completed campaign — the
    /// server-level view of how hostile the swept markets were.
    pub revocations: u64,
    /// Training steps rolled back across every completed campaign (grace
    /// windows too short, or checkpoints lost to injected faults).
    pub lost_steps: u64,
    /// Grace-window batch migrations executed across every completed
    /// campaign (non-zero only for policies overriding
    /// `assign_migrations`).
    pub migrations: u64,
    /// Configured request-queue capacity (`0` = unbounded).
    pub queue_capacity: u64,
    /// Requests currently queued and not yet picked up by a worker.
    pub queue_depth: u64,
    /// High-water mark of [`queue_depth`](Self::queue_depth) over the
    /// server's lifetime; with a bounded queue this never exceeds
    /// [`queue_capacity`](Self::queue_capacity).
    pub peak_queue_depth: u64,
    /// Requests refused by validation on the checked submission paths.
    pub rejected: u64,
    /// Non-blocking submissions refused because the bounded queue was at
    /// capacity ([`SubmitError::Overloaded`]).
    pub overloaded: u64,
    /// Requests whose deadline had passed when a worker dequeued them
    /// ([`WorkOutcome::Expired`]); their campaigns never ran.
    pub expired: u64,
    /// Responses completed after [`CampaignServer::begin_drain`] closed
    /// the intake (queued work flushed during a graceful shutdown).
    pub drained: u64,
}

/// Typed refusal from the non-blocking submission paths
/// ([`CampaignServer::try_submit`] /
/// [`CampaignServer::try_submit_sweep`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded request queue is at capacity; retry after backoff.
    Overloaded {
        /// The configured queue bound that was hit.
        capacity: usize,
    },
    /// The request failed [`CampaignRequest::validate`]; never queued.
    Rejected(String),
    /// The server is draining ([`CampaignServer::begin_drain`]) or torn
    /// down; no new work is accepted.
    Draining,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { capacity } => {
                write!(f, "request queue at capacity ({capacity})")
            }
            SubmitError::Rejected(reason) => write!(f, "invalid request: {reason}"),
            SubmitError::Draining => f.write_str("server is draining; not accepting work"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One unit of work's result on the deadline-aware submission paths.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkOutcome {
    /// The campaign ran; here is its response (boxed: a response is two
    /// orders of magnitude larger than the expired variant).
    Done(Box<CampaignResponse>),
    /// The request's deadline passed while it sat in the queue; the
    /// campaign was cancelled before starting.
    Expired {
        /// Id of the expired request.
        id: u64,
    },
}

/// The submission's reply lane: legacy plain responses, or
/// deadline-aware [`WorkOutcome`]s.
enum ReplyLane {
    Plain(Sender<CampaignResponse>),
    Outcome(Sender<WorkOutcome>),
}

/// What one queue slot carries: a lone request, or a same-scenario chunk
/// of a batched sweep (see [`ServerConfig::batch`]).
enum WorkPayload {
    /// One campaign (the non-batched and deadline-aware paths).
    Single(CampaignRequest),
    /// A same-scenario chunk of a sweep; the worker opens one
    /// [`GroupSession`](spottune_core::GroupSession) for the whole chunk.
    Group(Vec<CampaignRequest>),
}

impl WorkPayload {
    fn len(&self) -> usize {
        match self {
            WorkPayload::Single(_) => 1,
            WorkPayload::Group(reqs) => reqs.len(),
        }
    }
}

/// One queued unit of work: the payload, its optional queue deadline and
/// the submission's reply lane.
struct WorkItem {
    payload: WorkPayload,
    deadline: Option<Instant>,
    reply: ReplyLane,
}

/// Graceful-degradation counters accumulated from every completed
/// campaign's report (revocations absorbed, steps rolled back, batch
/// migrations executed).
#[derive(Debug, Default)]
struct DegradationCounters {
    revocations: AtomicU64,
    lost_steps: AtomicU64,
    migrations: AtomicU64,
}

/// Robustness counters shared between the submission paths, the workers
/// and [`CampaignServer::stats`].
#[derive(Debug, Default)]
struct QueueCounters {
    /// High-water mark of the queue depth, sampled right after every
    /// successful enqueue (depth only grows at enqueue, so the true
    /// maximum is always observed there).
    peak_depth: AtomicU64,
    rejected: AtomicU64,
    overloaded: AtomicU64,
    expired: AtomicU64,
    drained: AtomicU64,
    /// Set by [`CampaignServer::begin_drain`]; completions afterwards
    /// count as `drained`.
    draining: AtomicBool,
}

impl QueueCounters {
    fn note_enqueued(&self, depth_now: u64) {
        self.peak_depth.fetch_max(depth_now, Ordering::SeqCst);
    }
}

/// The long-running sharded campaign service.
///
/// Dropping the server disconnects the request queue and joins every
/// worker; in-flight campaigns finish first ([`CampaignServer::shutdown`]
/// does the same explicitly).
pub struct CampaignServer {
    /// `None` once draining/teardown has closed the intake. Behind a
    /// mutex so [`CampaignServer::begin_drain`] works from `&self`
    /// (shared with connection threads).
    req_tx: Mutex<Option<Sender<WorkItem>>>,
    /// Depth probe on the request queue: its `len()` is the live queue
    /// depth, and — for a bounded queue — can never exceed the capacity
    /// (the channel enforces the bound under its own lock). The extra
    /// receiver does not keep workers alive: they exit on sender
    /// disconnect, not receiver count.
    queue_probe: Receiver<WorkItem>,
    queue_capacity: usize,
    /// Whether sweeps ride the batched ([`WorkPayload::Group`]) path.
    batch: bool,
    workers: Vec<JoinHandle<()>>,
    pools: PoolCache,
    curves: CurveCache,
    predictors: PredictorCache,
    spines: SpineCache,
    /// Shared-tier batched executor the workers drive group items
    /// through; its counters feed the `batched_groups`/`spine_queries`
    /// stats.
    runner: BatchRunner,
    submitted: AtomicU64,
    completed: Arc<AtomicU64>,
    degradation: Arc<DegradationCounters>,
    queue: Arc<QueueCounters>,
}

impl CampaignServer {
    /// Spawns the worker pool with fresh, server-private cache tiers (the
    /// curve and predictor tiers honour [`ServerConfig::curve_capacity`]
    /// and [`ServerConfig::predictor_capacity`]).
    pub fn start(config: ServerConfig) -> Self {
        CampaignServer::start_with_tiers(
            config,
            PoolCache::new(),
            CurveCache::with_capacity(config.curve_capacity),
            PredictorCache::with_capacity(config.predictor_capacity),
        )
    }

    /// Spawns the worker pool against caller-provided tiers — e.g.
    /// [`CurveCache::global`] to share curves with non-server work in the
    /// same process, or tiers handed from a previous server instance to
    /// carry warm state (resident pools, curves and trained predictors)
    /// across restarts.
    pub fn start_with_tiers(
        config: ServerConfig,
        pools: PoolCache,
        curves: CurveCache,
        predictors: PredictorCache,
    ) -> Self {
        let workers = config.resolved_workers();
        let (req_tx, req_rx) = if config.queue_capacity > 0 {
            channel::bounded::<WorkItem>(config.queue_capacity)
        } else {
            channel::unbounded::<WorkItem>()
        };
        let spines = SpineCache::new();
        let runner = BatchRunner::new()
            .with_soa(config.soa)
            .with_tiers(
                pools.clone(),
                spines.clone(),
                curves.clone(),
                predictors.clone(),
            );
        let completed = Arc::new(AtomicU64::new(0));
        let degradation = Arc::new(DegradationCounters::default());
        let queue = Arc::new(QueueCounters::default());
        let shared = WorkerShared {
            runner: runner.clone(),
            pools: pools.clone(),
            curves: curves.clone(),
            predictors: predictors.clone(),
            completed: Arc::clone(&completed),
            degradation: Arc::clone(&degradation),
            queue: Arc::clone(&queue),
        };
        let handles = (0..workers)
            .map(|i| {
                let rx = req_rx.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("campaign-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .expect("spawn campaign worker")
            })
            .collect();
        CampaignServer {
            req_tx: Mutex::new(Some(req_tx)),
            queue_probe: req_rx,
            queue_capacity: config.queue_capacity,
            batch: config.batch,
            workers: handles,
            pools,
            curves,
            predictors,
            spines,
            runner,
            submitted: AtomicU64::new(0),
            completed,
            degradation,
            queue,
        }
    }

    /// Clones the intake sender, or `None` once draining/teardown has
    /// closed it. (Poisoning cannot outlive this lock: no holder panics
    /// while it is held.)
    fn intake(&self) -> Option<Sender<WorkItem>> {
        self.req_tx.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Submits one campaign; the returned receiver yields its single
    /// response.
    pub fn submit(&self, request: CampaignRequest) -> Receiver<CampaignResponse> {
        self.submit_sweep(vec![request])
    }

    /// Validating variant of [`CampaignServer::submit`]: a malformed
    /// request (NaN θ, empty grid, zero-length scenario, bad estimator
    /// spec) is rejected here with its reason instead of being queued to
    /// panic inside a worker.
    pub fn submit_checked(
        &self,
        request: CampaignRequest,
    ) -> Result<Receiver<CampaignResponse>, String> {
        self.submit_sweep_checked(vec![request])
    }

    /// Submits a sweep; the returned receiver streams one response per
    /// request in **completion** order and disconnects after the last one.
    ///
    /// Responses echo [`CampaignRequest::id`], so a client that needs
    /// submission order sorts by id on its side (see
    /// [`CampaignServer::run_sweep`]).
    ///
    /// Untrusted (wire-decoded) requests should go through
    /// [`CampaignServer::submit_sweep_checked`] instead: this path queues
    /// whatever it is given, and a request that fails engine validation
    /// panics its campaign, shortening the stream by one response.
    pub fn submit_sweep(&self, requests: Vec<CampaignRequest>) -> Receiver<CampaignResponse> {
        let (reply_tx, reply_rx) = channel::unbounded();
        // `req_tx` is `None` mid-drain or mid-teardown; a send fails only
        // if every worker is gone. Neither is a reason to panic the
        // *client* thread: an unqueued request simply never answers, which
        // the stream reports by disconnecting short (same contract as a
        // panicked campaign).
        let Some(req_tx) = self.intake() else {
            return reply_rx;
        };
        self.submitted.fetch_add(requests.len() as u64, Ordering::Relaxed);
        if self.batch {
            // Batched path: group by scenario, chunk each group so the
            // sweep still shards across the pool (≈4 chunks per worker),
            // and enqueue whole chunks. A worker resolves each chunk's
            // pool/spine/predictors once and reuses one engine scratch
            // across it — bit-identical to the serial path below (locked
            // by the core batch_equivalence suite).
            let chunk = requests.len().div_ceil(self.workers.len().max(1) * 4).max(1);
            let mut groups: BTreeMap<MarketScenario, Vec<CampaignRequest>> = BTreeMap::new();
            for request in requests {
                groups.entry(request.scenario).or_default().push(request);
            }
            'groups: for (_, mut group) in groups {
                while !group.is_empty() {
                    let rest = group.split_off(group.len().min(chunk));
                    let batch = std::mem::replace(&mut group, rest);
                    let item = WorkItem {
                        payload: WorkPayload::Group(batch),
                        deadline: None,
                        reply: ReplyLane::Plain(reply_tx.clone()),
                    };
                    if req_tx.send(item).is_err() {
                        break 'groups;
                    }
                    self.queue.note_enqueued(self.queue_probe.len() as u64);
                }
            }
        } else {
            for request in requests {
                let item = WorkItem {
                    payload: WorkPayload::Single(request),
                    deadline: None,
                    reply: ReplyLane::Plain(reply_tx.clone()),
                };
                if req_tx.send(item).is_err() {
                    break;
                }
                self.queue.note_enqueued(self.queue_probe.len() as u64);
            }
        }
        // Workers hold the only remaining clones: the stream disconnects
        // exactly when the sweep's last response has been sent.
        drop(reply_tx);
        reply_rx
    }

    /// Non-blocking, deadline-aware submission of one campaign: the
    /// backpressure path the TCP front-end rides on.
    ///
    /// The request is validated first ([`SubmitError::Rejected`]); a
    /// draining or torn-down server refuses it
    /// ([`SubmitError::Draining`]); a bounded queue at capacity refuses
    /// it immediately ([`SubmitError::Overloaded`]) instead of blocking.
    /// On success the receiver yields exactly one [`WorkOutcome`]:
    /// [`WorkOutcome::Done`] with the response, or
    /// [`WorkOutcome::Expired`] if `deadline` passed before a worker
    /// picked the request up (the campaign is cancelled, never run).
    pub fn try_submit(
        &self,
        request: CampaignRequest,
        deadline: Option<Instant>,
    ) -> Result<Receiver<WorkOutcome>, SubmitError> {
        if let Err(reason) = request.validate() {
            self.queue.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::Rejected(reason));
        }
        let Some(req_tx) = self.intake() else {
            return Err(SubmitError::Draining);
        };
        let (reply_tx, reply_rx) = channel::unbounded();
        let item = WorkItem {
            payload: WorkPayload::Single(request),
            deadline,
            reply: ReplyLane::Outcome(reply_tx),
        };
        match req_tx.try_send(item) {
            Ok(()) => {
                self.queue.note_enqueued(self.queue_probe.len() as u64);
                self.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(reply_rx)
            }
            Err(TrySendError::Full(_)) => {
                self.queue.overloaded.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::Overloaded { capacity: self.queue_capacity })
            }
            Err(TrySendError::Disconnected(_)) => Err(SubmitError::Draining),
        }
    }

    /// Sweep variant of [`CampaignServer::try_submit`]: all requests are
    /// validated up front (all-or-nothing, like
    /// [`CampaignServer::submit_sweep_checked`]) and each is then offered
    /// to the queue non-blockingly. If the queue fills mid-sweep the
    /// remainder is refused with [`SubmitError::Overloaded`] — but the
    /// already-queued prefix still runs and streams its outcomes on the
    /// receiver paired with the error, so no accepted work is lost.
    #[allow(clippy::type_complexity)]
    pub fn try_submit_sweep(
        &self,
        requests: Vec<CampaignRequest>,
        deadline: Option<Instant>,
    ) -> (Receiver<WorkOutcome>, Result<usize, SubmitError>) {
        let (reply_tx, reply_rx) = channel::unbounded();
        for request in &requests {
            if let Err(reason) = request.validate() {
                self.queue.rejected.fetch_add(1, Ordering::Relaxed);
                let reason = format!("request {}: {reason}", request.id);
                return (reply_rx, Err(SubmitError::Rejected(reason)));
            }
        }
        let Some(req_tx) = self.intake() else {
            return (reply_rx, Err(SubmitError::Draining));
        };
        let mut queued = 0usize;
        for request in requests {
            let item = WorkItem {
                payload: WorkPayload::Single(request),
                deadline,
                reply: ReplyLane::Outcome(reply_tx.clone()),
            };
            match req_tx.try_send(item) {
                Ok(()) => {
                    self.queue.note_enqueued(self.queue_probe.len() as u64);
                    queued += 1;
                }
                Err(TrySendError::Full(_)) => {
                    self.queue.overloaded.fetch_add(1, Ordering::Relaxed);
                    self.submitted.fetch_add(queued as u64, Ordering::Relaxed);
                    drop(reply_tx);
                    return (
                        reply_rx,
                        Err(SubmitError::Overloaded { capacity: self.queue_capacity }),
                    );
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.submitted.fetch_add(queued as u64, Ordering::Relaxed);
                    drop(reply_tx);
                    return (reply_rx, Err(SubmitError::Draining));
                }
            }
        }
        self.submitted.fetch_add(queued as u64, Ordering::Relaxed);
        drop(reply_tx);
        (reply_rx, Ok(queued))
    }

    /// Validating variant of [`CampaignServer::submit_sweep`]: every
    /// request is checked ([`CampaignRequest::validate`]) before anything
    /// is queued, so a malformed submission yields an error naming the
    /// offending request instead of a worker panic and a silently
    /// shortened response stream. All-or-nothing: one bad request rejects
    /// the whole sweep.
    pub fn submit_sweep_checked(
        &self,
        requests: Vec<CampaignRequest>,
    ) -> Result<Receiver<CampaignResponse>, String> {
        for request in &requests {
            if let Err(reason) = request.validate() {
                self.queue.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(format!("request {}: {reason}", request.id));
            }
        }
        Ok(self.submit_sweep(requests))
    }

    /// Blocking convenience: runs a sweep and returns the responses in
    /// *request* order.
    ///
    /// # Panics
    ///
    /// Panics if request ids are not unique within the sweep, or if a
    /// response went missing (its campaign panicked).
    pub fn run_sweep(&self, requests: Vec<CampaignRequest>) -> Vec<CampaignResponse> {
        let order: std::collections::HashMap<u64, usize> = requests
            .iter()
            .enumerate()
            .map(|(pos, r)| (r.id, pos))
            .collect();
        assert_eq!(order.len(), requests.len(), "sweep request ids must be unique");
        let expected = requests.len();
        let mut responses: Vec<Option<CampaignResponse>> = (0..expected).map(|_| None).collect();
        for response in self.submit_sweep(requests) {
            let pos = order[&response.id];
            responses[pos] = Some(response);
        }
        responses
            .into_iter()
            .map(|r| r.expect("every sweep request must produce a response"))
            .collect()
    }

    /// Handle to the scenario-keyed market-pool tier.
    pub fn pool_cache(&self) -> &PoolCache {
        &self.pools
    }

    /// Handle to the cross-request curve-memo tier.
    pub fn curve_cache(&self) -> &CurveCache {
        &self.curves
    }

    /// Handle to the `(scenario × kind)`-keyed trained-predictor tier.
    pub fn predictor_cache(&self) -> &PredictorCache {
        &self.predictors
    }

    /// Handle to the scenario-keyed price-spine tier.
    pub fn spine_cache(&self) -> &SpineCache {
        &self.spines
    }

    /// Counters and shared-tier state.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            workers: self.workers.len(),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            pool_cache: self.pools.stats(),
            curve_cache: self.curves.stats(),
            predictor_cache: self.predictors.stats(),
            spine_cache: self.spines.stats(),
            resident_pools: self.pools.len(),
            resident_curves: self.curves.len(),
            resident_predictors: self.predictors.len(),
            resident_spines: self.spines.len(),
            spine_queries: self.spines.resident_queries(),
            batched_groups: self.runner.stats().groups,
            kernel_invocations: self.runner.stats().kernel_invocations,
            lane_slots: self.runner.stats().lane_slots,
            lane_jobs: self.runner.stats().lane_jobs,
            revocations: self.degradation.revocations.load(Ordering::Relaxed),
            lost_steps: self.degradation.lost_steps.load(Ordering::Relaxed),
            migrations: self.degradation.migrations.load(Ordering::Relaxed),
            queue_capacity: self.queue_capacity as u64,
            queue_depth: self.queue_probe.len() as u64,
            peak_queue_depth: self.queue.peak_depth.load(Ordering::SeqCst),
            rejected: self.queue.rejected.load(Ordering::Relaxed),
            overloaded: self.queue.overloaded.load(Ordering::Relaxed),
            expired: self.queue.expired.load(Ordering::Relaxed),
            drained: self.queue.drained.load(Ordering::Relaxed),
        }
    }

    /// Whether [`CampaignServer::begin_drain`] has closed the intake.
    pub fn is_draining(&self) -> bool {
        self.queue.draining.load(Ordering::SeqCst)
    }

    /// Starts a graceful drain from a shared reference: closes the
    /// intake (later submissions observe [`SubmitError::Draining`] /
    /// an immediately-disconnected stream) while already-queued requests
    /// keep running and streaming their responses. Workers exit once the
    /// queue is empty; [`CampaignServer::shutdown`] (or `Drop`) then
    /// joins them. Idempotent.
    pub fn begin_drain(&self) {
        self.queue.draining.store(true, Ordering::SeqCst);
        drop(self.req_tx.lock().unwrap_or_else(|e| e.into_inner()).take());
    }

    /// Finishes in-flight campaigns, then stops and joins every worker.
    pub fn shutdown(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        self.begin_drain();
        for handle in self.workers.drain(..) {
            // Propagate a worker panic — unless we are already unwinding
            // (Drop during a client panic), where a second panic would
            // abort the process and mask the original error.
            if handle.join().is_err() && !std::thread::panicking() {
                panic!("campaign worker panicked");
            }
        }
    }
}

impl Drop for CampaignServer {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.finish();
        }
    }
}

/// The resident worker body: pull a request, resolve its pool through the
/// shared tier, resolve its estimator (learned specs go through the
/// trained-predictor tier, so each `(scenario, kind)` trains at most
/// once), run the campaign against the shared curve memo, stream the
/// response back on the submission's reply lane.
///
/// Campaign panics (a malformed wire request — NaN θ, empty grid — hitting
/// a validation assert) are confined to the request: the worker drops that
/// response and lives on to serve the rest of the queue. Letting the
/// worker die instead would strand every queued request holding a reply
/// lane, hanging their clients forever.
fn worker_loop(rx: &Receiver<WorkItem>, shared: &WorkerShared) {
    let WorkerShared { runner, pools, curves, predictors, completed, degradation, queue } =
        shared;
    while let Ok(WorkItem { payload, deadline, reply }) = rx.recv() {
        // Deadline check happens at dequeue: an expired payload is
        // cancelled before any of its campaigns start.
        if let Some(deadline) = deadline {
            if Instant::now() > deadline {
                queue.expired.fetch_add(payload.len() as u64, Ordering::Relaxed);
                if let ReplyLane::Outcome(tx) = &reply {
                    match &payload {
                        WorkPayload::Single(request) => {
                            let _ = tx.send(WorkOutcome::Expired { id: request.id });
                        }
                        WorkPayload::Group(requests) => {
                            for request in requests {
                                let _ = tx.send(WorkOutcome::Expired { id: request.id });
                            }
                        }
                    }
                }
                continue;
            }
        }
        match payload {
            WorkPayload::Single(request) => {
                let id = request.id;
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let pool = pools.get(request.scenario);
                    let campaign = request.campaign();
                    match PredictorKind::from_spec(&request.estimator) {
                        Some(kind) => {
                            let trained = predictors.get(kind, request.scenario, &pool);
                            campaign.run_with_estimator(&pool, curves, trained.as_ref())
                        }
                        None => campaign.run_with_cache(&pool, curves),
                    }
                }));
                settle_outcome(id, outcome, &reply, completed, degradation, queue);
            }
            WorkPayload::Group(requests) => {
                let Some(first) = requests.first() else {
                    continue;
                };
                // One session for the whole chunk: pool and spine
                // resolved once, estimators and SPE tables memoized,
                // engine scratch reused across every campaign.
                let mut session = runner.session(first.scenario);
                if runner.soa() {
                    // SoA hot path: the chunk runs in lane cohorts. A
                    // panicking campaign aborts its whole cohort mid-
                    // barrier, so the cohort falls back to the scalar
                    // per-campaign loop — panics re-confine to the one
                    // poisoned request, its cohort-mates still report.
                    for cohort in requests.chunks(spottune_core::COHORT_WIDTH) {
                        let refs: Vec<&CampaignRequest> = cohort.iter().collect();
                        let outcome = std::panic::catch_unwind(
                            std::panic::AssertUnwindSafe(|| session.run_cohort(&refs)),
                        );
                        match outcome {
                            Ok(reports) => {
                                for (request, report) in cohort.iter().zip(reports) {
                                    settle_outcome(
                                        request.id,
                                        Ok(report),
                                        &reply,
                                        completed,
                                        degradation,
                                        queue,
                                    );
                                }
                            }
                            Err(_) => {
                                for request in cohort {
                                    let outcome = std::panic::catch_unwind(
                                        std::panic::AssertUnwindSafe(|| {
                                            session.run_one(request)
                                        }),
                                    );
                                    settle_outcome(
                                        request.id,
                                        outcome,
                                        &reply,
                                        completed,
                                        degradation,
                                        queue,
                                    );
                                }
                            }
                        }
                    }
                } else {
                    for request in &requests {
                        // Panics stay confined to one campaign: the
                        // session's scratch is fully re-prepared on the
                        // next run, so a poisoned request never taints
                        // its chunk-mates.
                        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || session.run_one(request),
                        ));
                        settle_outcome(request.id, outcome, &reply, completed, degradation, queue);
                    }
                }
            }
        }
    }
}

/// Everything a worker thread shares with its siblings: the tier handles
/// it resolves requests through and the server-wide counters it folds
/// results into. Cloning is cheap — every field is a handle.
#[derive(Clone)]
struct WorkerShared {
    runner: BatchRunner,
    pools: PoolCache,
    curves: CurveCache,
    predictors: PredictorCache,
    completed: Arc<AtomicU64>,
    degradation: Arc<DegradationCounters>,
    queue: Arc<QueueCounters>,
}

/// Folds one campaign's result into the server counters and streams the
/// response (or drops it on a panic) — shared by the single and batched
/// worker paths.
fn settle_outcome(
    id: u64,
    outcome: std::thread::Result<spottune_core::HptReport>,
    reply: &ReplyLane,
    completed: &AtomicU64,
    degradation: &DegradationCounters,
    queue: &QueueCounters,
) {
    match outcome {
        Ok(report) => {
            completed.fetch_add(1, Ordering::Relaxed);
            if queue.draining.load(Ordering::SeqCst) {
                queue.drained.fetch_add(1, Ordering::Relaxed);
            }
            degradation.revocations.fetch_add(report.revocations, Ordering::Relaxed);
            degradation.lost_steps.fetch_add(report.lost_steps, Ordering::Relaxed);
            degradation.migrations.fetch_add(report.migrations, Ordering::Relaxed);
            // A client that dropped its receiver no longer wants the
            // report; that is not a server error.
            let response = CampaignResponse { id, report };
            match reply {
                ReplyLane::Plain(tx) => {
                    let _ = tx.send(response);
                }
                ReplyLane::Outcome(tx) => {
                    let _ = tx.send(WorkOutcome::Done(Box::new(response)));
                }
            }
        }
        // The panic message has already been printed by the default
        // hook; withholding the response shortens the sweep's stream by
        // one, which streaming clients observe as a missing id and
        // `run_sweep` reports by panicking.
        Err(_) => eprintln!("campaign request {id} panicked; dropping its response"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_core::{Approach, SingleSpotKind};
    use spottune_market::{EstimatorSpec, MarketScenario};
    use spottune_mlsim::{Algorithm, Workload};

    fn tiny_workload() -> Workload {
        let base = Workload::benchmark(Algorithm::LoR);
        Workload::custom(Algorithm::LoR, 25, base.hp_grid()[..2].to_vec())
    }

    fn request(id: u64) -> CampaignRequest {
        CampaignRequest {
            id,
            approach: Approach::SingleSpot(SingleSpotKind::Cheapest),
            workload: tiny_workload(),
            scenario: MarketScenario::from_days(1, 5),
            seed: id,
            estimator: EstimatorSpec::default(),
        }
    }

    #[test]
    fn single_submission_round_trips() {
        let server = CampaignServer::start(ServerConfig::with_workers(2));
        let rx = server.submit(request(7));
        let response = rx.recv().expect("one response");
        assert_eq!(response.id, 7);
        assert!(response.report.cost > 0.0);
        // Stream disconnects after the single response.
        assert!(rx.recv().is_err());
        let stats = server.stats();
        assert_eq!((stats.submitted, stats.completed), (1, 1));
        server.shutdown();
    }

    #[test]
    fn sweep_streams_every_response_and_shares_pools() {
        let server = CampaignServer::start(ServerConfig::with_workers(4));
        let requests: Vec<CampaignRequest> = (0..12).map(request).collect();
        let mut ids: Vec<u64> = server.submit_sweep(requests).iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
        let stats = server.stats();
        // One scenario, twelve campaigns: eleven pool-tier hits.
        assert_eq!(stats.resident_pools, 1);
        assert_eq!(stats.pool_cache.hits, 11);
        assert_eq!(stats.pool_cache.misses, 1);
        assert_eq!(stats.workers, 4);
        server.shutdown();
    }

    #[test]
    fn run_sweep_restores_request_order() {
        let server = CampaignServer::start(ServerConfig::with_workers(3));
        // Scrambled, non-contiguous ids.
        let requests: Vec<CampaignRequest> = [5u64, 1, 9, 3].into_iter().map(request).collect();
        let responses = server.run_sweep(requests);
        let ids: Vec<u64> = responses.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![5, 1, 9, 3]);
        server.shutdown();
    }

    #[test]
    fn dropped_client_does_not_wedge_the_server() {
        let server = CampaignServer::start(ServerConfig::with_workers(1));
        drop(server.submit(request(1)));
        // The next submission still answers.
        let response = server.submit(request(2)).recv().expect("second response");
        assert_eq!(response.id, 2);
        server.shutdown();
    }

    #[test]
    #[should_panic(expected = "ids must be unique")]
    fn duplicate_sweep_ids_rejected() {
        let server = CampaignServer::start(ServerConfig::with_workers(1));
        let _ = server.run_sweep(vec![request(1), request(1)]);
    }

    #[test]
    fn predictor_tier_trains_once_for_a_shared_scenario() {
        let server = CampaignServer::start(ServerConfig::with_workers(2));
        // Two learned-spec requests over the same scenario: one training,
        // one tier hit. (Logistic is the cheap family; the LSTM kinds go
        // through exactly the same tier path.)
        let mut requests: Vec<CampaignRequest> = (0..2).map(request).collect();
        for req in &mut requests {
            req.approach = Approach::SpotTune { theta: 0.7 };
            req.estimator = EstimatorSpec::Logistic;
        }
        let responses = server.run_sweep(requests);
        assert_eq!(responses.len(), 2);
        let stats = server.stats();
        assert_eq!(stats.predictor_cache.misses, 1, "{:?}", stats.predictor_cache);
        assert!(stats.predictor_cache.hits > 0, "{:?}", stats.predictor_cache);
        assert_eq!(stats.resident_predictors, 1);
        // Oracle campaigns never touch the tier.
        server.run_sweep(vec![request(9)]);
        assert_eq!(server.stats().predictor_cache.lookups(), 2);
        server.shutdown();
    }

    #[test]
    fn bounded_predictor_tier_evicts_across_a_scenario_sweep() {
        let server = CampaignServer::start(
            ServerConfig::with_workers(1).with_predictor_capacity(1),
        );
        // Three distinct scenarios through a capacity-1 tier: every
        // training displaces the previous resident.
        let mut requests: Vec<CampaignRequest> = (0..3).map(request).collect();
        for (i, req) in requests.iter_mut().enumerate() {
            req.approach = Approach::SpotTune { theta: 0.7 };
            req.estimator = EstimatorSpec::Logistic;
            req.scenario = MarketScenario::from_days(1, 100 + i as u64);
        }
        let responses = server.run_sweep(requests);
        assert_eq!(responses.len(), 3);
        let stats = server.stats();
        assert_eq!(stats.predictor_cache.misses, 3, "{:?}", stats.predictor_cache);
        assert_eq!(stats.predictor_cache.evictions, 2, "{:?}", stats.predictor_cache);
        assert_eq!(stats.resident_predictors, 1);
        server.shutdown();
    }

    #[test]
    fn stats_sum_degradation_counters_over_completed_reports() {
        let server = CampaignServer::start(ServerConfig::with_workers(2));
        // Long enough campaigns on spot capacity to see real revocations.
        let mut requests: Vec<CampaignRequest> = (0..6).map(request).collect();
        for req in &mut requests {
            req.approach = Approach::SpotTune { theta: 0.7 };
            req.workload = Workload::custom(
                Algorithm::LoR,
                60,
                Workload::benchmark(Algorithm::LoR).hp_grid()[..2].to_vec(),
            );
        }
        let responses = server.run_sweep(requests);
        let expected: u64 = responses.iter().map(|r| r.report.revocations).sum();
        let stats = server.stats();
        assert_eq!(stats.revocations, expected, "server counter must equal the report sum");
        // Default hooks never roll back or batch-migrate (the fault-free
        // bit-identity invariant, observed at the server boundary).
        assert_eq!((stats.lost_steps, stats.migrations), (0, 0));
        server.shutdown();
    }

    #[test]
    fn malformed_request_is_rejected_before_queueing() {
        let server = CampaignServer::start(ServerConfig::with_workers(1));
        // NaN θ straight off the wire: rejected with its reason, nothing
        // queued, nothing panicked.
        let mut poisoned = request(0);
        poisoned.approach = Approach::SpotTune { theta: f64::NAN };
        let err = server.submit_checked(poisoned).err().expect("NaN theta must be rejected");
        assert!(err.contains("theta"), "{err}");
        // A zero-length scenario is just as undecodable-into-work.
        let mut empty = request(1);
        empty.scenario = MarketScenario::from_days(0, 1);
        assert!(server.submit_checked(empty).is_err());
        // One bad request rejects the whole sweep before queueing any of it.
        let mut bad = request(3);
        bad.approach = Approach::SpotTune { theta: -0.5 };
        assert!(server.submit_sweep_checked(vec![request(2), bad]).is_err());
        assert_eq!(server.stats().submitted, 0, "rejected requests are never queued");
        // The same server still serves healthy submissions.
        let rx = server.submit_checked(request(4)).expect("valid request passes");
        assert_eq!(rx.recv().expect("one response").id, 4);
        server.shutdown();
    }

    #[test]
    fn try_submit_overload_is_typed_and_depth_stays_bounded() {
        let server = CampaignServer::start(
            ServerConfig::with_workers(1).with_queue_capacity(1),
        );
        let mut receivers = Vec::new();
        let mut saw_overload = false;
        // Submissions are orders of magnitude faster than campaigns: a
        // single worker behind a capacity-1 queue must refuse one of the
        // first few hundred.
        for i in 0..500 {
            match server.try_submit(request(i), None) {
                Ok(rx) => receivers.push(rx),
                Err(SubmitError::Overloaded { capacity }) => {
                    assert_eq!(capacity, 1);
                    saw_overload = true;
                    break;
                }
                Err(other) => panic!("unexpected submit error: {other:?}"),
            }
        }
        assert!(saw_overload, "bounded queue never reported Overloaded");
        // Every accepted request still answers.
        for rx in receivers {
            assert!(matches!(rx.recv(), Ok(WorkOutcome::Done(_))));
        }
        let stats = server.stats();
        assert_eq!(stats.queue_capacity, 1);
        assert!(stats.overloaded >= 1, "{stats:?}");
        assert!(
            stats.peak_queue_depth <= stats.queue_capacity,
            "queue depth {} exceeded capacity {}",
            stats.peak_queue_depth,
            stats.queue_capacity
        );
        server.shutdown();
    }

    #[test]
    fn expired_deadline_cancels_queued_work() {
        let server = CampaignServer::start(ServerConfig::with_workers(1));
        // A deadline already in the past expires at dequeue no matter how
        // fast the worker is; the campaign never runs.
        let already_late = Instant::now() - std::time::Duration::from_millis(1);
        let rx = server.try_submit(request(3), Some(already_late)).expect("queued");
        assert_eq!(rx.recv(), Ok(WorkOutcome::Expired { id: 3 }));
        assert!(rx.recv().is_err(), "outcome stream closes after the verdict");
        let stats = server.stats();
        assert_eq!(stats.expired, 1);
        assert_eq!(stats.completed, 0, "expired work must not run");
        // A generous deadline passes through untouched.
        let soon = Instant::now() + std::time::Duration::from_secs(600);
        let rx = server.try_submit(request(4), Some(soon)).expect("queued");
        assert!(matches!(rx.recv(), Ok(WorkOutcome::Done(r)) if r.id == 4));
        server.shutdown();
    }

    #[test]
    fn invalid_try_submit_is_rejected_with_reason() {
        let server = CampaignServer::start(ServerConfig::with_workers(1));
        let mut poisoned = request(0);
        poisoned.approach = Approach::SpotTune { theta: f64::NAN };
        match server.try_submit(poisoned, None).err() {
            Some(SubmitError::Rejected(reason)) => assert!(reason.contains("theta"), "{reason}"),
            other => panic!("expected Rejected, got {other:?}"),
        }
        assert_eq!(server.stats().rejected, 1);
        server.shutdown();
    }

    #[test]
    fn begin_drain_refuses_new_work_but_flushes_queued() {
        let server = CampaignServer::start(ServerConfig::with_workers(1));
        let in_flight = server.submit_sweep((0..3).map(request).collect());
        server.begin_drain();
        assert!(server.is_draining());
        // New work is refused with the typed error...
        assert!(matches!(server.try_submit(request(9), None), Err(SubmitError::Draining)));
        // ...and the legacy path disconnects immediately instead of
        // hanging the client.
        let refused = server.submit_sweep(vec![request(10)]);
        assert!(refused.recv().is_err(), "draining submit_sweep must disconnect, not hang");
        // Work queued before the drain still streams every response.
        let mut ids: Vec<u64> = in_flight.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2]);
        let stats = server.stats();
        assert_eq!(stats.completed, 3);
        assert!(stats.drained <= 3, "{stats:?}");
        assert_eq!(stats.queue_depth, 0);
        server.shutdown();
    }

    #[test]
    fn draining_try_submit_sweep_returns_typed_error_and_empty_stream() {
        let server = CampaignServer::start(ServerConfig::with_workers(1));
        server.begin_drain();
        let (rx, verdict) = server.try_submit_sweep((0..4).map(request).collect(), None);
        assert_eq!(verdict, Err(SubmitError::Draining));
        // The paired stream disconnects at once: partial results (none
        // here) plus a typed error, never a hang.
        assert!(rx.recv().is_err());
        server.shutdown();
    }

    #[test]
    fn overloaded_try_submit_sweep_still_streams_accepted_prefix() {
        let server = CampaignServer::start(
            ServerConfig::with_workers(1).with_queue_capacity(2),
        );
        let (rx, verdict) = server.try_submit_sweep((0..200).map(request).collect(), None);
        match verdict {
            Err(SubmitError::Overloaded { capacity }) => assert_eq!(capacity, 2),
            other => panic!("a 200-request burst into a capacity-2 queue must overload: {other:?}"),
        }
        // The accepted prefix runs to completion and the stream then
        // closes — partial results plus the typed error above.
        let done: Vec<WorkOutcome> = rx.iter().collect();
        let count = done.len();
        assert!((1..200).contains(&count), "expected a partial prefix, got {count}");
        assert!(done.iter().all(|o| matches!(o, WorkOutcome::Done(_))));
        server.shutdown();
    }

    #[test]
    fn panicking_campaign_does_not_strand_queued_requests() {
        let server = CampaignServer::start(ServerConfig::with_workers(1));
        // NaN θ fails SpotTuneConfig validation inside the campaign; with a
        // single worker the two healthy requests sit queued behind it.
        let mut poisoned = request(0);
        poisoned.approach = Approach::SpotTune { theta: f64::NAN };
        let mut ids: Vec<u64> = server
            .submit_sweep(vec![poisoned, request(1), request(2)])
            .iter()
            .map(|r| r.id)
            .collect();
        ids.sort_unstable();
        // The stream terminates (no hang), one response short.
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(server.stats().completed, 2);
        server.shutdown();
    }
}
