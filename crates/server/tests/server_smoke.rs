//! CI smoke: spawn the server, submit a 32-campaign sweep, assert every
//! report arrives (the job `.github/workflows/ci.yml` runs by name).

use spottune_core::prelude::*;
use spottune_market::{EstimatorSpec, MarketScenario};
use spottune_mlsim::prelude::*;
use spottune_server::{CampaignServer, ServerConfig};

#[test]
fn smoke_32_campaign_sweep_all_reports_arrive() {
    let base = Workload::benchmark(Algorithm::LoR);
    let workload = Workload::custom(Algorithm::LoR, 20, base.hp_grid()[..2].to_vec());
    let scenario = MarketScenario::from_days(1, 9);
    let requests: Vec<CampaignRequest> = (0..32u64)
        .map(|i| CampaignRequest {
            id: i,
            approach: if i % 4 == 0 {
                Approach::SingleSpot(SingleSpotKind::Cheapest)
            } else {
                Approach::SpotTune { theta: 0.7 }
            },
            workload: workload.clone(),
            scenario,
            seed: i / 4,
            estimator: EstimatorSpec::default(),
        })
        .collect();

    let server = CampaignServer::start(ServerConfig::with_workers(4));
    let mut seen = [false; 32];
    let mut count = 0usize;
    for response in server.submit_sweep(requests) {
        assert!(!seen[response.id as usize], "duplicate response {}", response.id);
        seen[response.id as usize] = true;
        count += 1;
        assert!(response.report.cost > 0.0, "campaign {} reported no cost", response.id);
        assert_eq!(response.report.predicted_finals.len(), 2);
    }
    assert_eq!(count, 32, "all 32 reports must arrive");
    assert!(seen.iter().all(|&s| s));
    let stats = server.stats();
    assert_eq!((stats.submitted, stats.completed), (32, 32));
    assert!(stats.curve_cache.hit_rate() > 0.0, "{:?}", stats.curve_cache);
    server.shutdown();
}
