//! The server's core guarantee (ISSUE 2 acceptance): a 1 000-campaign
//! sweep through the sharded worker pool produces **bit-identical**
//! [`HptReport`]s to running every campaign serially at the same seeds —
//! shared tiers and completion-order scheduling change wall-clock, never
//! results — and the cross-request curve-memo tier actually gets hits.

use spottune_core::prelude::*;
use spottune_market::{EstimatorSpec, MarketScenario};
use spottune_mlsim::prelude::*;
use spottune_server::{CampaignServer, ServerConfig};

fn tiny(algorithm: Algorithm, steps: u64) -> Workload {
    let base = Workload::benchmark(algorithm);
    Workload::custom(algorithm, steps, base.hp_grid()[..2].to_vec())
}

/// workload × approach × market scenario × seed, 1 000 points total.
fn sweep_requests() -> Vec<CampaignRequest> {
    let workloads = [tiny(Algorithm::LoR, 15), tiny(Algorithm::Gbtr, 12)];
    let approaches = [
        Approach::SpotTune { theta: 0.5 },
        Approach::SpotTune { theta: 0.7 },
        Approach::SpotTune { theta: 1.0 },
        Approach::SingleSpot(SingleSpotKind::Cheapest),
        Approach::SingleSpot(SingleSpotKind::Fastest),
    ];
    let scenarios = [MarketScenario::from_days(1, 42), MarketScenario::from_days(1, 77)];
    let mut requests = Vec::new();
    for seed in 0..50u64 {
        for workload in &workloads {
            for &approach in &approaches {
                for &scenario in &scenarios {
                    requests.push(CampaignRequest {
                        id: requests.len() as u64,
                        approach,
                        workload: workload.clone(),
                        scenario,
                        seed,
                        estimator: EstimatorSpec::default(),
                    });
                }
            }
        }
    }
    requests
}

#[test]
fn sweep_1000_is_bit_identical_to_serial_with_memo_hits() {
    let requests = sweep_requests();
    assert_eq!(requests.len(), 1000);

    let server = CampaignServer::start(ServerConfig::default());
    let responses = server.run_sweep(requests.clone());
    let stats = server.stats();
    server.shutdown();

    assert_eq!(stats.completed, 1000);
    // Two scenarios serve a thousand campaigns.
    assert_eq!(stats.resident_pools, 2);
    assert_eq!(stats.resident_spines, 2);
    // The batched path resolves its pool and spine once per scenario
    // *chunk*, not once per campaign: one build per scenario, one lookup
    // per group session.
    assert_eq!(stats.pool_cache.misses, 2);
    assert_eq!(stats.spine_cache.misses, 2);
    assert!(stats.batched_groups > 0, "default config must take the batched path");
    assert_eq!(stats.pool_cache.lookups(), stats.batched_groups);
    assert!(
        stats.spine_queries > 0,
        "batched campaigns must answer revocation lookups through the spine"
    );
    // The three θ values per (workload, seed) share ground-truth curves:
    // the cross-request memo tier must be doing real work.
    assert!(
        stats.curve_cache.hit_rate() > 0.0,
        "curve-memo hit rate must be positive, got {:?}",
        stats.curve_cache
    );

    // The default server stages batched chunks through the SoA cohort
    // path; the sweep's transient campaigns must actually cross the lane
    // kernel.
    assert!(stats.kernel_invocations > 0, "default config must take the SoA path");
    assert!(stats.lane_jobs > 0 && stats.lane_slots >= stats.lane_jobs);

    // A/B: the batched-but-scalar server (`--no-soa`) runs chunks one
    // campaign at a time, skips the kernel, and must agree bit-for-bit.
    let scalar_server = CampaignServer::start(ServerConfig::default().with_soa(false));
    let scalar_responses = scalar_server.run_sweep(requests.clone());
    let scalar_stats = scalar_server.stats();
    scalar_server.shutdown();
    assert!(scalar_stats.batched_groups > 0, "no-soa keeps the batched path");
    assert_eq!(scalar_stats.kernel_invocations, 0, "no-soa must not touch the kernel");
    for (soa, scalar) in responses.iter().zip(&scalar_responses) {
        assert_eq!(soa, scalar, "SoA and scalar worker paths must agree");
    }

    // A/B: the non-batched server runs the same sweep one request per
    // work item (one pool lookup per campaign) and must agree bit-for-bit.
    let serial_server = CampaignServer::start(ServerConfig::default().with_batch(false));
    let serial_responses = serial_server.run_sweep(requests.clone());
    let serial_stats = serial_server.stats();
    serial_server.shutdown();
    assert_eq!(serial_stats.pool_cache.misses, 2);
    assert_eq!(serial_stats.pool_cache.hits, 998);
    assert_eq!(serial_stats.batched_groups, 0, "no-batch config must stay serial");
    for (batched, serial) in responses.iter().zip(&serial_responses) {
        assert_eq!(batched, serial, "batched and serial server paths must agree");
    }

    // Serial reference: same campaigns, same seeds, fresh per-run state.
    // Build each distinct scenario's pool once; the comparison is about
    // campaign results, not pool construction.
    let mut pools = std::collections::HashMap::new();
    for (request, response) in requests.iter().zip(&responses) {
        assert_eq!(request.id, response.id, "run_sweep must restore request order");
        let pool = pools
            .entry(request.scenario)
            .or_insert_with(|| request.scenario.build());
        let serial = request.run_serial(pool, &CurveCache::global());
        assert_eq!(
            serial, response.report,
            "sharded and serial reports must be bit-identical (request {})",
            request.id
        );
    }
}
