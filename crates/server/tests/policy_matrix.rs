//! Every registered policy runs through the sharded server (ISSUE 4
//! acceptance): the new `hybrid` and `bid-aware` strategies ride the same
//! cached pipeline as the paper's approaches, with curve-tier hits, and a
//! bounded curve tier evicts instead of growing with a many-seed sweep.
//! ISSUE 5 widens the matrix to policy × estimator: every registered
//! policy also sweeps under a learned revocation predictor, with the
//! trained-predictor tier amortizing training across the whole matrix.

use spottune_core::prelude::*;
use spottune_market::{EstimatorSpec, MarketScenario, SimDur};
use spottune_mlsim::prelude::*;
use spottune_server::{CampaignServer, ServerConfig};

fn tiny_workload() -> Workload {
    let base = Workload::benchmark(Algorithm::LoR);
    Workload::custom(Algorithm::LoR, 15, base.hp_grid()[..2].to_vec())
}

#[test]
fn every_registered_policy_sweeps_through_the_server() {
    let workload = tiny_workload();
    let scenario = MarketScenario::from_days(1, 21);
    // Every policy × 3 seeds: same (workload, seed) points across policies,
    // so the curve memo must serve cross-policy hits.
    let mut requests = Vec::new();
    for name in Approach::registered_policies() {
        let approach = Approach::from_policy_name(name, 0.7).expect("registered");
        for seed in 0..3u64 {
            requests.push(CampaignRequest {
                id: requests.len() as u64,
                approach,
                workload: workload.clone(),
                scenario,
                seed,
                estimator: EstimatorSpec::default(),
            });
        }
    }
    let total = requests.len();
    assert_eq!(total, 7 * 3);

    let server = CampaignServer::start(ServerConfig::with_workers(4));
    let responses = server.run_sweep(requests);
    assert_eq!(responses.len(), total);
    for response in &responses {
        let report = &response.report;
        assert!(!report.approach.is_empty(), "empty report for id {}", response.id);
        assert_eq!(report.predicted_finals.len(), 2, "{}", report.approach);
        assert!(report.jct.as_secs() > 0, "{}", report.approach);
        assert!(
            (report.gross - report.cost - report.refunded).abs() < 1e-9,
            "{}: billing identity",
            report.approach
        );
    }
    // The new policies produced distinctly-labelled reports.
    for label in [
        "Hybrid(θ=0.7, k=3)",
        "BidAware(θ=0.7)",
        "On-Demand Tune(Cheapest)",
        "MigrationAware(θ=0.7, km)",
    ] {
        assert!(
            responses.iter().any(|r| r.report.approach == label),
            "no report labelled {label:?}"
        );
    }
    let stats = server.stats();
    assert_eq!(stats.completed, total as u64);
    assert_eq!(stats.resident_pools, 1);
    assert!(
        stats.curve_cache.hit_rate() > 0.0,
        "cross-policy sweeps must share curves: {:?}",
        stats.curve_cache
    );
    server.shutdown();
}

#[test]
fn every_policy_sweeps_under_a_learned_predictor() {
    let workload = tiny_workload();
    // Short traces keep the LSTM training windows tiny (a handful of
    // samples per market); two scenarios × one kind must train exactly
    // twice no matter how many campaigns ask for the predictor.
    let scenarios = [
        MarketScenario::new(SimDur::from_hours(5), 31),
        MarketScenario::new(SimDur::from_hours(5), 32),
    ];
    let mut requests = Vec::new();
    for name in Approach::registered_policies() {
        let approach = Approach::from_policy_name(name, 0.7).expect("registered");
        for &scenario in &scenarios {
            requests.push(CampaignRequest {
                id: requests.len() as u64,
                approach,
                workload: workload.clone(),
                scenario,
                seed: 3,
                estimator: EstimatorSpec::RevPred,
            });
        }
    }
    let total = requests.len();
    assert_eq!(total, 7 * 2);

    let server = CampaignServer::start(ServerConfig::with_workers(4));
    let responses = server.run_sweep(requests.clone());
    assert_eq!(responses.len(), total);
    for response in &responses {
        let report = &response.report;
        assert_eq!(report.predicted_finals.len(), 2, "{}", report.approach);
        assert!(report.cost >= 0.0 && report.jct.as_secs() > 0, "{}", report.approach);
    }
    let stats = server.stats();
    assert_eq!(stats.completed, total as u64);
    assert_eq!(
        stats.predictor_cache.misses, 2,
        "training must happen at most once per scenario × kind: {:?}",
        stats.predictor_cache
    );
    assert_eq!(stats.predictor_cache.hits, total as u64 - 2);
    assert_eq!(stats.resident_predictors, 2);

    // The learned-predictor path through the server is bit-identical to
    // the serial reference resolution.
    let request = &requests[0];
    let serial = request.run_serial(&request.scenario.build(), &CurveCache::new());
    assert_eq!(serial, responses[0].report, "server vs serial learned-spec report");
    server.shutdown();
}

#[test]
fn every_registered_estimator_sweeps_through_the_server() {
    // Registry-driven (spotlint rule R1): iterating
    // `registered_estimators()` instead of a hand-kept list means a newly
    // registered kind fails here until the matrix genuinely covers it.
    let workload = tiny_workload();
    // Short traces keep the learned kinds' training windows tiny.
    let scenario = MarketScenario::new(SimDur::from_hours(5), 31);
    let mut requests = Vec::new();
    for name in EstimatorSpec::registered_estimators() {
        // Argless form where the registry name is directly runnable
        // (`oracle`, the learned kinds); `constant` needs a probability.
        let estimator = EstimatorSpec::parse(name)
            .or_else(|| EstimatorSpec::parse(&format!("{name}(0.5)")))
            .unwrap_or_else(|| panic!("registered estimator {name} must parse"));
        requests.push(CampaignRequest {
            id: requests.len() as u64,
            approach: Approach::SpotTune { theta: 0.7 },
            workload: workload.clone(),
            scenario,
            seed: 3,
            estimator,
        });
    }
    assert_eq!(requests.len(), 5);

    let server = CampaignServer::start(ServerConfig::with_workers(4));
    let responses = server.run_sweep(requests.clone());
    for (request, response) in requests.iter().zip(&responses) {
        let report = &response.report;
        assert_eq!(report.predicted_finals.len(), 2, "{}", request.estimator);
        assert!(report.jct.as_secs() > 0, "{}", request.estimator);
        // Every estimator's server answer is bit-identical to the serial
        // reference resolution of the same request.
        let serial = request.run_serial(&scenario.build(), &CurveCache::new());
        assert_eq!(serial, *report, "{}: server vs serial report", request.estimator);
    }
    // Three learned kinds over one scenario: three trainings, no more.
    assert_eq!(server.stats().predictor_cache.misses, 3);
    server.shutdown();
}

#[test]
fn bounded_curve_tier_evicts_under_many_seeds() {
    let workload = tiny_workload();
    let scenario = MarketScenario::from_days(1, 21);
    // 12 seeds × 2 curves per campaign, but the tier only keeps 4 curves.
    let requests: Vec<CampaignRequest> = (0..12u64)
        .map(|seed| CampaignRequest {
            id: seed,
            approach: Approach::SpotTune { theta: 1.0 },
            workload: workload.clone(),
            scenario,
            seed,
            estimator: EstimatorSpec::default(),
        })
        .collect();
    let server =
        CampaignServer::start(ServerConfig::with_workers(2).with_curve_capacity(4));
    let responses = server.run_sweep(requests);
    assert_eq!(responses.len(), 12);
    let stats = server.stats();
    assert!(stats.resident_curves <= 4, "capacity respected: {}", stats.resident_curves);
    assert!(stats.curve_cache.evictions > 0, "many-seed sweep must evict: {:?}", stats.curve_cache);
    // Determinism: a bounded tier recomputes, never corrupts — the same
    // sweep through an unbounded server is bit-identical.
    let unbounded = CampaignServer::start(ServerConfig::with_workers(2));
    let again = unbounded.run_sweep(
        (0..12u64)
            .map(|seed| CampaignRequest {
                id: seed,
                approach: Approach::SpotTune { theta: 1.0 },
                workload: workload.clone(),
                scenario,
                seed,
                estimator: EstimatorSpec::default(),
            })
            .collect(),
    );
    assert_eq!(unbounded.stats().curve_cache.evictions, 0);
    for (a, b) in responses.iter().zip(&again) {
        assert_eq!(a, b, "curve eviction changed a report");
    }
    unbounded.shutdown();
    server.shutdown();
}
