//! Chaos harness for the TCP front-end (ISSUE 8 acceptance): every
//! registered wire error-frame kind is provoked over a real socket,
//! killed connections and floods past admission never panic a worker,
//! surviving clients get responses **bit-identical** to
//! [`CampaignRequest::run_serial`], and a graceful drain flushes every
//! pending response before the sockets close.
//!
//! Spotlint's R1 coverage check cross-references
//! [`wire::registered_error_kinds`] against this suite: a new error kind
//! without a wire-level test fails the lint gate.

use spottune_core::prelude::*;
use spottune_core::wire::{self, ErrorKind, ServerFrame};
use spottune_market::{EstimatorSpec, MarketScenario};
use spottune_mlsim::prelude::*;
use spottune_server::net::{AdmissionConfig, NetServer, NetServerConfig, ShutdownHandle};
use spottune_server::ServerConfig;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;

fn request(id: u64, steps: u64, seed: u64) -> CampaignRequest {
    let base = Workload::benchmark(Algorithm::LoR);
    CampaignRequest {
        id,
        approach: Approach::SpotTune { theta: 0.7 },
        workload: Workload::custom(Algorithm::LoR, steps, base.hp_grid()[..2].to_vec()),
        scenario: MarketScenario::from_days(1, 42),
        seed,
        estimator: EstimatorSpec::default(),
    }
}

/// Binds an in-process front-end and serves it on a background thread.
fn serve(config: NetServerConfig) -> (SocketAddr, ShutdownHandle, JoinHandle<std::io::Result<()>>) {
    let net = NetServer::bind("127.0.0.1:0", config).expect("bind ephemeral");
    let addr = net.local_addr();
    let handle = net.handle();
    let thread = std::thread::spawn(move || net.run());
    (addr, handle, thread)
}

/// A raw line-framed connection: full control over what goes on the wire.
struct RawConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawConn {
    fn open(addr: SocketAddr) -> RawConn {
        let stream = TcpStream::connect(addr).expect("connect");
        RawConn { reader: BufReader::new(stream.try_clone().expect("clone")), writer: stream }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("send");
        self.writer.write_all(b"\n").expect("send newline");
        self.writer.flush().expect("flush");
    }

    /// Reads exactly one server frame (blocks until it arrives).
    fn recv(&mut self) -> ServerFrame {
        let mut line = String::new();
        assert!(self.reader.read_line(&mut line).expect("read frame") > 0, "unexpected EOF");
        wire::decode_server_frame(line.trim()).expect("decodable frame")
    }

    /// Reads server frames until the server closes the connection.
    fn read_to_eof(mut self) -> Vec<ServerFrame> {
        drop(self.writer);
        let mut frames = Vec::new();
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line).expect("read frame") == 0 {
                return frames;
            }
            frames.push(wire::decode_server_frame(line.trim()).expect("decodable frame"));
        }
    }
}

fn kind_counts(frames: &[ServerFrame]) -> BTreeMap<&'static str, usize> {
    let mut counts = BTreeMap::new();
    for frame in frames {
        if let ServerFrame::Error(e) = frame {
            *counts.entry(e.kind.name()).or_insert(0) += 1;
        }
    }
    counts
}

fn serial_reference(request: &CampaignRequest) -> spottune_core::HptReport {
    let pool = request.scenario.build();
    request.run_serial(&pool, &CurveCache::global())
}

/// One connection against a deliberately tiny server (one worker, queue
/// capacity one) walks through garbage, a semantically-bad request, a
/// queue-deadline, a flood past the bounded queue and a post-shutdown
/// request — provoking `malformed`, `rejected`, `deadline-exceeded`,
/// `overloaded` and `draining` frames, while the one successful campaign
/// still comes back bit-identical to the serial reference. `throttled`
/// (the sixth kind) has its own server below; together the two tests put
/// every kind in [`wire::registered_error_kinds`] on the wire.
#[test]
fn five_error_kinds_and_a_flushed_response_on_one_connection() {
    let config = NetServerConfig {
        // Queue capacity 2: one slot hands the heavy campaign to the
        // worker, one holds the doomed deadline request; the flood then
        // finds the queue full.
        server: ServerConfig::with_workers(1).with_queue_capacity(2),
        // Throttling off: this test targets the queue bounds, not admission.
        admission: AdmissionConfig { burst: 1024, refill_per_sec: 0.0, staging_capacity: 1024 },
    };
    let (addr, _handle, server) = serve(config);
    let mut conn = RawConn::open(addr);

    // 1. Garbage never decodes: `malformed`, unattributed (no id).
    conn.send("this is not a frame {");
    // 2. Decodes fine, fails validation at the server boundary: `rejected`.
    let mut invalid = request(900, 20, 0);
    invalid.approach = Approach::SpotTune { theta: 2.5 };
    conn.send(&wire::encode_request_frame(&invalid, None));
    // 3. A heavy campaign occupies the single worker...
    let heavy = request(1, 300, 7);
    conn.send(&wire::encode_request_frame(&heavy, None));
    // 4. ...so this one expires in the queue: `deadline-exceeded`.
    conn.send(&wire::encode_request_frame(&request(2, 20, 8), Some(1)));
    // 5. The queue (capacity 1) now holds the doomed request: `overloaded`.
    for id in 10..16 {
        conn.send(&wire::encode_request_frame(&request(id, 20, id), None));
    }
    // 6. Graceful drain: the shutdown frame is acked with a stats
    //    snapshot, and a request arriving after it gets `draining`.
    conn.send(&wire::encode_shutdown_request());
    conn.send(&wire::encode_request_frame(&request(30, 20, 9), None));

    let frames = conn.read_to_eof();
    server.join().expect("server thread must not panic").expect("clean run");

    // One reply per line sent: 12 lines, 12 frames, nothing lost and
    // nothing duplicated — even across the graceful drain.
    assert_eq!(frames.len(), 12, "one reply per request: {frames:?}");
    let counts = kind_counts(&frames);
    assert_eq!(counts.get("malformed"), Some(&1), "{counts:?}");
    assert_eq!(counts.get("rejected"), Some(&1), "{counts:?}");
    assert_eq!(counts.get("deadline-exceeded"), Some(&1), "{counts:?}");
    assert_eq!(counts.get("draining"), Some(&1), "{counts:?}");
    assert!(counts.get("overloaded").is_some_and(|&n| n >= 1), "{counts:?}");
    let stats_frames = frames.iter().filter(|f| matches!(f, ServerFrame::Stats(_))).count();
    assert_eq!(stats_frames, 1, "the shutdown ack is a stats snapshot");

    // The error frames carry the ids they belong to.
    for frame in &frames {
        if let ServerFrame::Error(e) = frame {
            match e.kind {
                ErrorKind::Malformed => assert_eq!(e.id, None, "garbage has no id"),
                ErrorKind::Rejected => assert_eq!(e.id, Some(900)),
                ErrorKind::DeadlineExceeded => assert_eq!(e.id, Some(2)),
                ErrorKind::Draining => assert_eq!(e.id, Some(30)),
                ErrorKind::Overloaded => {
                    assert!(e.id.is_some_and(|id| (10..16).contains(&id)), "{e:?}");
                }
                ErrorKind::Throttled => panic!("throttling is disabled here: {e:?}"),
            }
        }
    }

    // Every campaign that did run came back bit-identical to the serial
    // reference, drain or no drain.
    for frame in &frames {
        if let ServerFrame::Response(response) = frame {
            let reference = if response.id == heavy.id {
                serial_reference(&heavy)
            } else {
                serial_reference(&request(response.id, 20, response.id))
            };
            assert_eq!(response.report, reference, "request {} diverged", response.id);
        }
    }
}

/// The token bucket refuses a burst past its capacity with `throttled`
/// frames — the admitted request still completes — and the counter shows
/// up in the stats frame.
#[test]
fn admission_flood_is_throttled_not_queued() {
    let config = NetServerConfig {
        server: ServerConfig::with_workers(1).with_queue_capacity(8),
        // One token, effectively no refill: the second request must be
        // refused at admission, before it can touch the queue.
        admission: AdmissionConfig { burst: 1, refill_per_sec: 1e-6, staging_capacity: 8 },
    };
    let (addr, handle, server) = serve(config);
    let mut conn = RawConn::open(addr);

    // Strict request/reply: waiting for each frame keeps the shutdown
    // below from racing the reader.
    conn.send(&wire::encode_request_frame(&request(1, 20, 3), None));
    let first = conn.recv();
    conn.send(&wire::encode_request_frame(&request(2, 20, 4), None));
    let second = conn.recv();
    conn.send(&wire::encode_stats_request());
    let third = conn.recv();
    handle.shutdown();

    let frames = vec![first, second, third];
    assert!(conn.read_to_eof().is_empty(), "no stray frames after the drain");
    server.join().expect("server thread must not panic").expect("clean run");
    let counts = kind_counts(&frames);
    assert_eq!(counts.get("throttled"), Some(&1), "{counts:?}");
    let mut saw_response = false;
    for frame in &frames {
        match frame {
            ServerFrame::Response(response) => {
                assert_eq!(response.id, 1, "only the admitted request runs");
                assert_eq!(response.report, serial_reference(&request(1, 20, 3)));
                saw_response = true;
            }
            ServerFrame::Error(e) => assert_eq!((e.kind, e.id), (ErrorKind::Throttled, Some(2))),
            ServerFrame::Stats(fields) => {
                let get = |name: &str| {
                    fields.iter().find(|(k, _)| k == name).map(|&(_, v)| v).unwrap_or(0)
                };
                assert_eq!(get("throttled"), 1, "admission refusals are counted");
            }
        }
    }
    assert!(saw_response, "the admitted request must complete: {frames:?}");
}

/// The two tests above, between them, put every registered kind on the
/// wire; this is the registry-driven closure spotlint's R1 check leans
/// on. Six kinds registered, six kinds exercised.
#[test]
fn the_suite_covers_the_whole_error_kind_registry() {
    let exercised =
        ["overloaded", "throttled", "deadline-exceeded", "malformed", "rejected", "draining"];
    assert_eq!(wire::registered_error_kinds().to_vec(), exercised.to_vec());
}

/// Chaos sweep: three well-behaved clients run campaigns while one
/// connection dies mid-request, one sends truncated garbage, and one
/// floods far past the admission burst without ever reading a reply.
/// No worker panics, the survivors' sweeps are bit-identical to the
/// serial reference, the bounded queue never exceeds its capacity, and
/// the drain still exits cleanly.
#[test]
fn killed_and_flooding_connections_leave_survivors_bit_identical() {
    use spottune_client::{Client, RetryPolicy};

    const QUEUE_CAPACITY: usize = 8;
    let config = NetServerConfig {
        server: ServerConfig::with_workers(2).with_queue_capacity(QUEUE_CAPACITY),
        admission: AdmissionConfig::default(),
    };
    let (addr, _handle, server) = serve(config);

    // Chaos, first wave: a connection that sends garbage plus a truncated
    // frame and vanishes, and one that dies mid-request (a valid campaign
    // whose reply has nowhere to go). The garbage sender waits for its
    // first error frame before dying — a drop with replies still unread
    // resets the connection, and the reset may discard input the server
    // has not processed yet.
    {
        let mut garbage = RawConn::open(addr);
        garbage.send("{\"id\":");
        match garbage.recv() {
            ServerFrame::Error(e) => assert_eq!((e.kind, e.id), (ErrorKind::Malformed, None)),
            other => panic!("expected a malformed frame, got {other:?}"),
        }
        garbage.writer.write_all(b"{\"truncated").expect("half frame");
        drop(garbage);
        let mut killer = RawConn::open(addr);
        killer.send(&wire::encode_request_frame(&request(777, 60, 77), None));
        drop(killer);
    }

    // Survivors: three concurrent clients, six campaigns each, seeded
    // deterministic retry absorbing any transient overloads.
    let survivors: Vec<JoinHandle<Vec<CampaignResponse>>> = (0..3u64)
        .map(|k| {
            let addr = addr.to_string();
            std::thread::spawn(move || {
                let retry = RetryPolicy::default().with_seed(k).with_max_attempts(8);
                let mut client =
                    Client::connect(&addr).expect("survivor connects").with_retry(retry);
                (0..6u64)
                    .map(|i| {
                        let req = request(100 * (k + 1) + i, 20, 50 + i);
                        client.run_campaign(&req, None).expect("survivor response")
                    })
                    .collect()
            })
        })
        .collect();

    // Chaos, second wave: a flood far past the 64-token burst. The
    // flooder reads just long enough to see admission kick in (so the
    // teardown reset cannot discard the still-unprocessed flood), then
    // dies with the rest of its replies in flight.
    {
        let mut flood = RawConn::open(addr);
        for id in 5000..5120u64 {
            flood.send(&wire::encode_request_frame(&request(id, 20, id), None));
        }
        let throttled = (0..120)
            .map(|_| flood.recv())
            .any(|frame| matches!(frame, ServerFrame::Error(e) if e.kind == ErrorKind::Throttled));
        assert!(throttled, "a 120-request burst must out-run the 64-token bucket");
        drop(flood);
    }

    for (k, survivor) in survivors.into_iter().enumerate() {
        let responses = survivor.join().expect("survivor thread must not panic");
        assert_eq!(responses.len(), 6);
        for (i, response) in responses.iter().enumerate() {
            let req = request(100 * (k as u64 + 1) + i as u64, 20, 50 + i as u64);
            assert_eq!(response.id, req.id, "strict request/reply keeps attribution");
            assert_eq!(
                response.report,
                serial_reference(&req),
                "survivor {k} request {} diverged under chaos",
                req.id
            );
        }
    }

    // The flood was refused at admission, the garbage was counted, and
    // the bounded queue honoured its bound throughout.
    let mut admin = Client::connect(&addr.to_string()).expect("admin client");
    let stats = admin.stats().expect("stats frame");
    let get = |name: &str| stats.iter().find(|(k, _)| k == name).map(|&(_, v)| v).unwrap_or(0);
    assert!(get("throttled") >= 1, "the flood must out-run the token bucket: {stats:?}");
    assert!(get("malformed_frames") >= 1, "garbage must be counted: {stats:?}");
    assert_eq!(get("queue_capacity"), QUEUE_CAPACITY as u64);
    assert!(
        get("peak_queue_depth") <= QUEUE_CAPACITY as u64,
        "bounded queue exceeded its capacity: {stats:?}"
    );
    assert!(get("completed") >= 18, "all survivor campaigns completed: {stats:?}");

    // Graceful drain over the wire; the ack is the final snapshot.
    let final_stats = admin.shutdown_server().expect("shutdown ack");
    assert!(!final_stats.is_empty());
    server.join().expect("server thread must not panic").expect("clean run");
}

/// Responses queued at shutdown time are flushed before the sockets
/// close: a client that fires a batch and immediately asks for shutdown
/// still gets every response, bit-identical to the serial reference.
#[test]
fn graceful_drain_flushes_every_pending_response() {
    let config = NetServerConfig {
        server: ServerConfig::with_workers(1).with_queue_capacity(8),
        admission: AdmissionConfig::default(),
    };
    let (addr, _handle, server) = serve(config);
    let mut conn = RawConn::open(addr);

    let requests: Vec<CampaignRequest> = (1..=3).map(|id| request(id, 25, id)).collect();
    for req in &requests {
        conn.send(&wire::encode_request_frame(req, None));
    }
    conn.send(&wire::encode_shutdown_request());

    let frames = conn.read_to_eof();
    server.join().expect("server thread must not panic").expect("clean run");

    assert_eq!(frames.len(), 4, "three responses and the shutdown ack: {frames:?}");
    let mut seen = Vec::new();
    for frame in frames {
        if let ServerFrame::Response(response) = frame {
            let req = &requests[(response.id - 1) as usize];
            assert_eq!(response.report, serial_reference(req), "request {}", response.id);
            seen.push(response.id);
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, vec![1, 2, 3], "the drain must flush every pending response");
}
