//! Loopback soak of the real `spottune-serve` binary (the CI `tcp-soak`
//! job): four concurrent clients push 64 campaigns through a live TCP
//! service while one connection is killed mid-request and another floods
//! past the admission burst. Every surviving success frame is diffed
//! against [`CampaignRequest::run_serial`], the bounded queue never
//! exceeds its capacity, and the wire shutdown drains gracefully to
//! exit code 0.

use spottune_client::{Client, RetryPolicy};
use spottune_core::prelude::*;
use spottune_market::{EstimatorSpec, MarketScenario};
use spottune_mlsim::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

const CLIENTS: u64 = 4;
const CAMPAIGNS_PER_CLIENT: u64 = 16;
const QUEUE_CAPACITY: u64 = 16;

fn request(id: u64) -> CampaignRequest {
    let base = Workload::benchmark(Algorithm::LoR);
    CampaignRequest {
        id,
        approach: Approach::SpotTune { theta: 0.7 },
        workload: Workload::custom(Algorithm::LoR, 20, base.hp_grid()[..2].to_vec()),
        scenario: MarketScenario::from_days(1, 42),
        seed: 1000 + id,
        estimator: EstimatorSpec::default(),
    }
}

/// Starts the binary on an ephemeral port and parses the address it
/// announces on stdout.
fn spawn_server() -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_spottune-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--queue-capacity",
            &QUEUE_CAPACITY.to_string(),
        ])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn spottune-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("read announce line");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announce line {line:?}"))
        .to_string();
    (child, addr)
}

#[test]
fn soak_four_clients_with_chaos_then_graceful_exit() {
    let (mut child, addr) = spawn_server();

    // Chaos 1: a connection killed mid-request — garbage, then a valid
    // campaign whose reply has nowhere to go, then gone. It waits for
    // the malformed frame before dying so the teardown reset cannot
    // discard input the server has not read yet.
    {
        let stream = TcpStream::connect(&addr).expect("chaos connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut stream = stream;
        stream.write_all(b"{\"mid-frame garbage\n").expect("garbage");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("malformed frame");
        assert!(reply.contains("\"malformed\""), "got {reply:?}");
        let frame = spottune_core::wire::encode_request_frame(&request(9_000), None);
        stream.write_all(frame.as_bytes()).expect("doomed request");
        stream.write_all(b"\n").expect("newline");
    }

    // The survivors: four concurrent clients, sixteen campaigns each,
    // deterministic seeded retry absorbing transient refusals.
    let survivors: Vec<std::thread::JoinHandle<Vec<CampaignResponse>>> = (0..CLIENTS)
        .map(|k| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let retry = RetryPolicy::default().with_seed(k).with_max_attempts(8);
                let mut client =
                    Client::connect(&addr).expect("survivor connects").with_retry(retry);
                (0..CAMPAIGNS_PER_CLIENT)
                    .map(|i| {
                        let req = request(1_000 * (k + 1) + i);
                        client.run_campaign(&req, None).expect("survivor response")
                    })
                    .collect()
            })
        })
        .collect();

    // Chaos 2: a flood far past the 64-token admission burst. The
    // flooder reads just long enough to see a `throttled` refusal (so
    // its teardown reset cannot discard the unprocessed flood), then
    // dies with the rest of its replies in flight.
    {
        let mut flood = TcpStream::connect(&addr).expect("flood connect");
        let mut replies = BufReader::new(flood.try_clone().expect("clone"));
        for id in 5_000..5_120u64 {
            let frame = spottune_core::wire::encode_request_frame(&request(id), None);
            flood.write_all(frame.as_bytes()).expect("flood frame");
            flood.write_all(b"\n").expect("flood newline");
        }
        let mut throttled = false;
        for _ in 0..120 {
            let mut reply = String::new();
            assert!(replies.read_line(&mut reply).expect("flood reply") > 0, "early EOF");
            if reply.contains("\"throttled\"") {
                throttled = true;
                break;
            }
        }
        assert!(throttled, "a 120-request burst must out-run the 64-token bucket");
    }

    // Diff every surviving success frame against the serial reference.
    let pool = request(0).scenario.build();
    let curves = CurveCache::global();
    for (k, survivor) in survivors.into_iter().enumerate() {
        let responses = survivor.join().expect("survivor thread must not panic");
        assert_eq!(responses.len(), CAMPAIGNS_PER_CLIENT as usize);
        for (i, response) in responses.iter().enumerate() {
            let req = request(1_000 * (k as u64 + 1) + i as u64);
            assert_eq!(response.id, req.id, "strict request/reply keeps attribution");
            assert_eq!(
                response.report,
                req.run_serial(&pool, &curves),
                "client {k} request {} diverged over TCP",
                req.id
            );
        }
    }

    // The bounded queue held its bound through the whole soak, and the
    // chaos actually happened (flood throttled, garbage counted).
    let mut admin = Client::connect(&addr).expect("admin client");
    let stats = admin.stats().expect("stats frame");
    let get = |name: &str| stats.iter().find(|(n, _)| n == name).map(|&(_, v)| v).unwrap_or(0);
    assert_eq!(get("queue_capacity"), QUEUE_CAPACITY);
    assert!(
        get("peak_queue_depth") <= QUEUE_CAPACITY,
        "bounded queue exceeded its capacity: {stats:?}"
    );
    assert!(get("throttled") >= 1, "the flood must out-run the token bucket: {stats:?}");
    assert!(get("malformed_frames") >= 1, "garbage must be counted: {stats:?}");
    assert!(
        get("completed") >= CLIENTS * CAMPAIGNS_PER_CLIENT,
        "every survivor campaign completed: {stats:?}"
    );

    // Graceful drain over the wire: final stats ack, then exit code 0.
    let final_stats = admin.shutdown_server().expect("shutdown ack");
    assert!(!final_stats.is_empty(), "the shutdown ack carries the final counters");
    let status = child.wait().expect("server process");
    assert!(status.success(), "spottune-serve must drain and exit 0, got {status:?}");
}
