//! # spotlint
//!
//! The workspace's static-analysis gate: a dependency-free, workspace-aware
//! lint pass enforcing the two invariants every PR here leans on —
//!
//! 1. **Determinism** — no wall-clock/entropy reads (D1), no hash-order
//!    containers (D2) in the determinism-critical crates
//!    (`core`/`cloud`/`market`/`revpred`/`earlycurve`), no exact float
//!    equality in `core`/`earlycurve` (D3). The bit-identical equivalence
//!    suites (tick≡event, policy/estimator defaults, fault replay) only
//!    mean anything if these hold.
//! 2. **Coverage** — the panic-free request path (P1) and the
//!    registry/CI/test-suite cross-check (R1): every registered policy and
//!    estimator stays in the CI matrix and the equivalence/storm suites,
//!    including the batch suite's SoA lane-path tests.
//! 3. **Confinement** — `unsafe` stays inside the audited kernel modules
//!    (U1); everywhere else it needs a `spotlint.allow` audit.
//!
//! Built on a hand-rolled Rust lexer ([`lexer`]) and token-pattern rules
//! ([`rules`]) because the vendored dependency set has no `syn`. Audited
//! exceptions live in `spotlint.allow` ([`allow`]); run
//! `spotlint --explain <RULE>` for the rationale behind any rule.

pub mod allow;
pub mod lexer;
pub mod registry;
pub mod rules;

use registry::{RegistryInputs, CI_PATH, ESTIMATOR_REGISTRY_PATH, POLICY_REGISTRY_PATH, SUITE_PATHS};
use rules::{check_d1, check_d2, check_d3, check_p1, check_u1, FileCtx, Finding};
use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose `src/` trees must be free of nondeterminism (D1, D2).
pub const DETERMINISM_CRATES: &[&str] = &[
    "crates/core",
    "crates/cloud",
    "crates/market",
    "crates/revpred",
    "crates/earlycurve",
];

/// Crates additionally checked for exact float equality (D3).
pub const FLOAT_EQ_CRATES: &[&str] = &["crates/core", "crates/earlycurve"];

/// Crates whose `src/` trees must keep `unsafe` confined to the kernel
/// modules (U1): every library crate. Only `crates/bench` (measurement
/// binaries, never linked into the sim) and spotlint itself are outside
/// the scope.
pub const UNSAFE_SCOPE_CRATES: &[&str] = &[
    "crates/core",
    "crates/cloud",
    "crates/market",
    "crates/revpred",
    "crates/earlycurve",
    "crates/mlsim",
    "crates/nn",
    "crates/server",
    "crates/client",
];

/// Files forming the untrusted-input path (P1): wire decode, the server
/// request handling (core pool and TCP front-end), and the client's
/// connection/retry machinery.
pub const PANIC_PATH_FILES: &[&str] = &[
    "crates/core/src/wire.rs",
    "crates/server/src/lib.rs",
    "crates/server/src/net.rs",
    "crates/client/src/lib.rs",
];

/// Result of a full workspace pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings not covered by the allowlist — these gate CI.
    pub findings: Vec<Finding>,
    /// Findings suppressed by an allowlist entry.
    pub suppressed: Vec<Finding>,
    /// Allowlist entries that matched nothing (stale audits).
    pub stale_allow: Vec<allow::AllowEntry>,
    /// Allowlist lines that could not be parsed.
    pub malformed_allow: Vec<usize>,
    /// Number of `.rs` files scanned by the token rules.
    pub files_scanned: usize,
}

impl Report {
    /// Whether the workspace passes the gate (stale or malformed allowlist
    /// entries fail it too: a suppression that no longer matches anything
    /// means the audited line changed and must be re-reviewed).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
            && self.stale_allow.is_empty()
            && self.malformed_allow.is_empty()
    }
}

/// Runs every rule over the workspace rooted at `root`, applying the
/// allowlist at `root/spotlint.allow` if present.
///
/// # Errors
///
/// Returns an error string when the root does not look like the expected
/// workspace (missing crates) or a listed file cannot be read.
pub fn lint_workspace(root: &Path) -> Result<Report, String> {
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;

    // Token rules over the library crates: U1 everywhere in scope, the
    // determinism rules (D1/D2, D3 where floats gate decisions) over
    // their tighter crate lists.
    for krate in UNSAFE_SCOPE_CRATES {
        let determinism = DETERMINISM_CRATES.contains(krate);
        let src_dir = root.join(krate).join("src");
        for file in rust_files(&src_dir)? {
            let rel = rel_path(root, &file);
            let text = read(&file)?;
            let ctx = FileCtx::new(&rel, &text);
            if determinism {
                findings.extend(check_d1(&ctx));
                findings.extend(check_d2(&ctx));
                if FLOAT_EQ_CRATES.iter().any(|c| rel.starts_with(c)) {
                    findings.extend(check_d3(&ctx));
                }
            }
            findings.extend(check_u1(&ctx));
            files_scanned += 1;
        }
    }
    // P1 over the untrusted-input path.
    for rel in PANIC_PATH_FILES {
        let text = read(&root.join(rel))?;
        let ctx = FileCtx::new(rel, &text);
        findings.extend(check_p1(&ctx));
        files_scanned += 1;
    }
    // R1 cross-check.
    findings.extend(registry::check_r1(&registry_inputs(root)?));

    // Stable output order: file, line, rule; collapse repeats of the same
    // finding on one line (e.g. two `HashMap` tokens in one declaration).
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.message.as_str())
            .cmp(&(b.file.as_str(), b.line, b.rule, b.message.as_str()))
    });
    findings.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line && a.message == b.message);

    // Allowlist.
    let allow_path = root.join("spotlint.allow");
    let (entries, malformed_allow) = if allow_path.exists() {
        allow::parse(&read(&allow_path)?)
    } else {
        (Vec::new(), Vec::new())
    };
    let (kept, suppressed, stale_allow) = allow::apply(findings, &entries);

    Ok(Report { findings: kept, suppressed, stale_allow, malformed_allow, files_scanned })
}

/// Reads the R1 inputs from disk.
pub fn registry_inputs(root: &Path) -> Result<RegistryInputs, String> {
    let mut suites = Vec::new();
    for rel in SUITE_PATHS {
        suites.push((rel.to_string(), read(&root.join(rel))?));
    }
    let mut tcp_suites = Vec::new();
    for rel in registry::TCP_SUITE_PATHS {
        tcp_suites.push((rel.to_string(), read(&root.join(rel))?));
    }
    Ok(RegistryInputs {
        policy_src: read(&root.join(POLICY_REGISTRY_PATH))?,
        estimator_src: read(&root.join(ESTIMATOR_REGISTRY_PATH))?,
        wire_src: read(&root.join(registry::WIRE_REGISTRY_PATH))?,
        ci_yaml: read(&root.join(CI_PATH))?,
        suites,
        tcp_suites,
        batch_suite: read(&root.join(registry::BATCH_SUITE_PATH))?,
    })
}

/// Locates the workspace root from an arbitrary start directory by walking
/// up to the first directory containing `crates/core` (the CLI runs from
/// the root via `cargo run -p spotlint`, tests from the crate dir).
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if d.join("crates/core").is_dir() && d.join(".github").is_dir() {
            return Some(d.to_path_buf());
        }
        dir = d.parent();
    }
    None
}

fn read(path: &Path) -> Result<String, String> {
    fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))
}

fn rel_path(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

/// All `.rs` files under `dir`, recursively, in sorted (deterministic)
/// order — the lint practices what it preaches.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries =
            fs::read_dir(&d).map_err(|e| format!("cannot list {}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("cannot list {}: {e}", d.display()))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Serializes a report as one JSON object (machine-readable CI output).
/// Hand-rolled like everything else here; keys are stable.
pub fn report_to_json(report: &Report) -> String {
    let mut out = String::from("{");
    out.push_str("\"ok\":");
    out.push_str(if report.is_clean() { "true" } else { "false" });
    out.push_str(",\"files_scanned\":");
    out.push_str(&report.files_scanned.to_string());
    out.push_str(",\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        finding_json(&mut out, f);
    }
    out.push_str("],\"suppressed\":");
    out.push_str(&report.suppressed.len().to_string());
    out.push_str(",\"stale_allow\":[");
    for (i, e) in report.stale_allow.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        json_kv(&mut out, "rule", &e.rule);
        out.push(',');
        json_kv(&mut out, "file", &e.file);
        out.push(',');
        json_kv(&mut out, "pattern", &e.pattern);
        out.push_str(",\"line\":");
        out.push_str(&e.line.to_string());
        out.push('}');
    }
    out.push_str("],\"malformed_allow\":[");
    for (i, l) in report.malformed_allow.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&l.to_string());
    }
    out.push_str("]}");
    out
}

fn finding_json(out: &mut String, f: &Finding) {
    out.push('{');
    json_kv(out, "rule", f.rule);
    out.push(',');
    json_kv(out, "file", &f.file);
    out.push_str(",\"line\":");
    out.push_str(&f.line.to_string());
    out.push(',');
    json_kv(out, "message", &f.message);
    out.push(',');
    json_kv(out, "snippet", &f.snippet);
    out.push('}');
}

fn json_kv(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    json_string(out, value);
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_shape() {
        let report = Report {
            findings: vec![Finding {
                rule: "D2",
                file: "crates/x.rs".into(),
                line: 3,
                message: "say \"no\"".into(),
                snippet: "let m:\tHashMap<u8,u8>".into(),
            }],
            ..Report::default()
        };
        let json = report_to_json(&report);
        assert!(json.contains("\"ok\":false"));
        assert!(json.contains("\\\"no\\\""));
        assert!(json.contains("\\t"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn clean_report_is_ok_but_stale_allow_fails() {
        let mut report = Report::default();
        assert!(report.is_clean());
        report.stale_allow.push(allow::AllowEntry {
            rule: "D3".into(),
            file: "a.rs".into(),
            pattern: "x".into(),
            line: 1,
        });
        assert!(!report.is_clean());
    }
}
