//! A hand-rolled Rust lexer: just enough tokenization for token-pattern
//! lint rules, with none of the grammar.
//!
//! The workspace's vendored dependency set has no `syn`, so spotlint
//! tokenizes source text itself. The lexer understands everything that
//! could *hide* a token from a naive substring scan — line and nested
//! block comments, string/raw-string/byte-string/char literals, lifetimes
//! vs char literals, numeric literals with suffixes — and collapses the
//! rest into a flat token stream with line numbers. Rules then match
//! patterns over that stream, which is why `unwrap_or` never triggers a
//! `unwrap` rule and a `HashMap` inside a doc comment never triggers D2.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`, ...).
    Ident(String),
    /// Lifetime (`'a`, `'static`).
    Lifetime(String),
    /// Integer literal, suffix included (`42`, `0xff_u64`).
    Int(String),
    /// Float literal, suffix included (`0.0`, `1e-9`, `2.5f32`).
    Float(String),
    /// String, raw-string or byte-string literal, carrying the raw text
    /// between the quotes (escapes unprocessed — enough for registry-name
    /// extraction, which never uses escapes).
    Str(String),
    /// Char or byte-char literal (content dropped).
    Char,
    /// Operator or punctuation. Multi-character operators that matter to
    /// pattern matching (`::`, `==`, `!=`, `=>`, `->`, `<=`, `>=`) are
    /// kept whole; everything else is a single character.
    Op(&'static str),
    /// Punctuation emitted as a single character (`{`, `(`, `#`, `.`...).
    Punct(char),
}

impl Tok {
    /// The identifier text, if this token is one.
    pub fn ident(&self) -> Option<&str> {
        match self {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, Tok::Ident(s) if s == name)
    }

    /// Whether this token is the operator `op`.
    pub fn is_op(&self, op: &str) -> bool {
        matches!(self, Tok::Op(s) if *s == op)
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, Tok::Punct(p) if *p == c)
    }

    /// Whether this token is a float literal.
    pub fn is_float(&self) -> bool {
        matches!(self, Tok::Float(_))
    }
}

/// A token plus the 1-indexed source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    pub tok: Tok,
    pub line: usize,
}

/// Tokenizes Rust source text. Unterminated literals and other lexical
/// damage never panic: the lexer degrades to single-character punctuation
/// and keeps going, so a lint pass can always finish.
pub fn lex(src: &str) -> Vec<Spanned> {
    Lexer { b: src.as_bytes(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'a> {
    b: &'a [u8],
    pos: usize,
    line: usize,
    out: Vec<Spanned>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Spanned> {
        while self.pos < self.b.len() {
            let line = self.line;
            let c = self.b[self.pos];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b' ' | b'\t' | b'\r' => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'r' | b'b' if self.raw_or_byte_literal() => {}
                b'\'' => self.char_or_lifetime(line),
                b'0'..=b'9' => self.number(line),
                c if is_ident_start(c) => self.ident(line),
                _ => self.operator(line),
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.pos + ahead).copied()
    }

    fn push(&mut self, tok: Tok, line: usize) {
        self.out.push(Spanned { tok, line });
    }

    fn bump_line(&mut self, c: u8) {
        if c == b'\n' {
            self.line += 1;
        }
    }

    fn line_comment(&mut self) {
        while self.pos < self.b.len() && self.b[self.pos] != b'\n' {
            self.pos += 1;
        }
    }

    fn block_comment(&mut self) {
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.b.len() && depth > 0 {
            if self.b[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.b[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump_line(self.b[self.pos]);
                self.pos += 1;
            }
        }
    }

    /// Plain `"..."` string with escapes. Content is irrelevant to every
    /// rule, so only the span (and embedded newlines) are tracked.
    fn string(&mut self) {
        let line = self.line;
        self.pos += 1;
        let start = self.pos;
        let mut end = self.pos;
        while self.pos < self.b.len() {
            match self.b[self.pos] {
                b'\\' => self.pos += 2,
                b'"' => {
                    end = self.pos;
                    self.pos += 1;
                    break;
                }
                c => {
                    self.bump_line(c);
                    self.pos += 1;
                }
            }
            end = self.pos;
        }
        let content = String::from_utf8_lossy(&self.b[start..end.min(self.b.len())]).into_owned();
        self.push(Tok::Str(content), line);
    }

    /// Detects and consumes `r"..."`, `r#"..."#`, `b"..."`, `br#"..."#`,
    /// `b'x'`. Returns false (consuming nothing) when the `r`/`b` starts a
    /// plain identifier.
    fn raw_or_byte_literal(&mut self) -> bool {
        let line = self.line;
        let start = self.pos;
        let mut i = self.pos;
        if self.b[i] == b'b' {
            i += 1;
            if self.b.get(i) == Some(&b'\'') {
                // Byte char b'x'.
                self.pos = i;
                self.char_or_lifetime(line);
                return true;
            }
        }
        if self.b.get(i) == Some(&b'r') {
            i += 1;
        }
        let mut hashes = 0usize;
        while self.b.get(i) == Some(&b'#') {
            hashes += 1;
            i += 1;
        }
        if self.b.get(i) != Some(&b'"') {
            self.pos = start;
            return false;
        }
        // Raw string (hashes > 0 or an `r"`/`b"` prefix): scan for the
        // closing quote followed by the same number of hashes. An `r`/`b`
        // directly followed by `"` with zero hashes is still a literal
        // (`b"..."` or `r"..."`); escapes are inert inside raw strings but
        // active inside byte strings — b-strings with zero hashes use the
        // escape-aware scan.
        let raw = self.b[start..].starts_with(b"r") || self.b[start..].starts_with(b"br")
            || hashes > 0;
        i += 1; // past the opening quote
        let content_start = i;
        let mut content_end = i;
        while i < self.b.len() {
            let c = self.b[i];
            if !raw && c == b'\\' {
                i += 2;
                continue;
            }
            if c == b'"' {
                let mut j = 0;
                while j < hashes && self.b.get(i + 1 + j) == Some(&b'#') {
                    j += 1;
                }
                if j == hashes {
                    content_end = i;
                    i += 1 + hashes;
                    break;
                }
            }
            if c == b'\n' {
                self.line += 1;
            }
            i += 1;
            content_end = i;
        }
        self.pos = i;
        let content = String::from_utf8_lossy(
            &self.b[content_start..content_end.min(self.b.len())],
        )
        .into_owned();
        self.push(Tok::Str(content), line);
        true
    }

    /// `'a'` / `'\n'` are char literals; `'a` / `'static` are lifetimes.
    fn char_or_lifetime(&mut self, line: usize) {
        self.pos += 1; // past the quote
        if self.peek(0) == Some(b'\\') {
            // Escaped char literal: consume to the closing quote.
            self.pos += 2;
            while self.pos < self.b.len() && self.b[self.pos] != b'\'' {
                self.pos += 1;
            }
            self.pos += 1;
            self.push(Tok::Char, line);
            return;
        }
        // `'x'` → char; `'ident` not followed by `'` → lifetime.
        let mut end = self.pos;
        while end < self.b.len() && is_ident_continue(self.b[end]) {
            end += 1;
        }
        if self.b.get(end) == Some(&b'\'') && end > self.pos {
            self.pos = end + 1;
            self.push(Tok::Char, line);
        } else if self.b.get(self.pos).copied().is_some_and(is_ident_start) {
            let name = String::from_utf8_lossy(&self.b[self.pos..end]).into_owned();
            self.pos = end;
            self.push(Tok::Lifetime(name), line);
        } else {
            // Something like `'(` — lexically broken; emit punctuation.
            self.push(Tok::Punct('\''), line);
        }
    }

    fn number(&mut self, line: usize) {
        let start = self.pos;
        let mut float = false;
        if self.b[self.pos] == b'0'
            && matches!(self.peek(1), Some(b'x' | b'X' | b'b' | b'B' | b'o' | b'O'))
        {
            self.pos += 2;
            while self.peek(0).is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_') {
                self.pos += 1;
            }
        } else {
            while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                self.pos += 1;
            }
            // A dot makes it a float only when a digit follows (so `0.max`
            // and `0..n` stay integer + punctuation).
            if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
                float = true;
                self.pos += 1;
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                    self.pos += 1;
                }
            }
            // Exponent: `1e9`, `2.5E-3`.
            if matches!(self.peek(0), Some(b'e' | b'E'))
                && (self.peek(1).is_some_and(|c| c.is_ascii_digit())
                    || (matches!(self.peek(1), Some(b'+' | b'-'))
                        && self.peek(2).is_some_and(|c| c.is_ascii_digit())))
            {
                float = true;
                self.pos += 1;
                if matches!(self.peek(0), Some(b'+' | b'-')) {
                    self.pos += 1;
                }
                while self.peek(0).is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                    self.pos += 1;
                }
            }
            // Type suffix (`u64`, `f64`): a float suffix also floats an
            // integer-looking literal (`1f64`).
            if self.peek(0).is_some_and(is_ident_start) {
                let suffix_start = self.pos;
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.pos += 1;
                }
                if self.b[suffix_start..self.pos].starts_with(b"f") {
                    float = true;
                }
            }
        }
        let text = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        self.push(if float { Tok::Float(text) } else { Tok::Int(text) }, line);
    }

    fn ident(&mut self, line: usize) {
        let start = self.pos;
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.b[start..self.pos]).into_owned();
        self.push(Tok::Ident(text), line);
    }

    fn operator(&mut self, line: usize) {
        const TWO: [&str; 7] = ["::", "==", "!=", "<=", ">=", "->", "=>"];
        if let Some(next) = self.peek(1) {
            let pair = [self.b[self.pos], next];
            if let Some(op) = TWO.iter().find(|t| t.as_bytes() == pair) {
                self.pos += 2;
                self.push(Tok::Op(op), line);
                return;
            }
        }
        let c = self.b[self.pos] as char;
        self.pos += 1;
        self.push(Tok::Punct(c), line);
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Marks the token ranges belonging to test code: a `#[cfg(test)]`
/// attribute and the item (almost always `mod tests { ... }`) it gates.
/// Lint rules skip these ranges — the equivalence suites *intentionally*
/// compare floats bit-for-bit and `unwrap()` freely.
pub fn test_regions(toks: &[Spanned]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if is_cfg_test_attr(toks, i) {
            let start = i;
            // Skip this and any further attributes.
            while i < toks.len() && toks[i].tok.is_punct('#') {
                i = skip_attr(toks, i);
            }
            // Find the gated item's opening brace and skip its block.
            while i < toks.len() && !toks[i].tok.is_punct('{') {
                // A `;`-terminated item (`#[cfg(test)] mod tests;`) has no
                // inline block to skip.
                if toks[i].tok.is_punct(';') {
                    break;
                }
                i += 1;
            }
            if i < toks.len() && toks[i].tok.is_punct('{') {
                let mut depth = 0usize;
                while i < toks.len() {
                    if toks[i].tok.is_punct('{') {
                        depth += 1;
                    } else if toks[i].tok.is_punct('}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
            }
            regions.push((start, i.min(toks.len().saturating_sub(1))));
        }
        i += 1;
    }
    regions
}

/// Whether the token at `i` starts a `#[cfg(test)]` (or `#[cfg(all(test,
/// ...))]` etc. — any attribute containing the bare `test` ident inside a
/// `cfg(...)`) attribute.
fn is_cfg_test_attr(toks: &[Spanned], i: usize) -> bool {
    if !(toks[i].tok.is_punct('#') && toks.get(i + 1).is_some_and(|t| t.tok.is_punct('['))) {
        return false;
    }
    if !toks.get(i + 2).is_some_and(|t| t.tok.is_ident("cfg")) {
        return false;
    }
    let end = skip_attr(toks, i);
    toks[i..end].iter().any(|t| t.tok.is_ident("test"))
}

/// Index one past the attribute starting at `i` (`#` `[` ... `]`).
fn skip_attr(toks: &[Spanned], i: usize) -> usize {
    let mut j = i + 1;
    if !toks.get(j).is_some_and(|t| t.tok.is_punct('[')) {
        return i + 1;
    }
    let mut depth = 0usize;
    while j < toks.len() {
        if toks[j].tok.is_punct('[') {
            depth += 1;
        } else if toks[j].tok.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| t.tok.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // HashMap in a line comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap in a string";
            let r = r#"HashMap in a raw string"#;
            let b = b"HashMap bytes";
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|s| *s == "HashMap").count(), 1);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let ids = idents("x.unwrap_or(1); y.unwrap();");
        assert_eq!(ids, vec!["x", "unwrap_or", "y", "unwrap"]);
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = lex("a == 0.0; b == 0; 0..n; 1e-9; 0.max(1); 2.5f32; 1f64; 0xff");
        let floats: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Float(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(floats, vec!["0.0", "1e-9", "2.5f32", "1f64"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let s = 's'; }");
        let lifetimes = toks.iter().filter(|t| matches!(t.tok, Tok::Lifetime(_))).count();
        let chars = toks.iter().filter(|t| matches!(t.tok, Tok::Char)).count();
        assert_eq!((lifetimes, chars), (2, 2));
    }

    #[test]
    fn multichar_operators_stay_whole() {
        let toks = lex("a == b != c :: d");
        let ops: Vec<_> = toks
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Op(o) => Some(o),
                _ => None,
            })
            .collect();
        assert_eq!(ops, vec!["==", "!=", "::"]);
    }

    #[test]
    fn line_numbers_track_newlines_everywhere() {
        let src = "let a = 1;\nlet s = \"two\nlines\";\nlet b = 2;";
        let toks = lex(src);
        let b_line = toks
            .iter()
            .find(|t| t.tok.is_ident("b"))
            .map(|t| t.line)
            .unwrap();
        assert_eq!(b_line, 4);
    }

    #[test]
    fn cfg_test_regions_cover_the_mod_block() {
        let src = r#"
            fn shipping() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn helper() { y.unwrap(); }
            }
            fn also_shipping() {}
        "#;
        let toks = lex(src);
        let regions = test_regions(&toks);
        assert_eq!(regions.len(), 1);
        let (s, e) = regions[0];
        let inside: Vec<_> = toks[s..=e]
            .iter()
            .filter_map(|t| t.tok.ident().map(str::to_string))
            .collect();
        assert!(inside.contains(&"helper".to_string()));
        assert!(!inside.contains(&"shipping".to_string()));
        assert!(!inside.contains(&"also_shipping".to_string()));
    }
}
