//! R1 — the registry/CI/test-suite consistency cross-check.
//!
//! Parses the policy registry out of `Approach::registered_policies`
//! (crates/core/src/campaign.rs) and the estimator registry out of
//! `EstimatorSpec::registered_estimators` (crates/market/src/estimator.rs),
//! then verifies the CI matrix and the equivalence/storm-survival suites
//! cover every registered name — and that the CI matrix names nothing the
//! registries don't know (renames, typos). The wire error-frame registry
//! (`registered_error_kinds` in crates/core/src/wire.rs) gets the same
//! treatment against the TCP suites: every frame kind the server can send
//! must be provoked by at least one socket-level test. Finally, every
//! registered policy must be covered by the batch-equivalence suite
//! (crates/core/tests/batch_equivalence.rs) so the server's batched
//! default can never ship a policy whose batched and serial paths were
//! not proven bit-identical — and covered by that suite's *lane-path*
//! tests specifically ([`lane_scope`]), because the SoA cohort staging is
//! the default and the scalar fallback proves nothing about it.

use crate::lexer::{lex, Tok};
use crate::rules::Finding;

/// One extracted registry name with the source line it was declared on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistryName {
    pub name: String,
    pub line: usize,
}

/// Everything R1 reads, as text, so tests can doctor any piece.
pub struct RegistryInputs {
    /// Content of crates/core/src/campaign.rs.
    pub policy_src: String,
    /// Content of crates/market/src/estimator.rs.
    pub estimator_src: String,
    /// Content of crates/core/src/wire.rs (the error-frame registry).
    pub wire_src: String,
    /// Content of .github/workflows/ci.yml.
    pub ci_yaml: String,
    /// `(workspace-relative path, content)` of the equivalence and
    /// storm-survival suites.
    pub suites: Vec<(String, String)>,
    /// `(workspace-relative path, content)` of the TCP front-end suites
    /// that must exercise every wire error-frame kind.
    pub tcp_suites: Vec<(String, String)>,
    /// Content of the batch-equivalence suite: every registered policy
    /// must be locked bit-identical through the batched sweep path.
    pub batch_suite: String,
}

/// Workspace-relative paths R1 reads in a real run.
pub const POLICY_REGISTRY_PATH: &str = "crates/core/src/campaign.rs";
pub const ESTIMATOR_REGISTRY_PATH: &str = "crates/market/src/estimator.rs";
pub const WIRE_REGISTRY_PATH: &str = "crates/core/src/wire.rs";
pub const CI_PATH: &str = ".github/workflows/ci.yml";
pub const SUITE_PATHS: &[&str] = &[
    "crates/core/tests/policy_equivalence.rs",
    "crates/core/tests/estimator_equivalence.rs",
    "crates/core/tests/fault_injection.rs",
    "crates/server/tests/policy_matrix.rs",
];
/// TCP suites checked against `registered_error_kinds()`: a frame kind
/// nothing provokes over a real socket is a frame kind clients cannot
/// trust.
pub const TCP_SUITE_PATHS: &[&str] =
    &["crates/server/tests/tcp_chaos.rs", "crates/server/tests/tcp_soak.rs"];
/// The batched-sweep equivalence suite: every registered policy must be
/// proven bit-identical between `BatchRunner::run_many` and the serial
/// reference, or the batched default silently diverges for that policy.
pub const BATCH_SUITE_PATH: &str = "crates/core/tests/batch_equivalence.rs";

/// Extracts the string literals returned by `fn <fn_name>` in `src`.
///
/// The registries are arrays of `&'static str` literals inside a single
/// function body, so "every string literal between the function's opening
/// and closing brace" is exact. Returns an empty list if the function is
/// missing — R1 reports that as a finding rather than guessing.
pub fn extract_registry(src: &str, fn_name: &str) -> Vec<RegistryName> {
    let toks = lex(src);
    let mut i = 0;
    // Find `fn <fn_name>`.
    while i < toks.len() {
        if toks[i].tok.is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.tok.is_ident(fn_name))
        {
            break;
        }
        i += 1;
    }
    if i >= toks.len() {
        return Vec::new();
    }
    // Find the body's opening brace, then collect strings to its close.
    while i < toks.len() && !toks[i].tok.is_punct('{') {
        i += 1;
    }
    let mut depth = 0usize;
    let mut out = Vec::new();
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Str(s) => out.push(RegistryName { name: s.clone(), line: toks[i].line }),
            _ => {}
        }
        i += 1;
    }
    out
}

/// One CI matrix entry with its line in ci.yml.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatrixEntry {
    pub value: String,
    pub line: usize,
}

/// Extracts the list items under the matrix key `key:` (e.g. `policy:`)
/// from workflow YAML. Line-oriented on purpose — the workflow file is
/// ours, and a hand-rolled YAML-subset reader keeps the lint
/// dependency-free. Items are `- value` lines directly under the key,
/// more indented than it; quotes are stripped.
pub fn matrix_entries(yaml: &str, key: &str) -> Vec<MatrixEntry> {
    let want = format!("{key}:");
    let mut out = Vec::new();
    let mut lines = yaml.lines().enumerate().peekable();
    while let Some((idx, line)) = lines.next() {
        if line.trim() != want {
            continue;
        }
        let key_indent = indent_of(line);
        let _ = idx;
        for (jdx, item) in lines.by_ref() {
            let trimmed = item.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if indent_of(item) <= key_indent || !trimmed.starts_with('-') {
                break;
            }
            let value = trimmed
                .trim_start_matches('-')
                .trim()
                .trim_matches('\'')
                .trim_matches('"')
                .to_string();
            out.push(MatrixEntry { value, line: jdx + 1 });
        }
    }
    out
}

fn indent_of(line: &str) -> usize {
    line.len() - line.trim_start().len()
}

/// The registry grammar's leading identifier: `oracle(0.9)` → `oracle`.
fn kind_of(entry: &str) -> &str {
    entry.split('(').next().unwrap_or(entry).trim()
}

/// Identifiers that mark a test body as exercising the SoA lane path:
/// the runner toggle and the counters only a lane run can move.
const LANE_MARKERS: &[&str] =
    &["soa", "with_soa", "kernel_invocations", "lane_occupancy", "lane_jobs"];

/// The *lane scope* of the batch-equivalence suite: the concatenated
/// source text of every `fn` whose body mentions a [`LANE_MARKERS`]
/// identifier. Coverage inside this scope proves a policy went through
/// the SoA cohort staging, not just the scalar group loop; an empty
/// scope means the suite has no lane-path test at all.
pub fn lane_scope(src: &str) -> String {
    let toks = lex(src);
    let lines: Vec<&str> = src.lines().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].tok.is_ident("fn") {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        // The body's opening brace (a `;`-terminated signature has none).
        let mut j = i + 1;
        while j < toks.len() && !toks[j].tok.is_punct('{') {
            if toks[j].tok.is_punct(';') {
                break;
            }
            j += 1;
        }
        if j >= toks.len() || !toks[j].tok.is_punct('{') {
            i = j + 1;
            continue;
        }
        // Brace-matched body span.
        let mut depth = 0usize;
        let mut k = j;
        while k < toks.len() {
            if toks[k].tok.is_punct('{') {
                depth += 1;
            } else if toks[k].tok.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            k += 1;
        }
        let body = &toks[j..k.min(toks.len())];
        if body
            .iter()
            .any(|t| t.tok.ident().is_some_and(|s| LANE_MARKERS.contains(&s)))
        {
            let end_line = toks.get(k).map_or(lines.len(), |t| t.line);
            for line in lines.iter().take(end_line.min(lines.len())).skip(start_line - 1) {
                out.push_str(line);
                out.push('\n');
            }
        }
        i = k + 1;
    }
    out
}

/// Line of the matrix key `key:` in the YAML (for findings about missing
/// entries), defaulting to 1.
fn key_line(yaml: &str, key: &str) -> usize {
    let want = format!("{key}:");
    yaml.lines()
        .position(|l| l.trim() == want)
        .map_or(1, |i| i + 1)
}

/// Runs the full R1 cross-check.
pub fn check_r1(inputs: &RegistryInputs) -> Vec<Finding> {
    let mut out = Vec::new();
    let policies = extract_registry(&inputs.policy_src, "registered_policies");
    let estimators = extract_registry(&inputs.estimator_src, "registered_estimators");
    if policies.is_empty() {
        out.push(r1(
            POLICY_REGISTRY_PATH,
            1,
            "could not parse `registered_policies()`; R1 needs the registry to cross-check"
                .into(),
            "registered_policies".into(),
        ));
    }
    if estimators.is_empty() {
        out.push(r1(
            ESTIMATOR_REGISTRY_PATH,
            1,
            "could not parse `registered_estimators()`; R1 needs the registry to cross-check"
                .into(),
            "registered_estimators".into(),
        ));
    }

    let ci_policies = matrix_entries(&inputs.ci_yaml, "policy");
    let ci_estimators = matrix_entries(&inputs.ci_yaml, "estimator");

    // 1. Every registered policy is in the CI policy matrix, verbatim.
    for p in &policies {
        if !ci_policies.iter().any(|e| e.value == p.name) {
            out.push(r1(
                CI_PATH,
                key_line(&inputs.ci_yaml, "policy"),
                format!(
                    "registered policy \"{}\" is missing from the policy-matrix job in ci.yml",
                    p.name
                ),
                p.name.clone(),
            ));
        }
    }
    // 2. Every registered estimator kind leads some CI estimator entry.
    for e in &estimators {
        if !ci_estimators.iter().any(|m| kind_of(&m.value) == e.name) {
            out.push(r1(
                CI_PATH,
                key_line(&inputs.ci_yaml, "estimator"),
                format!(
                    "registered estimator \"{}\" is missing from the estimator matrix in ci.yml",
                    e.name
                ),
                e.name.clone(),
            ));
        }
    }
    // 3. Every CI entry resolves to a registered name (catches renames).
    for m in &ci_policies {
        if !policies.is_empty() && !policies.iter().any(|p| p.name == m.value) {
            out.push(r1(
                CI_PATH,
                m.line,
                format!("CI matrix policy \"{}\" is not a registered policy", m.value),
                m.value.clone(),
            ));
        }
    }
    for m in &ci_estimators {
        if !estimators.is_empty() && !estimators.iter().any(|e| e.name == kind_of(&m.value)) {
            out.push(r1(
                CI_PATH,
                m.line,
                format!("CI matrix estimator \"{}\" is not a registered estimator", m.value),
                m.value.clone(),
            ));
        }
    }
    // 4. Suite coverage. A suite that iterates the registry covers every
    //    name by construction; otherwise the literal name must appear
    //    (case-insensitively, so `EstimatorSpec::Tributary` covers
    //    "tributary").
    let policy_driven = inputs
        .suites
        .iter()
        .any(|(_, text)| text.contains("registered_policies"));
    let estimator_driven = inputs
        .suites
        .iter()
        .any(|(_, text)| text.contains("registered_estimators"));
    for p in &policies {
        let covered = policy_driven
            || inputs.suites.iter().any(|(_, text)| contains_ci(text, &p.name));
        if !covered {
            out.push(r1(
                POLICY_REGISTRY_PATH,
                p.line,
                format!(
                    "registered policy \"{}\" is not exercised by any equivalence/storm \
                     suite ({})",
                    p.name,
                    suite_list(inputs)
                ),
                p.name.clone(),
            ));
        }
    }
    for e in &estimators {
        let covered = estimator_driven
            || inputs.suites.iter().any(|(_, text)| contains_ci(text, &e.name));
        if !covered {
            out.push(r1(
                ESTIMATOR_REGISTRY_PATH,
                e.line,
                format!(
                    "registered estimator \"{}\" is not exercised by any equivalence/storm \
                     suite ({})",
                    e.name,
                    suite_list(inputs)
                ),
                e.name.clone(),
            ));
        }
    }
    // 5. Batched-path coverage: every registered policy is locked
    //    bit-identical through the batched sweep path. The suite iterating
    //    `registered_policies()` covers every name by construction;
    //    otherwise the literal name must appear. Without this, a new
    //    policy can ship exercised only by the serial reference while the
    //    server's default path runs it batched.
    let batch_driven = inputs.batch_suite.contains("registered_policies");
    for p in &policies {
        let covered = batch_driven || contains_ci(&inputs.batch_suite, &p.name);
        if !covered {
            out.push(r1(
                POLICY_REGISTRY_PATH,
                p.line,
                format!(
                    "registered policy \"{}\" is not locked batched≡serial by the \
                     batch-equivalence suite ({BATCH_SUITE_PATH})",
                    p.name
                ),
                p.name.clone(),
            ));
        }
    }
    // 5b. Lane-path coverage: the SoA cohort staging (cross-campaign lane
    //    kernel) is the default transient path, so coverage through the
    //    scalar fallback alone proves nothing about where a policy
    //    actually runs. The suite must contain at least one lane test
    //    (a `fn` exercising `with_soa` / the lane counters), and every
    //    registered policy must be exercised inside that lane scope —
    //    registry iteration covers everything by construction, as usual.
    let lane = lane_scope(&inputs.batch_suite);
    if lane.is_empty() {
        out.push(r1(
            BATCH_SUITE_PATH,
            1,
            "batch-equivalence suite has no lane-path test (no fn exercises the SoA \
             toggle or the lane kernel counters); the batched default ships unlocked"
                .into(),
            "lane-path".into(),
        ));
    } else {
        let lane_driven = lane.contains("registered_policies");
        for p in &policies {
            if !(lane_driven || contains_ci(&lane, &p.name)) {
                out.push(r1(
                    POLICY_REGISTRY_PATH,
                    p.line,
                    format!(
                        "registered policy \"{}\" is not exercised by the lane-path (SoA) \
                         tests of the batch-equivalence suite ({BATCH_SUITE_PATH})",
                        p.name
                    ),
                    p.name.clone(),
                ));
            }
        }
    }
    // 6. Error-frame coverage: every wire error-frame kind the server can
    //    emit is provoked by a TCP suite. Iterating the registry covers
    //    everything by construction, like the policy/estimator rules.
    let kinds = extract_registry(&inputs.wire_src, "registered_error_kinds");
    if kinds.is_empty() {
        out.push(r1(
            WIRE_REGISTRY_PATH,
            1,
            "could not parse `registered_error_kinds()`; R1 needs the error-frame registry \
             to cross-check"
                .into(),
            "registered_error_kinds".into(),
        ));
    }
    let kind_driven = inputs
        .tcp_suites
        .iter()
        .any(|(_, text)| text.contains("registered_error_kinds"));
    for k in &kinds {
        let covered = kind_driven
            || inputs.tcp_suites.iter().any(|(_, text)| contains_ci(text, &k.name));
        if !covered {
            out.push(r1(
                WIRE_REGISTRY_PATH,
                k.line,
                format!(
                    "wire error-frame kind \"{}\" is not exercised by any TCP suite ({})",
                    k.name,
                    inputs
                        .tcp_suites
                        .iter()
                        .map(|(p, _)| p.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
                k.name.clone(),
            ));
        }
    }
    out
}

fn suite_list(inputs: &RegistryInputs) -> String {
    inputs
        .suites
        .iter()
        .map(|(p, _)| p.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

fn contains_ci(haystack: &str, needle: &str) -> bool {
    haystack.to_ascii_lowercase().contains(&needle.to_ascii_lowercase())
}

fn r1(file: &str, line: usize, message: String, snippet: String) -> Finding {
    Finding { rule: "R1", file: file.to_string(), line, message, snippet }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POLICY_SRC: &str = r#"
        impl Approach {
            pub fn registered_policies() -> [&'static str; 2] {
                ["spottune", "hybrid"]
            }
            pub fn other() -> &'static str { "not-a-policy" }
        }
    "#;
    const ESTIMATOR_SRC: &str = r#"
        impl EstimatorSpec {
            pub fn registered_estimators() -> [&'static str; 2] {
                ["oracle", "revpred"]
            }
        }
    "#;
    const CI: &str = "
jobs:
  policy-matrix:
    strategy:
      matrix:
        policy:
          - spottune
          - hybrid
        estimator:
          - oracle(0.9)
          - revpred
";

    const WIRE_SRC: &str = r#"
        pub fn registered_error_kinds() -> [&'static str; 2] {
            ["overloaded", "malformed"]
        }
    "#;

    fn inputs() -> RegistryInputs {
        RegistryInputs {
            policy_src: POLICY_SRC.into(),
            estimator_src: ESTIMATOR_SRC.into(),
            wire_src: WIRE_SRC.into(),
            ci_yaml: CI.into(),
            suites: vec![(
                "crates/core/tests/fault_injection.rs".into(),
                "for name in Approach::registered_policies() {} \
                 for k in EstimatorSpec::registered_estimators() {}"
                    .into(),
            )],
            tcp_suites: vec![(
                "crates/server/tests/tcp_chaos.rs".into(),
                "assert_error_kind(\"overloaded\"); assert_error_kind(\"malformed\");".into(),
            )],
            batch_suite: "\
                fn matrix_is_bit_identical() {\
                    for name in Approach::registered_policies() { run_many(...) }\
                    assert!(stats.kernel_invocations > 0);\
                }"
            .into(),
        }
    }

    #[test]
    fn registry_extraction_stops_at_the_function_brace() {
        let names: Vec<_> = extract_registry(POLICY_SRC, "registered_policies")
            .into_iter()
            .map(|n| n.name)
            .collect();
        assert_eq!(names, vec!["spottune", "hybrid"]);
    }

    #[test]
    fn matrix_entries_strip_quotes_and_stop_at_dedent() {
        let entries: Vec<_> = matrix_entries(CI, "estimator")
            .into_iter()
            .map(|e| e.value)
            .collect();
        assert_eq!(entries, vec!["oracle(0.9)", "revpred"]);
    }

    #[test]
    fn clean_inputs_produce_no_findings() {
        assert_eq!(check_r1(&inputs()), vec![]);
    }

    #[test]
    fn removing_a_policy_from_the_ci_matrix_fails() {
        let mut inp = inputs();
        inp.ci_yaml = inp.ci_yaml.replace("          - hybrid\n", "");
        let f = check_r1(&inp);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("hybrid"), "{}", f[0].message);
        assert_eq!(f[0].file, CI_PATH);
    }

    #[test]
    fn unregistered_matrix_entry_fails() {
        let mut inp = inputs();
        inp.ci_yaml = inp.ci_yaml.replace("- spottune", "- spottune-v2");
        let f = check_r1(&inp);
        assert_eq!(f.len(), 2, "missing registered + unknown entry: {f:?}");
    }

    #[test]
    fn suite_coverage_accepts_registry_driven_or_literal() {
        let mut inp = inputs();
        // Suites mention nothing registry-driven: only "spottune" literally
        // (and estimators not at all).
        inp.suites = vec![(
            "crates/core/tests/policy_equivalence.rs".into(),
            "Campaign::new(Approach::SpotTune { theta }, ...)".into(),
        )];
        let f = check_r1(&inp);
        // "spottune" covered case-insensitively via `Approach::SpotTune`;
        // "hybrid", "oracle", "revpred" are not.
        let missing: Vec<_> = f.iter().map(|f| f.snippet.as_str()).collect();
        assert_eq!(missing, vec!["hybrid", "oracle", "revpred"], "{f:?}");
    }

    #[test]
    fn unparseable_registry_is_itself_a_finding() {
        let mut inp = inputs();
        inp.policy_src = "fn something_else() {}".into();
        let f = check_r1(&inp);
        assert!(f.iter().any(|f| f.message.contains("registered_policies")), "{f:?}");
    }

    #[test]
    fn uncovered_error_kind_fails_and_registry_iteration_covers_all() {
        // Dropping "malformed" from the TCP suite leaves that kind naked.
        let mut inp = inputs();
        inp.tcp_suites =
            vec![("crates/server/tests/tcp_chaos.rs".into(), "\"overloaded\"".into())];
        let f = check_r1(&inp);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].file, WIRE_REGISTRY_PATH);
        assert!(f[0].message.contains("malformed"), "{}", f[0].message);
        // A suite that iterates the registry covers everything.
        inp.tcp_suites = vec![(
            "crates/server/tests/tcp_chaos.rs".into(),
            "for kind in registered_error_kinds() {}".into(),
        )];
        assert_eq!(check_r1(&inp), vec![]);
    }

    #[test]
    fn policy_missing_from_batch_suite_fails() {
        // A batch suite that only names "spottune" literally (and carries
        // no lane test) leaves "hybrid" without a batched≡serial lock and
        // the lane path entirely unlocked.
        let mut inp = inputs();
        inp.batch_suite = "Approach::SpotTune { theta: 0.7 }".into();
        let f = check_r1(&inp);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].file, POLICY_REGISTRY_PATH);
        assert!(f[0].message.contains("hybrid"), "{}", f[0].message);
        assert!(f[0].message.contains(BATCH_SUITE_PATH), "{}", f[0].message);
        assert!(f[1].message.contains("no lane-path test"), "{}", f[1].message);
        // A lane fn iterating the registry covers every policy by
        // construction, for both the batch and the lane checks.
        inp.batch_suite =
            "fn lane() { with_soa(false); for name in Approach::registered_policies() {} }"
                .into();
        assert_eq!(check_r1(&inp), vec![]);
    }

    #[test]
    fn suite_without_a_lane_test_fails_even_when_fully_covered() {
        // Full registry coverage through a scalar-only fn is not enough:
        // nothing proves the SoA default path.
        let mut inp = inputs();
        inp.batch_suite =
            "fn scalar_only() { for name in Approach::registered_policies() {} }".into();
        let f = check_r1(&inp);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].file, BATCH_SUITE_PATH);
        assert!(f[0].message.contains("no lane-path test"), "{}", f[0].message);
    }

    #[test]
    fn policy_covered_only_outside_the_lane_scope_fails() {
        // "hybrid" appears in the suite — but only in a scalar fn. The
        // batched≡serial check passes; the lane-path check must not.
        let mut inp = inputs();
        inp.batch_suite = "\
            fn scalar_matrix() { Approach::Hybrid { theta: 0.7, max_revocations: 3 }; }\n\
            fn lane_ab() { with_soa(false); Approach::SpotTune { theta: 0.7 }; \
                assert!(stats.kernel_invocations > 0); }\n"
            .into();
        let f = check_r1(&inp);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].file, POLICY_REGISTRY_PATH);
        assert!(f[0].message.contains("hybrid"), "{}", f[0].message);
        assert!(f[0].message.contains("lane-path"), "{}", f[0].message);
    }

    #[test]
    fn lane_scope_extracts_only_marker_bodies() {
        let src = "\
            fn plain() { serial_only(); }\n\
            fn lane() { runner.with_soa(false); \"migration-aware\"; }\n";
        let scope = lane_scope(src);
        assert!(scope.contains("migration-aware"), "{scope}");
        assert!(!scope.contains("serial_only"), "{scope}");
        assert_eq!(lane_scope("fn plain() { serial_only(); }"), "");
    }

    #[test]
    fn unparseable_error_kind_registry_is_itself_a_finding() {
        let mut inp = inputs();
        inp.wire_src = "fn something_else() {}".into();
        let f = check_r1(&inp);
        assert!(
            f.iter().any(|f| f.message.contains("registered_error_kinds")),
            "{f:?}"
        );
    }
}
