//! The token-pattern rules: D1 (wall-clock/entropy), D2 (hash-order
//! iteration), D3 (float equality), P1 (panic paths), U1 (`unsafe`
//! confinement). Each rule has a stable ID, a one-line summary for
//! listings, and a long `--explain` text documenting why the pattern is
//! banned and what to do instead.

use crate::lexer::{lex, test_regions, Spanned, Tok};

/// One lint finding, machine-readable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID (`D1`, `D2`, `D3`, `P1`, `R1`, `U1`).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// What was matched and why it matters.
    pub message: String,
    /// The source line the finding sits on (trimmed); allowlist entries
    /// match against this, which keeps them stable across line-number
    /// drift.
    pub snippet: String,
}

/// Static rule metadata, shared by `--list-rules` and `--explain`.
pub struct RuleInfo {
    pub id: &'static str,
    pub summary: &'static str,
    pub explain: &'static str,
}

/// Every rule spotlint knows, in ID order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        summary: "wall-clock/entropy source in a determinism-critical crate",
        explain: "\
D1 — nondeterministic input sources.

The simulation core is locked by bit-identical equivalence suites
(tick≡event, policy/estimator defaults, fault-plan replay). Those suites
only hold if every result is a pure function of (request, scenario, seed).
Reading the wall clock (`SystemTime::now`, `Instant::now`), ambient
entropy (`thread_rng`, `from_entropy`) or the process environment
(`std::env::var`, `env::args`) inside `core`/`cloud`/`market`/`revpred`/
`earlycurve` injects outside state into that function.

Instead: thread simulated time (`SimTime`/`SimDur`) and seeds explicitly;
derive per-decision randomness from `spottune_market::seeding` (splitmix64
of (seed, coordinates)); read configuration at the binary boundary
(`crates/bench`) and pass it down as values.

Timing for *measurement* belongs in `crates/bench`, which is not scanned.",
    },
    RuleInfo {
        id: "D2",
        summary: "HashMap/HashSet in a determinism-critical crate (iteration order can escape)",
        explain: "\
D2 — hash-order containers in determinism-critical crates.

`std::collections::HashMap`/`HashSet` iterate in randomized order (SipHash
with a per-process key). Any iteration — `values()`, `keys()`, `iter()`,
`Debug` formatting, `min_by_key` tie-breaking, eviction victim selection —
can leak that order into results, logs, or cache behaviour, breaking the
bit-identity invariants the equivalence suites enforce.

Instead: use `BTreeMap`/`BTreeSet` (deterministic key order), or collect
and sort before iterating. Pure point lookups are *still* flagged: the
next edit adds an innocent-looking iteration, and the container type is
the cheap place to make order a non-issue. If a hash container is truly
required, allowlist the audited line in `spotlint.allow` with a comment.",
    },
    RuleInfo {
        id: "D3",
        summary: "float == / != comparison in core/earlycurve",
        explain: "\
D3 — exact float equality in `core`/`earlycurve`.

Comparing floats with `==`/`!=` against a float literal is almost always a
rounding bug waiting to happen: a value that is mathematically equal can
differ in the last ulp after reassociation, and the comparison silently
flips. In the engine and the curve fitter these comparisons guard
numerical pivots and thresholds where the failure mode is a wrong
provisioning decision, not a crash.

Instead: compare against an explicit tolerance (`(a - b).abs() < EPS`),
or restructure so the sentinel is not a float. Exact-zero checks that are
*intentional* (e.g. a Gaussian-elimination pivot guard, where any nonzero
value is usable and exact zero is the only singular case) are legitimate:
allowlist them in `spotlint.allow` with the audit rationale.

Test code is exempt — the equivalence suites compare floats bit-for-bit
on purpose.",
    },
    RuleInfo {
        id: "P1",
        summary: "unwrap/expect/panic! in the server request path, TCP front-end, wire decode, or client",
        explain: "\
P1 — panics reachable from untrusted input.

`spottune_core::wire` decodes bytes that arrive from outside the process,
`spottune_server` (the core pool and the `net` TCP front-end) executes
whatever decoded, and `spottune_client` parses whatever the server sent
back. A panic in any of these places turns one malformed frame into a
dropped worker, a poisoned lock, or a wedged client stream. The decode
path must return `WireError` for every malformed input, and the request
path must degrade per-request, never per-process.

Instead: `?` with a typed error on the decode side; validation at the
submission boundary (`CampaignRequest::validate`,
`CampaignServer::submit_checked`) on the server side. Deliberate,
documented panics (propagating a worker panic at shutdown, resource
exhaustion at startup) are audited via `spotlint.allow`.

Test code is exempt.",
    },
    RuleInfo {
        id: "R1",
        summary: "registry/CI/test-suite coverage cross-check",
        explain: "\
R1 — every registered policy and estimator stays covered.

The policy registry (`Approach::registered_policies`) and the estimator
registry (`EstimatorSpec::registered_estimators`) are the workspace's
source of truth for what the engine can run. R1 parses both registries
from source and cross-checks:

  1. every registered policy is an entry of the `policy:` matrix of the
     `policy-matrix` job in `.github/workflows/ci.yml`;
  2. every registered estimator kind leads an entry of the `estimator:`
     matrix (`oracle(0.9)` covers `oracle`);
  3. every matrix entry resolves to a registered name (catches renames);
  4. every registered name is exercised by the equivalence/storm-survival
     suites — a suite that iterates `registered_policies()` /
     `registered_estimators()` covers the whole registry by construction,
     which is the preferred pattern;
  5. every registered policy is locked batched≡serial by the
     batch-equivalence suite (`crates/core/tests/batch_equivalence.rs`),
     so the server's batched default can never ship a policy whose
     batched path was not proven bit-identical;
  6. the batch-equivalence suite has a *lane-path* test — one whose body
     exercises the SoA cohort staging (`with_soa`, the lane kernel
     counters) — and every registered policy is exercised by those lane
     tests specifically. The SoA lane kernel is the default transient
     path; a policy covered only by the scalar fallback is unlocked where
     it actually runs;
  7. every wire error-frame kind (`registered_error_kinds()` in
     `crates/core/src/wire.rs`) is provoked by a TCP suite
     (`tcp_chaos.rs` / `tcp_soak.rs`) — a frame kind nothing can trigger
     over a real socket is a frame kind clients cannot trust.

Registering a new policy, estimator, or error-frame kind without
extending the CI matrix and the suites fails the lint, so coverage can
never silently rot.",
    },
    RuleInfo {
        id: "U1",
        summary: "`unsafe` outside the audited kernel modules",
        explain: "\
U1 — `unsafe` stays confined to the kernel modules.

The lane kernels (`crates/earlycurve/src/kernel.rs`, staged through
`crates/core/src/soa.rs`) are the one place this workspace tolerates
`unsafe`: a hot loop may eventually need `get_unchecked` or explicit SIMD
intrinsics, and those files are small, heavily tested (bit-identity
proptests against the scalar reference, the batch-equivalence matrix) and
reviewed as a unit. Everywhere else, `unsafe` undermines the guarantees
the equivalence suites lean on — a stray out-of-bounds read is
nondeterminism D1 can't see.

As of this rule's introduction the kernels need **zero** unsafe — they
reach the vectorizer through chunked `[f64; LANE_WIDTH]` arrays — so any
new `unsafe` is a deliberate decision. Inside a kernel module it passes
the lint but still needs the usual review; outside, either move the code
into a kernel module or allowlist the audited line in `spotlint.allow`
with a rationale comment (why it is sound, why safe code can't do it).

Test code is exempt, like every token rule.",
    },
];

/// Looks up a rule's metadata by ID.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id.eq_ignore_ascii_case(id))
}

/// Context handed to the token rules for one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub path: &'a str,
    /// Raw source lines, for snippets.
    pub lines: Vec<&'a str>,
    /// Token stream.
    pub toks: Vec<Spanned>,
    /// `true` at index i when the token belongs to `#[cfg(test)]` code.
    pub in_test: Vec<bool>,
}

impl<'a> FileCtx<'a> {
    /// Lexes `src` and precomputes test regions. Files under a `tests/`
    /// directory are test code in their entirety.
    pub fn new(path: &'a str, src: &'a str) -> Self {
        let toks = lex(src);
        let mut in_test = vec![is_test_path(path); toks.len()];
        if !is_test_path(path) {
            for (s, e) in test_regions(&toks) {
                for flag in in_test.iter_mut().take(e + 1).skip(s) {
                    *flag = true;
                }
            }
        }
        FileCtx { path, lines: src.lines().collect(), toks, in_test }
    }

    fn snippet(&self, line: usize) -> String {
        self.lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }

    fn finding(&self, rule: &'static str, line: usize, message: String) -> Finding {
        Finding {
            rule,
            file: self.path.to_string(),
            line,
            message,
            snippet: self.snippet(line),
        }
    }
}

fn is_test_path(path: &str) -> bool {
    path.contains("/tests/") || path.starts_with("tests/")
}

/// D1: wall-clock, entropy and environment reads.
pub fn check_d1(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(name) = t.tok.ident() else { continue };
        let msg = match name {
            "SystemTime" => Some("`SystemTime` reads the wall clock; use simulated `SimTime`"),
            "Instant" if next_is_path_call(ctx, i, "now") => {
                Some("`Instant::now()` reads the wall clock; timing belongs in crates/bench")
            }
            "thread_rng" => {
                Some("`thread_rng()` is ambient entropy; derive randomness from seeding::*")
            }
            "from_entropy" => {
                Some("`from_entropy()` is ambient entropy; seed explicitly")
            }
            "env" if next_is_env_read(ctx, i) => {
                Some("process-environment read; take configuration as explicit values")
            }
            _ => None,
        };
        if let Some(msg) = msg {
            out.push(ctx.finding("D1", t.line, msg.to_string()));
        }
    }
    out
}

/// `ident :: callee` immediately after token `i`.
fn next_is_path_call(ctx: &FileCtx, i: usize, callee: &str) -> bool {
    ctx.toks.get(i + 1).is_some_and(|t| t.tok.is_op("::"))
        && ctx.toks.get(i + 2).is_some_and(|t| t.tok.is_ident(callee))
}

fn next_is_env_read(ctx: &FileCtx, i: usize) -> bool {
    ["var", "vars", "var_os", "args", "args_os"]
        .iter()
        .any(|callee| next_is_path_call(ctx, i, callee))
}

/// D2: hash-order containers.
pub fn check_d2(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if let Some(name @ ("HashMap" | "HashSet")) = t.tok.ident() {
            out.push(ctx.finding(
                "D2",
                t.line,
                format!(
                    "`{name}` iteration order is nondeterministic; use BTree{} or sorted iteration",
                    &name[4..]
                ),
            ));
        }
    }
    out
}

/// D3: `==`/`!=` with a float literal on either side, or against NAN.
pub fn check_d3(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        let op = match &t.tok {
            Tok::Op(o @ ("==" | "!=")) => *o,
            _ => continue,
        };
        let prev_float = i > 0 && operand_is_float(&ctx.toks, i - 1, true);
        let next_float = operand_is_float(&ctx.toks, i + 1, false);
        if prev_float || next_float {
            out.push(ctx.finding(
                "D3",
                t.line,
                format!(
                    "float `{op}` comparison; compare with an explicit tolerance or \
                     allowlist the audited exact check"
                ),
            ));
        }
    }
    out
}

/// Whether the operand adjacent to a comparison is a float literal or the
/// NAN constant. `before` looks left of the operator (operand *ends* at
/// `j`), otherwise right (operand *starts* at `j`, possibly behind a
/// unary minus or a path like `f64::NAN`).
fn operand_is_float(toks: &[Spanned], j: usize, before: bool) -> bool {
    let Some(t) = toks.get(j) else { return false };
    match &t.tok {
        Tok::Float(_) => true,
        Tok::Ident(s) if s == "NAN" => true,
        Tok::Punct('-') if !before => operand_is_float(toks, j + 1, false),
        Tok::Ident(s) if !before && (s == "f64" || s == "f32") => {
            toks.get(j + 1).is_some_and(|t| t.tok.is_op("::"))
                && toks.get(j + 2).is_some_and(|t| t.tok.is_ident("NAN"))
        }
        _ => false,
    }
}

/// P1: `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`,
/// `unimplemented!`.
pub fn check_p1(ctx: &FileCtx) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        let Some(name) = t.tok.ident() else { continue };
        let finding = match name {
            "unwrap" | "expect" => {
                // Method call: preceded by `.`, followed by `(`. For
                // `expect`, additionally require a string-literal message
                // argument — that is the panicking Option/Result form, as
                // opposed to e.g. a parser's own `fn expect(&mut self, b: u8)
                // -> Result<..>` which returns the error instead of dying.
                let method = i > 0
                    && ctx.toks[i - 1].tok.is_punct('.')
                    && ctx.toks.get(i + 1).is_some_and(|t| t.tok.is_punct('('));
                let panicking = method
                    && match name {
                        "unwrap" => {
                            ctx.toks.get(i + 2).is_some_and(|t| t.tok.is_punct(')'))
                        }
                        _ => ctx
                            .toks
                            .get(i + 2)
                            .is_some_and(|t| matches!(t.tok, Tok::Str(_))),
                    };
                panicking.then(|| {
                    format!("`.{name}()` can panic on malformed input; return a typed error")
                })
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                let mac = ctx.toks.get(i + 1).is_some_and(|t| t.tok.is_punct('!'));
                mac.then(|| {
                    format!("`{name}!` in a request path takes down the worker; return an error")
                })
            }
            _ => None,
        };
        if let Some(message) = finding {
            out.push(ctx.finding("P1", t.line, message));
        }
    }
    out
}

/// The audited homes of `unsafe` (U1): the lane kernel and its SoA
/// staging layer. Workspace-relative paths, forward slashes.
pub const KERNEL_MODULES: &[&str] =
    &["crates/earlycurve/src/kernel.rs", "crates/core/src/soa.rs"];

/// U1: the `unsafe` keyword anywhere outside [`KERNEL_MODULES`].
///
/// One finding per `unsafe` token — block, fn, impl or trait position all
/// count; holding an unsafe obligation is the reviewable event, not the
/// particular syntax carrying it.
pub fn check_u1(ctx: &FileCtx) -> Vec<Finding> {
    if KERNEL_MODULES.contains(&ctx.path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if t.tok.is_ident("unsafe") {
            out.push(ctx.finding(
                "U1",
                t.line,
                "`unsafe` outside the kernel modules; move it into a kernel module or \
                 allowlist the audited line"
                    .to_string(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(path: &'a str, src: &'a str) -> FileCtx<'a> {
        FileCtx::new(path, src)
    }

    #[test]
    fn d1_flags_clock_entropy_env() {
        let src = r#"
            fn f() {
                let t = std::time::SystemTime::now();
                let i = Instant::now();
                let r = rand::thread_rng();
                let v = std::env::var("X");
            }
        "#;
        let f = check_d1(&ctx("crates/core/src/x.rs", src));
        assert_eq!(f.len(), 4, "{f:?}");
    }

    #[test]
    fn d1_ignores_instant_without_now_and_env_struct() {
        let src = "fn f(deadline: Instant, env: &Env) { env.get(1); }";
        assert!(check_d1(&ctx("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn d2_flags_hash_containers_outside_tests() {
        let src = r#"
            use std::collections::HashMap;
            struct S { m: HashMap<u32, u32> }
            #[cfg(test)]
            mod tests {
                fn t() { let h: std::collections::HashSet<u8> = Default::default(); }
            }
        "#;
        let f = check_d2(&ctx("crates/market/src/x.rs", src));
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "D2"));
    }

    #[test]
    fn d3_flags_float_literal_comparisons_only() {
        let src = r#"
            fn f(x: f64, n: u64) -> bool {
                let a = x == 0.0;
                let b = 1.5 != x;
                let c = x == f64::NAN;
                let d = n == 0;       // integer: fine
                let e = x == -0.5;
                (x - 0.3).abs() < 1e-9
            }
        "#;
        let f = check_d3(&ctx("crates/core/src/x.rs", src));
        assert_eq!(f.len(), 4, "{f:?}");
    }

    #[test]
    fn p1_flags_method_panics_and_macros() {
        let src = r#"
            fn f(o: Option<u8>) -> u8 {
                let a = o.unwrap();
                let b = o.expect("there");
                if a > b { panic!("no"); }
                unreachable!()
            }
            fn fine(o: Option<u8>) -> u8 { o.unwrap_or(0) }
        "#;
        let f = check_p1(&ctx("crates/server/src/lib.rs", src));
        assert_eq!(f.len(), 4, "{f:?}");
    }

    #[test]
    fn tests_directories_are_fully_exempt() {
        let src = "fn t() { x.unwrap(); let m: HashMap<u8,u8> = h(); assert!(a == 0.0); }";
        let c = ctx("crates/core/tests/equiv.rs", src);
        assert!(check_p1(&c).is_empty());
        assert!(check_d2(&c).is_empty());
        assert!(check_d3(&c).is_empty());
    }

    #[test]
    fn u1_flags_unsafe_in_every_position_outside_kernels() {
        let src = r#"
            unsafe fn raw(p: *const f64) -> f64 { *p }
            fn f(v: &[f64]) -> f64 {
                unsafe { *v.get_unchecked(0) }
            }
            unsafe impl Send for Wrapper {}
        "#;
        let f = check_u1(&ctx("crates/core/src/engine.rs", src));
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|f| f.rule == "U1"));
    }

    #[test]
    fn u1_exempts_kernel_modules_and_test_code() {
        let src = "fn f(v: &[f64]) -> f64 { unsafe { *v.get_unchecked(0) } }";
        for path in KERNEL_MODULES {
            assert!(check_u1(&ctx(path, src)).is_empty(), "{path} is the audited home");
        }
        assert!(check_u1(&ctx("crates/core/tests/equiv.rs", src)).is_empty());
        let gated = "#[cfg(test)] mod tests { fn t() { unsafe { core::hint::unreachable_unchecked() } } }";
        assert!(check_u1(&ctx("crates/core/src/x.rs", gated)).is_empty());
    }

    #[test]
    fn u1_ignores_near_miss_identifiers_and_strings() {
        let src = r#"
            // unsafe in a comment is not code
            fn unsafe_free_len(s: &str) -> usize { s.len() }
            fn describe() -> &'static str { "unsafe spelled in a string" }
        "#;
        assert!(check_u1(&ctx("crates/core/src/x.rs", src)).is_empty());
    }

    #[test]
    fn every_rule_has_explain_text() {
        for r in RULES {
            assert!(!r.explain.is_empty() && !r.summary.is_empty(), "{}", r.id);
        }
        assert!(rule_info("d2").is_some(), "lookup is case-insensitive");
        assert!(rule_info("Z9").is_none());
    }
}
