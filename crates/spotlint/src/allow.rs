//! The audited-exception allowlist (`spotlint.allow`).
//!
//! Format — one entry per line:
//!
//! ```text
//! # why this exception is sound (comments start with '#')
//! RULE  path/to/file.rs  substring of the offending source line
//! ```
//!
//! An entry suppresses a finding when all three match: the rule ID, the
//! workspace-relative path, and the *source line* containing the given
//! substring. Matching on line content instead of line numbers keeps
//! entries stable across unrelated edits; if the audited line itself
//! changes, the entry goes stale and spotlint reports it, forcing a
//! re-audit.

use crate::rules::Finding;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub file: String,
    pub pattern: String,
    /// Line in the allowlist file, for stale-entry reporting.
    pub line: usize,
}

/// Parses `spotlint.allow` text. Malformed lines (fewer than three
/// fields) are returned separately so the caller can report them instead
/// of silently ignoring an intended suppression.
pub fn parse(text: &str) -> (Vec<AllowEntry>, Vec<usize>) {
    let mut entries = Vec::new();
    let mut malformed = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, char::is_whitespace);
        match (parts.next(), parts.next(), parts.next()) {
            (Some(rule), Some(file), Some(pattern)) if !pattern.trim().is_empty() => {
                entries.push(AllowEntry {
                    rule: rule.to_string(),
                    file: file.to_string(),
                    pattern: pattern.trim().to_string(),
                    line: i + 1,
                });
            }
            _ => malformed.push(i + 1),
        }
    }
    (entries, malformed)
}

/// Splits findings into (kept, suppressed) and reports which entries
/// never matched anything (stale — the audited line is gone or changed).
pub fn apply(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
) -> (Vec<Finding>, Vec<Finding>, Vec<AllowEntry>) {
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    let mut used = vec![false; entries.len()];
    for f in findings {
        let hit = entries.iter().position(|e| {
            e.rule == f.rule && e.file == f.file && f.snippet.contains(&e.pattern)
        });
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed.push(f);
            }
            None => kept.push(f),
        }
    }
    let stale = entries
        .iter()
        .zip(&used)
        .filter(|(_, u)| !**u)
        .map(|(e, _)| e.clone())
        .collect();
    (kept, suppressed, stale)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, file: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            file: file.into(),
            line: 10,
            message: "m".into(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn parse_skips_comments_and_reports_malformed() {
        let (entries, malformed) = parse(
            "# audited\nD3 crates/earlycurve/src/solver.rs factor == 0.0\n\nP1-only-two-fields x\n",
        );
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "D3");
        assert_eq!(malformed, vec![4]);
    }

    #[test]
    fn apply_matches_rule_file_and_snippet() {
        let (entries, _) = parse("D3 a.rs factor == 0.0\nP1 b.rs .expect(\"spawn\")\n");
        let fs = vec![
            finding("D3", "a.rs", "if factor == 0.0 {"),
            finding("D3", "other.rs", "if factor == 0.0 {"),
            finding("P1", "b.rs", "x.unwrap();"),
        ];
        let (kept, suppressed, stale) = apply(fs, &entries);
        assert_eq!(kept.len(), 2, "wrong file + unmatched snippet stay");
        assert_eq!(suppressed.len(), 1);
        assert_eq!(stale.len(), 1, "the P1 entry matched nothing");
        assert_eq!(stale[0].file, "b.rs");
    }
}
