//! `spotlint` CLI.
//!
//! ```text
//! spotlint --check            # human-readable findings, exit 1 if dirty
//! spotlint --check --json     # machine-readable report for CI
//! spotlint --explain D2       # rule rationale and how to fix / allowlist
//! spotlint --list-rules       # one line per rule
//! ```
//!
//! Exit codes: 0 clean, 1 findings (or stale/malformed allowlist entries),
//! 2 usage or I/O error.

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

use spotlint::rules::{rule_info, RULES};
use spotlint::{find_root, lint_workspace, report_to_json};

const USAGE: &str = "\
usage: spotlint [--check] [--json] [--root PATH] | --explain RULE | --list-rules

  --check        lint the workspace (default action)
  --json         emit the report as a single JSON object
  --root PATH    workspace root (default: discovered from the current dir)
  --explain RULE print the rationale and remediation for a rule ID
  --list-rules   list all rule IDs with their one-line summaries
";

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let mut json = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut explain: Option<String> = None;
    let mut list_rules = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => {}
            "--json" => json = true,
            "--root" => match it.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => return usage_error("--root needs a path"),
            },
            "--explain" => match it.next() {
                Some(r) => explain = Some(r.clone()),
                None => return usage_error("--explain needs a rule ID"),
            },
            "--list-rules" => list_rules = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument: {other}")),
        }
    }

    if list_rules {
        for r in RULES {
            println!("{:<4} {}", r.id, r.summary);
        }
        return ExitCode::SUCCESS;
    }
    if let Some(id) = explain {
        return match rule_info(&id) {
            Some(r) => {
                println!("{} — {}\n\n{}", r.id, r.summary, r.explain);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("spotlint: unknown rule {id:?}; try --list-rules");
                ExitCode::from(2)
            }
        };
    }

    let root = match root_arg.or_else(|| {
        env::current_dir().ok().and_then(|d| find_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("spotlint: cannot locate the workspace root; pass --root");
            return ExitCode::from(2);
        }
    };

    let report = match lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("spotlint: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        println!("{}", report_to_json(&report));
    } else {
        for f in &report.findings {
            println!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
            println!("    {}", f.snippet.trim());
        }
        for e in &report.stale_allow {
            println!(
                "spotlint.allow:{}: stale entry ({} {} \"{}\") matches nothing — \
                 the audited line changed; re-audit or remove it",
                e.line, e.rule, e.file, e.pattern
            );
        }
        for l in &report.malformed_allow {
            println!("spotlint.allow:{l}: malformed entry (need RULE FILE PATTERN)");
        }
        println!(
            "spotlint: {} file(s) scanned, {} finding(s), {} suppressed by spotlint.allow",
            report.files_scanned,
            report.findings.len(),
            report.suppressed.len()
        );
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("spotlint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
