// Fixture: exact float-literal comparisons (the rule targets comparisons
// against literals/NAN — ident-vs-ident compares need type knowledge a
// token rule does not have).
pub fn converged(error: f64) -> bool {
    error == 0.0
}

pub fn still_moving(delta: f64) -> bool {
    delta != 0.0
}
