// Fixture: deliberate U1 violations — `unsafe` in every syntactic
// position, in a file that is not a kernel module. None of this is
// compiled; it is lexed as data by tests/fixtures.rs.

pub struct RawView {
    ptr: *const f64,
    len: usize,
}

/// Block position: the classic hot-loop "bounds checks are expensive"
/// shortcut that belongs in a kernel module if it belongs anywhere.
pub fn sum_unchecked(v: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..v.len() {
        acc += unsafe { *v.get_unchecked(i) };
    }
    acc
}

/// Fn position: an unsafe API surface leaking out of the kernel layer.
pub unsafe fn read_raw(view: &RawView, i: usize) -> f64 {
    *view.ptr.add(i)
}

/// Impl position: hand-asserted thread-safety obligations.
unsafe impl Send for RawView {}
