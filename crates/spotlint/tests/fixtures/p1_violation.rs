// Fixture: panicking escape hatches on the request path.
pub fn decode(bytes: &[u8]) -> u64 {
    let text = std::str::from_utf8(bytes).unwrap();
    let value = text.parse::<u64>().expect("request carries a number");
    if value == 0 {
        panic!("zero is not a valid request id");
    }
    match value {
        u64::MAX => unreachable!("sentinel never reaches decode"),
        v => v,
    }
}
