// Fixture: negative control — near-miss spellings of every rule's pattern,
// none of which may be flagged.
use std::collections::BTreeMap;
use std::time::Instant;

pub struct Clock {
    now: Instant, // stored deadline, never sampled
}

pub fn lookup(map: &BTreeMap<u64, f64>, key: u64) -> f64 {
    // `unwrap_or` is not `unwrap`; an epsilon compare is not `==`.
    let value = map.get(&key).copied().unwrap_or(0.0);
    if (value - 1.0).abs() < 1e-9 {
        return 1.0;
    }
    value
}

pub fn describe() -> &'static str {
    // Pattern words inside strings and comments are invisible to the
    // lexer: HashMap, thread_rng, panic!, x.unwrap(), 1.0 == 2.0,
    // unsafe { }
    "SystemTime::now() spelled in a string is data, not code"
}

/// An identifier *containing* "unsafe" is not the keyword; safe wrappers
/// advertising their safety must not trip U1.
pub fn unsafe_free_sum(v: &[f64]) -> f64 {
    v.iter().sum()
}

#[cfg(test)]
mod tests {
    // Test code is exempt: exact comparisons and unwraps are the point of
    // a bit-identity assertion.
    #[test]
    fn exact_compare_allowed_here() {
        let x: f64 = 0.5;
        assert!(x == 0.5);
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        let m = std::collections::HashMap::<u8, u8>::new();
        assert!(m.is_empty());
    }
}
