// Fixture: every D1 determinism-source pattern, outside test code.
use std::time::{Instant, SystemTime};

pub fn wall_clock() -> SystemTime {
    SystemTime::now()
}

pub fn monotonic() -> Instant {
    Instant::now()
}

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng();
    rng.next_u64()
}

pub fn ambient_config() -> Option<String> {
    std::env::var("SPOTTUNE_SEED").ok()
}
