// Fixture: hash-order containers in a determinism-critical crate.
use std::collections::{HashMap, HashSet};

pub struct Ledger {
    balances: HashMap<String, f64>,
    seen: HashSet<u64>,
}

impl Ledger {
    pub fn total(&self) -> f64 {
        // Iteration order escapes into the sum's rounding.
        self.balances.values().sum()
    }
}
