//! Per-rule fixture detection (ISSUE 7 acceptance): every rule must flag
//! its deliberately-violating fixture, and the clean fixture — built from
//! near-miss spellings of every pattern — must produce nothing.
//!
//! Fixtures are data, not compiled test code; they are lexed under a fake
//! in-scope path because real `tests/` paths are exempt by design.

use spotlint::rules::{
    check_d1, check_d2, check_d3, check_p1, check_u1, FileCtx, Finding, KERNEL_MODULES,
};

/// Lexes a fixture as if it lived in a determinism-critical crate.
fn ctx(src: &str) -> FileCtx<'_> {
    FileCtx::new("crates/core/src/fixture.rs", src)
}

fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn d1_fixture_is_flagged_on_every_source() {
    let src = include_str!("fixtures/d1_violation.rs");
    let findings = check_d1(&ctx(src));
    // `SystemTime` is flagged at every mention (type positions included —
    // holding one implies someone sampled it), so more findings than
    // source families is expected.
    assert!(findings.len() >= 4, "{findings:#?}");
    for f in &findings {
        assert_eq!(f.rule, "D1");
        assert!(f.line > 0 && !f.snippet.is_empty());
    }
    // All four determinism-source families are individually caught.
    let snippets: String =
        findings.iter().map(|f| f.snippet.as_str()).collect::<Vec<_>>().join("\n");
    for pat in ["SystemTime::now", "Instant::now", "thread_rng", "env::var"] {
        assert!(snippets.contains(pat), "missing {pat} in {snippets}");
    }
}

#[test]
fn d2_fixture_is_flagged_for_both_container_kinds() {
    let src = include_str!("fixtures/d2_violation.rs");
    let findings = check_d2(&ctx(src));
    assert!(findings.len() >= 2, "{findings:#?}");
    let snippets: String =
        findings.iter().map(|f| f.snippet.as_str()).collect::<Vec<_>>().join("\n");
    assert!(snippets.contains("HashMap") && snippets.contains("HashSet"));
    assert!(rules_of(&findings).iter().all(|r| *r == "D2"));
}

#[test]
fn d3_fixture_is_flagged_for_eq_and_ne() {
    let src = include_str!("fixtures/d3_violation.rs");
    let findings = check_d3(&ctx(src));
    assert_eq!(findings.len(), 2, "{findings:#?}");
    assert!(findings.iter().any(|f| f.snippet.contains("==")));
    assert!(findings.iter().any(|f| f.snippet.contains("!=")));
}

#[test]
fn p1_fixture_is_flagged_for_every_escape_hatch() {
    let src = include_str!("fixtures/p1_violation.rs");
    let findings = check_p1(&ctx(src));
    assert_eq!(findings.len(), 4, "{findings:#?}");
    let snippets: String =
        findings.iter().map(|f| f.snippet.as_str()).collect::<Vec<_>>().join("\n");
    for pat in [".unwrap()", ".expect(", "panic!", "unreachable!"] {
        assert!(snippets.contains(pat), "missing {pat} in {snippets}");
    }
}

#[test]
fn u1_fixture_is_flagged_in_every_unsafe_position() {
    let src = include_str!("fixtures/u1_violation.rs");
    let findings = check_u1(&ctx(src));
    // Block, fn and impl positions each carry one `unsafe` token.
    assert_eq!(findings.len(), 3, "{findings:#?}");
    for f in &findings {
        assert_eq!(f.rule, "U1");
        assert!(f.line > 0 && f.snippet.contains("unsafe"), "{f:?}");
    }
}

#[test]
fn u1_fixture_is_exempt_inside_a_kernel_module() {
    // The same violating source lexed at a kernel-module path is the
    // audited home of `unsafe` — nothing is flagged there.
    let src = include_str!("fixtures/u1_violation.rs");
    for path in KERNEL_MODULES {
        let c = FileCtx::new(path, src);
        assert!(check_u1(&c).is_empty(), "{path} must be exempt");
    }
}

#[test]
fn clean_fixture_produces_no_findings() {
    let src = include_str!("fixtures/clean.rs");
    let c = ctx(src);
    let mut findings = check_d1(&c);
    findings.extend(check_d2(&c));
    findings.extend(check_d3(&c));
    findings.extend(check_p1(&c));
    findings.extend(check_u1(&c));
    assert!(findings.is_empty(), "near-misses must not be flagged: {findings:#?}");
}

#[test]
fn fixtures_under_a_tests_path_are_exempt() {
    // The same violating source lexed at a tests/ path yields nothing —
    // equivalence suites intentionally use exact compares and unwraps.
    let src = include_str!("fixtures/d3_violation.rs");
    let c = FileCtx::new("crates/core/tests/fixture.rs", src);
    assert!(check_d3(&c).is_empty());
}
