//! The lint applied to its own workspace (ISSUE 7 acceptance): the tree
//! must be clean modulo the audited entries in `spotlint.allow`, and the
//! R1 registry/CI cross-check must actually fail when a registered policy
//! is dropped from the live CI matrix.

use spotlint::registry::{check_r1, CI_PATH};
use spotlint::{find_root, lint_workspace, registry_inputs, report_to_json};
use std::path::{Path, PathBuf};

fn root() -> PathBuf {
    find_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root above spotlint")
}

#[test]
fn workspace_is_clean_modulo_the_allowlist() {
    let report = lint_workspace(&root()).expect("lintable workspace");
    assert!(
        report.is_clean(),
        "workspace must lint clean; run `cargo run -p spotlint -- --check` and fix or \
         allowlist (with a rationale) each finding:\n{}",
        report_to_json(&report)
    );
    // The scan really covered the determinism-critical crates plus the
    // request path, and the allowlist is live, not vestigial.
    assert!(report.files_scanned >= 20, "only {} files scanned", report.files_scanned);
    assert!(!report.suppressed.is_empty(), "spotlint.allow carries audited entries");
}

#[test]
fn every_suppression_cites_a_distinct_audited_line() {
    let report = lint_workspace(&root()).expect("lintable workspace");
    // Stale-entry detection is what keeps the allowlist honest; if two
    // suppressed findings collapsed onto one entry, an audit could hide a
    // new violation. Guard the 1:1 shape.
    let mut keys: Vec<(String, usize)> = report
        .suppressed
        .iter()
        .map(|f| (format!("{}:{}", f.file, f.rule), f.line))
        .collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), report.suppressed.len(), "{keys:#?}");
}

#[test]
fn removing_a_registered_policy_from_live_ci_fails_r1() {
    // Against the real registry sources and the real ci.yml — not a toy
    // fixture — so the acceptance holds for the workspace as it ships.
    let mut inputs = registry_inputs(&root()).expect("readable registry inputs");
    assert!(check_r1(&inputs).is_empty(), "live workspace starts R1-clean");

    let doctored: String = inputs
        .ci_yaml
        .lines()
        .filter(|l| l.trim() != "- bid-aware")
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(doctored, inputs.ci_yaml, "the policy matrix lists bid-aware");
    inputs.ci_yaml = doctored;

    let findings = check_r1(&inputs);
    assert!(
        findings.iter().any(|f| {
            f.rule == "R1" && f.file == CI_PATH && f.message.contains("bid-aware")
        }),
        "dropping bid-aware from the CI matrix must be flagged: {findings:#?}"
    );
}

#[test]
fn removing_a_registered_estimator_from_live_ci_fails_r1() {
    let mut inputs = registry_inputs(&root()).expect("readable registry inputs");
    let doctored: String = inputs
        .ci_yaml
        .lines()
        .filter(|l| l.trim() != "- tributary")
        .collect::<Vec<_>>()
        .join("\n");
    assert_ne!(doctored, inputs.ci_yaml, "the estimator matrix lists tributary");
    inputs.ci_yaml = doctored;
    let findings = check_r1(&inputs);
    assert!(
        findings.iter().any(|f| f.rule == "R1" && f.message.contains("tributary")),
        "{findings:#?}"
    );
}
