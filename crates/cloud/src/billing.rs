//! Per-second spot billing with the first-instance-hour refund rule.
//!
//! The paper's cost model (§II.A): "the user is charged at a per-second rate
//! with the spot market price (not the maximum price) with an exception:
//! users can get a full refund if the acquired instance is revoked in its
//! first instance hour."

use serde::{Deserialize, Serialize};
use spottune_market::time::{HOUR, MINUTE};
use spottune_market::{PriceTrace, SimTime};

use crate::vm::VmId;

/// Why a VM's billing period ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EndCause {
    /// The provider reclaimed the VM (market price exceeded max price).
    ProviderRevoked,
    /// The user shut the VM down.
    UserTerminated,
}

/// One finalized billing record for a VM's lifetime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BillRecord {
    /// The VM billed.
    pub vm: VmId,
    /// Instance-type name.
    pub instance_name: String,
    /// Billing period start (launch).
    pub start: SimTime,
    /// Billing period end (revocation or termination).
    pub end: SimTime,
    /// Gross cost of the period at the market price, in USD.
    pub gross: f64,
    /// Amount refunded (0 or `gross`), in USD.
    pub refunded: f64,
    /// How the period ended.
    pub cause: EndCause,
}

impl BillRecord {
    /// Net amount actually charged.
    pub fn net(&self) -> f64 {
        self.gross - self.refunded
    }

    /// Whether the first-hour refund applied.
    pub fn was_free(&self) -> bool {
        self.refunded > 0.0
    }
}

/// Integrates the per-second cost of running over `[start, end)` at the
/// market price, in USD. The trace holds per-minute prices; each minute
/// contributes `price × overlap_seconds / 3600`.
pub fn integrate_cost(trace: &PriceTrace, start: SimTime, end: SimTime) -> f64 {
    if end <= start {
        return 0.0;
    }
    let (s, e) = (start.as_secs(), end.as_secs());
    let mut cost = 0.0;
    let mut m = s / MINUTE;
    loop {
        let m_start = m * MINUTE;
        let m_end = m_start + MINUTE;
        let overlap = e.min(m_end).saturating_sub(s.max(m_start));
        if overlap == 0 && m_start >= e {
            break;
        }
        cost += trace.price_at(SimTime::from_secs(m_start)) * overlap as f64 / HOUR as f64;
        if m_end >= e {
            break;
        }
        m += 1;
    }
    cost
}

/// Computes the finalized bill for a VM lifetime, applying the first-hour
/// refund when the provider revoked the VM within its first hour.
pub fn settle(
    vm: VmId,
    instance_name: &str,
    trace: &PriceTrace,
    start: SimTime,
    end: SimTime,
    cause: EndCause,
) -> BillRecord {
    let gross = integrate_cost(trace, start, end);
    let lifetime = end.since(start).as_secs();
    let refunded = if cause == EndCause::ProviderRevoked && lifetime < HOUR {
        gross
    } else {
        0.0
    };
    BillRecord {
        vm,
        instance_name: instance_name.to_string(),
        start,
        end,
        gross,
        refunded,
        cause,
    }
}

/// Computes the finalized bill for an on-demand VM lifetime: per-second
/// billing at the fixed hourly `rate`, no revocations, no refunds.
pub fn settle_on_demand(
    vm: VmId,
    instance_name: &str,
    rate: f64,
    start: SimTime,
    end: SimTime,
) -> BillRecord {
    let secs = end.since(start).as_secs();
    BillRecord {
        vm,
        instance_name: instance_name.to_string(),
        start,
        end,
        gross: rate * secs as f64 / HOUR as f64,
        refunded: 0.0,
        cause: EndCause::UserTerminated,
    }
}

/// Accumulates finalized bills.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    records: Vec<BillRecord>,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Appends a finalized bill.
    pub fn push(&mut self, record: BillRecord) {
        self.records.push(record);
    }

    /// All finalized bills.
    pub fn records(&self) -> &[BillRecord] {
        &self.records
    }

    /// Total net amount charged, in USD.
    pub fn total_charged(&self) -> f64 {
        self.records.iter().map(BillRecord::net).sum()
    }

    /// Total amount refunded, in USD.
    pub fn total_refunded(&self) -> f64 {
        self.records.iter().map(|r| r.refunded).sum()
    }

    /// Gross spend before refunds, in USD.
    pub fn total_gross(&self) -> f64 {
        self.records.iter().map(|r| r.gross).sum()
    }

    /// Number of VM lifetimes that ended fully refunded.
    pub fn refunded_count(&self) -> usize {
        self.records.iter().filter(|r| r.was_free()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_market::SimDur;

    fn flat_trace(price: f64, minutes: usize) -> PriceTrace {
        PriceTrace::from_minutes(vec![price; minutes])
    }

    #[test]
    fn integration_is_per_second() {
        let t = flat_trace(0.36, 180);
        // 30 minutes at $0.36/h = $0.18.
        let c = integrate_cost(&t, SimTime::ZERO, SimTime::from_mins(30));
        assert!((c - 0.18).abs() < 1e-12);
        // Sub-minute granularity: 30 seconds = $0.003.
        let c = integrate_cost(&t, SimTime::ZERO, SimTime::from_secs(30));
        assert!((c - 0.003).abs() < 1e-12);
        // Degenerate interval.
        assert_eq!(integrate_cost(&t, SimTime::from_mins(5), SimTime::from_mins(5)), 0.0);
    }

    #[test]
    fn integration_tracks_price_changes() {
        let mut prices = vec![0.6; 60];
        prices.extend(vec![1.2; 60]);
        let t = PriceTrace::from_minutes(prices);
        // One hour at 0.6 then one hour at 1.2 = 1.8 total.
        let c = integrate_cost(&t, SimTime::ZERO, SimTime::from_hours(2));
        assert!((c - 1.8).abs() < 1e-9);
        // Straddling the boundary by 30 min each side: 0.3 + 0.6.
        let c = integrate_cost(&t, SimTime::from_mins(30), SimTime::from_mins(90));
        assert!((c - 0.9).abs() < 1e-9);
    }

    #[test]
    fn refund_applies_only_to_early_provider_revocation() {
        let t = flat_trace(1.0, 600);
        let vm = VmId::new(1);
        // Revoked at 59 minutes: full refund.
        let b = settle(vm, "x", &t, SimTime::ZERO, SimTime::from_mins(59), EndCause::ProviderRevoked);
        assert!(b.was_free());
        assert_eq!(b.net(), 0.0);
        assert!(b.refunded > 0.9);
        // Revoked at exactly one hour: no refund (must be *within* the first hour).
        let b = settle(vm, "x", &t, SimTime::ZERO, SimTime::from_hours(1), EndCause::ProviderRevoked);
        assert!(!b.was_free());
        assert!((b.net() - 1.0).abs() < 1e-12);
        // User termination at 10 minutes: no refund.
        let b = settle(vm, "x", &t, SimTime::ZERO, SimTime::from_mins(10), EndCause::UserTerminated);
        assert!(!b.was_free());
        assert!(b.net() > 0.0);
    }

    #[test]
    fn ledger_totals_are_consistent() {
        let t = flat_trace(1.2, 600);
        let mut ledger = Ledger::new();
        ledger.push(settle(VmId::new(1), "a", &t, SimTime::ZERO, SimTime::from_mins(30), EndCause::ProviderRevoked));
        ledger.push(settle(VmId::new(2), "b", &t, SimTime::ZERO, SimTime::from_hours(2), EndCause::UserTerminated));
        assert_eq!(ledger.records().len(), 2);
        assert_eq!(ledger.refunded_count(), 1);
        assert!((ledger.total_gross() - (0.6 + 2.4)).abs() < 1e-9);
        assert!((ledger.total_refunded() - 0.6).abs() < 1e-9);
        assert!((ledger.total_charged() - 2.4).abs() < 1e-9);
        assert!(
            (ledger.total_gross() - ledger.total_charged() - ledger.total_refunded()).abs() < 1e-12
        );
    }

    #[test]
    fn on_demand_bills_flat_rate_without_refunds() {
        // 90 minutes at $1.0/h = $1.5, regardless of any market trace.
        let b = settle_on_demand(VmId::new(4), "od", 1.0, SimTime::ZERO, SimTime::from_mins(90));
        assert!((b.gross - 1.5).abs() < 1e-12);
        assert_eq!(b.refunded, 0.0);
        assert!(!b.was_free());
        assert_eq!(b.cause, EndCause::UserTerminated);
    }

    #[test]
    fn cost_clamps_past_trace_end() {
        let t = flat_trace(0.5, 10);
        // Running past the end of the trace keeps billing at the last price.
        let c = integrate_cost(&t, SimTime::ZERO, SimTime::ZERO + SimDur::from_mins(20));
        assert!((c - 0.5 * 20.0 / 60.0).abs() < 1e-9);
    }
}
