//! # spottune-cloud
//!
//! Discrete-event simulator of an EC2-like spot cloud: VM lifecycle with
//! two-minute revocation notices, per-second billing with the first-hour
//! refund rule, and an S3-like object store with CPU-bound checkpoint
//! speeds. This is the substrate SpotTune's orchestrator (Algorithm 1 in the
//! paper) runs against.
//!
//! ```
//! use spottune_cloud::prelude::*;
//! use spottune_market::prelude::*;
//!
//! let pool = MarketPool::standard(SimDur::from_hours(6), 42);
//! let mut cloud = CloudProvider::new(pool);
//! let price = cloud.market_price("r4.large", SimTime::ZERO).unwrap();
//! let vm = cloud.request_spot(SimTime::ZERO, "r4.large", price + 0.05).unwrap();
//! // ... the orchestrator polls for notices/revocations as time advances:
//! let events = cloud.poll(SimTime::from_mins(10));
//! # let _ = (vm, events);
//! ```

pub mod billing;
pub mod fault;
pub mod provider;
pub mod storage;
pub mod vm;

pub use billing::{BillRecord, EndCause, Ledger};
pub use fault::{FaultPlan, Storm};
pub use provider::{CloudEvent, CloudProvider, RequestSpotError};
pub use storage::ObjectStore;
pub use vm::{Pricing, Vm, VmId, VmState};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::billing::{BillRecord, EndCause, Ledger};
    pub use crate::fault::{FaultPlan, Storm};
    pub use crate::provider::{CloudEvent, CloudProvider, RequestSpotError};
    pub use crate::storage::ObjectStore;
    pub use crate::vm::{Pricing, Vm, VmId, VmState};
}
