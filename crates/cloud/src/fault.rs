//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] describes the failures a simulation run should suffer:
//! correlated revocation storms (every VM in one market reclaimed at the
//! same instant), delayed revocation notices (the provider warns with less
//! than the contractual two-minute lead), and checkpoint upload failures.
//! The plan is installed on a [`CloudProvider`](crate::CloudProvider) (and,
//! for checkpoint failures, consulted by the orchestrator); every injected
//! decision is a *pure function* of the plan's seed and the decision's
//! coordinates via [`spottune_market::seeding`], never a draw from the
//! campaign RNG. That keeps two guarantees:
//!
//! 1. **Replayability** — the same plan yields bit-identical event
//!    sequences and campaign reports on every run and in both drive modes.
//! 2. **Isolation** — a run with no plan installed is bit-identical to a
//!    run built before fault injection existed, because no RNG stream is
//!    perturbed and no code path changes shape.

use spottune_market::seeding::unit_draw;
use spottune_market::{SimDur, SimTime};

use crate::vm::VmId;

/// Coordinate tags keeping the three fault families' hash streams disjoint.
const TAG_NOTICE: u64 = 0xde_1a7ed;
const TAG_CKPT: u64 = 0xc4_9f41;

/// One correlated revocation storm: at `at`, the provider reclaims every
/// spot VM running in `market`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Storm {
    /// Market (instance-type name) the storm hits.
    pub market: String,
    /// Instant every spot VM in the market is reclaimed.
    pub at: SimTime,
}

/// A seeded, declarative fault schedule. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    storms: Vec<Storm>,
    /// Fraction of VMs whose notice lead is shrunk, and the shrunken lead.
    delayed_notice: Option<(f64, SimDur)>,
    /// Probability that any single checkpoint upload fails.
    ckpt_failure_rate: f64,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Adds one revocation storm hitting `market` at `at`.
    pub fn with_storm(mut self, market: &str, at: SimTime) -> Self {
        self.storms.push(Storm { market: market.to_string(), at });
        self
    }

    /// Adds `count` storms on `market` starting at `start`, `period` apart.
    pub fn with_periodic_storms(
        mut self,
        market: &str,
        start: SimTime,
        period: SimDur,
        count: usize,
    ) -> Self {
        let mut at = start;
        for _ in 0..count {
            self.storms.push(Storm { market: market.to_string(), at });
            at += period;
        }
        self
    }

    /// Delays the revocation notice on a `fraction` of VMs (chosen by seed)
    /// so they get only `lead` of warning instead of the contractual lead.
    pub fn with_delayed_notices(mut self, fraction: f64, lead: SimDur) -> Self {
        self.delayed_notice = Some((fraction, lead));
        self
    }

    /// Makes each checkpoint upload fail with probability `rate`.
    pub fn with_checkpoint_failures(mut self, rate: f64) -> Self {
        self.ckpt_failure_rate = rate;
        self
    }

    /// The storms this plan schedules.
    pub fn storms(&self) -> &[Storm] {
        &self.storms
    }

    /// Earliest storm instant on `market` strictly after `launched_at`, if
    /// any — the storm-side revocation bound for a VM launched then.
    pub fn storm_revoke_at(&self, market: &str, launched_at: SimTime) -> Option<SimTime> {
        self.storms
            .iter()
            .filter(|s| s.market == market && s.at > launched_at)
            .map(|s| s.at)
            .min()
    }

    /// The notice lead `vm` actually gets, given the provider's default.
    ///
    /// Never longer than `default`: a plan only degrades service.
    pub fn notice_lead_for(&self, vm: VmId, default: SimDur) -> SimDur {
        match self.delayed_notice {
            Some((fraction, lead)) if unit_draw(self.seed, &[TAG_NOTICE, vm.as_u64()]) < fraction => {
                lead.min(default)
            }
            _ => default,
        }
    }

    /// Whether the checkpoint upload attempted by job `hp_index` at `t`
    /// fails. Pure in `(seed, hp_index, t)`, so both drive modes and
    /// repeated runs agree.
    pub fn checkpoint_fails(&self, hp_index: usize, t: SimTime) -> bool {
        self.ckpt_failure_rate > 0.0
            && unit_draw(self.seed, &[TAG_CKPT, hp_index as u64, t.as_secs()])
                < self.ckpt_failure_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let plan = FaultPlan::new(7);
        assert_eq!(plan.storm_revoke_at("r3.xlarge", SimTime::ZERO), None);
        assert_eq!(
            plan.notice_lead_for(VmId::from_raw(0), SimDur::from_secs(120)),
            SimDur::from_secs(120)
        );
        assert!(!plan.checkpoint_fails(0, SimTime::from_hours(1)));
    }

    #[test]
    fn storms_bind_only_their_market_and_future_instants() {
        let plan = FaultPlan::new(1)
            .with_storm("a", SimTime::from_hours(2))
            .with_periodic_storms("b", SimTime::from_hours(1), SimDur::from_hours(3), 2);
        // Earliest matching storm strictly after launch.
        assert_eq!(plan.storm_revoke_at("a", SimTime::ZERO), Some(SimTime::from_hours(2)));
        assert_eq!(plan.storm_revoke_at("b", SimTime::from_hours(1)), Some(SimTime::from_hours(4)));
        // A storm at the launch instant does not count.
        assert_eq!(plan.storm_revoke_at("a", SimTime::from_hours(2)), None);
        assert_eq!(plan.storm_revoke_at("c", SimTime::ZERO), None);
        assert_eq!(plan.storms().len(), 3);
    }

    #[test]
    fn delayed_notices_hit_roughly_the_requested_fraction() {
        let plan = FaultPlan::new(3).with_delayed_notices(0.5, SimDur::from_secs(10));
        let default = SimDur::from_secs(120);
        let delayed = (0..1000)
            .filter(|&i| plan.notice_lead_for(VmId::from_raw(i), default) != default)
            .count();
        assert!((350..=650).contains(&delayed), "delayed {delayed}/1000");
        // Deterministic per VM.
        for i in 0..50 {
            assert_eq!(
                plan.notice_lead_for(VmId::from_raw(i), default),
                plan.notice_lead_for(VmId::from_raw(i), default)
            );
        }
        // A "delay" can never extend the lead.
        let plan = FaultPlan::new(3).with_delayed_notices(1.0, SimDur::from_hours(1));
        assert_eq!(plan.notice_lead_for(VmId::from_raw(0), default), default);
    }

    #[test]
    fn checkpoint_failures_are_seed_deterministic() {
        let a = FaultPlan::new(11).with_checkpoint_failures(0.3);
        let b = FaultPlan::new(11).with_checkpoint_failures(0.3);
        let mut failures = 0;
        for i in 0..200 {
            let t = SimTime::from_secs(i * 97);
            assert_eq!(a.checkpoint_fails(i as usize, t), b.checkpoint_fails(i as usize, t));
            failures += a.checkpoint_fails(i as usize, t) as u32;
        }
        assert!((30..=90).contains(&failures), "failures {failures}/200");
        // A different seed gives a different pattern somewhere.
        let c = FaultPlan::new(12).with_checkpoint_failures(0.3);
        assert!((0..200).any(|i| {
            let t = SimTime::from_secs(i * 97);
            a.checkpoint_fails(i as usize, t) != c.checkpoint_fails(i as usize, t)
        }));
    }
}
