//! Virtual-machine identities and lifecycle state.

use serde::{Deserialize, Serialize};
use spottune_market::{InstanceType, SimDur, SimTime};
use std::fmt;

/// Opaque identifier of a simulated VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VmId(u64);

impl VmId {
    pub(crate) fn new(raw: u64) -> Self {
        VmId(raw)
    }

    /// Builds an id from its raw value (for tests and external tooling;
    /// the provider hands out its own ids via `request_spot`).
    pub fn from_raw(raw: u64) -> Self {
        VmId(raw)
    }

    /// Raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for VmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// How a VM is billed and reclaimed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pricing {
    /// Transient capacity: billed per-second at the market price, revoked
    /// when the market price exceeds the offered maximum, eligible for the
    /// first-hour refund.
    Spot,
    /// Reserved capacity: billed per-second at the instance type's fixed
    /// on-demand price, never revoked, never refunded.
    OnDemand,
}

/// Lifecycle state of a spot VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmState {
    /// Running normally.
    Running,
    /// Termination notice delivered; the VM still runs until `revoke_at`.
    ///
    /// AWS "delivers termination notices ... two minutes before the
    /// interruption" (§II.A).
    Notified {
        /// Instant the provider will reclaim the VM.
        revoke_at: SimTime,
    },
    /// Reclaimed by the provider (market price exceeded the max price).
    Revoked {
        /// Instant of revocation.
        at: SimTime,
    },
    /// Shut down by the user.
    Terminated {
        /// Instant of user shutdown.
        at: SimTime,
    },
}

impl VmState {
    /// Whether the VM is still usable (running or in its notice window).
    pub fn is_alive(self) -> bool {
        matches!(self, VmState::Running | VmState::Notified { .. })
    }
}

/// A simulated spot VM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vm {
    id: VmId,
    instance: InstanceType,
    launched_at: SimTime,
    max_price: f64,
    pricing: Pricing,
    /// Precomputed provider-side revocation instant (from the price trace
    /// or an injected storm), if any.
    pub(crate) revoke_at: Option<SimTime>,
    /// Warning lead this VM's revocation notice gets. Normally the
    /// provider-wide lead; a [`FaultPlan`](crate::FaultPlan) may shrink it
    /// per VM, so every code path that schedules or matches a notice must
    /// read the lead from here rather than from the provider.
    pub(crate) notice_lead: SimDur,
    pub(crate) state: VmState,
    pub(crate) notice_sent: bool,
}

impl Vm {
    pub(crate) fn new(
        id: VmId,
        instance: InstanceType,
        launched_at: SimTime,
        max_price: f64,
        revoke_at: Option<SimTime>,
        notice_lead: SimDur,
    ) -> Self {
        Vm {
            id,
            instance,
            launched_at,
            max_price,
            pricing: Pricing::Spot,
            revoke_at,
            notice_lead,
            state: VmState::Running,
            notice_sent: false,
        }
    }

    pub(crate) fn new_on_demand(id: VmId, instance: InstanceType, launched_at: SimTime) -> Self {
        let max_price = instance.on_demand_price();
        Vm {
            id,
            instance,
            launched_at,
            max_price,
            pricing: Pricing::OnDemand,
            revoke_at: None,
            notice_lead: SimDur::ZERO,
            state: VmState::Running,
            notice_sent: false,
        }
    }

    /// VM identifier.
    pub fn id(&self) -> VmId {
        self.id
    }

    /// Instance type this VM runs on.
    pub fn instance(&self) -> &InstanceType {
        &self.instance
    }

    /// Launch instant (after any launch delay).
    pub fn launched_at(&self) -> SimTime {
        self.launched_at
    }

    /// The user's maximum price for this VM.
    pub fn max_price(&self) -> f64 {
        self.max_price
    }

    /// How this VM is billed and reclaimed.
    pub fn pricing(&self) -> Pricing {
        self.pricing
    }

    /// Warning lead this VM's revocation notice carries (zero for
    /// on-demand capacity, which is never revoked).
    pub fn notice_lead(&self) -> SimDur {
        self.notice_lead
    }

    /// Whether this VM is transient (revocable spot capacity).
    pub fn is_spot(&self) -> bool {
        self.pricing == Pricing::Spot
    }

    /// Current lifecycle state.
    pub fn state(&self) -> VmState {
        self.state
    }

    /// Whether the VM is running or notified (still usable).
    pub fn is_alive(&self) -> bool {
        self.state.is_alive()
    }

    /// The instant this VM stopped, if it has.
    pub fn ended_at(&self) -> Option<SimTime> {
        match self.state {
            VmState::Running | VmState::Notified { .. } => None,
            VmState::Revoked { at } | VmState::Terminated { at } => Some(at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_market::instance;

    #[test]
    fn lifecycle_flags() {
        assert!(VmState::Running.is_alive());
        assert!(VmState::Notified { revoke_at: SimTime::from_secs(5) }.is_alive());
        assert!(!VmState::Revoked { at: SimTime::ZERO }.is_alive());
        assert!(!VmState::Terminated { at: SimTime::ZERO }.is_alive());
    }

    #[test]
    fn vm_accessors() {
        let inst = instance::by_name("r4.large").unwrap();
        let vm = Vm::new(
            VmId::new(3),
            inst.clone(),
            SimTime::from_secs(30),
            0.05,
            None,
            SimDur::from_secs(120),
        );
        assert_eq!(vm.id().as_u64(), 3);
        assert_eq!(vm.id().to_string(), "vm-3");
        assert_eq!(vm.instance().name(), "r4.large");
        assert_eq!(vm.max_price(), 0.05);
        assert!(vm.is_alive());
        assert!(vm.is_spot());
        assert_eq!(vm.pricing(), Pricing::Spot);
        assert_eq!(vm.ended_at(), None);
    }

    #[test]
    fn on_demand_vm_is_unrevocable() {
        let inst = instance::by_name("r4.large").unwrap();
        let od = inst.on_demand_price();
        let vm = Vm::new_on_demand(VmId::new(9), inst, SimTime::from_secs(30));
        assert_eq!(vm.pricing(), Pricing::OnDemand);
        assert!(!vm.is_spot());
        assert_eq!(vm.revoke_at, None);
        assert_eq!(vm.max_price(), od);
    }
}
