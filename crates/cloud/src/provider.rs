//! The discrete-event cloud provider: spot requests, revocation notices,
//! revocations and billing, driven by per-market price traces.

use serde::{Deserialize, Serialize};
use spottune_market::{MarketPool, PoolSpine, SimDur, SimTime, SpotMarket};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use crate::billing::{settle, settle_on_demand, BillRecord, EndCause, Ledger};
use crate::fault::FaultPlan;
use crate::vm::{Pricing, Vm, VmId, VmState};

/// Default lead time of the revocation notice: "termination notices ... are
/// issued two minutes before the interruption" (§II.A).
pub const NOTICE_LEAD: SimDur = SimDur::from_secs(120);

/// Default delay between a spot request and the VM becoming usable.
pub const DEFAULT_LAUNCH_DELAY: SimDur = SimDur::from_secs(30);

/// Event surfaced by [`CloudProvider::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloudEvent {
    /// The revocation warning for a VM, normally two minutes ahead.
    RevocationNotice {
        /// VM being reclaimed.
        vm: VmId,
        /// Instant the VM disappears.
        revoke_at: SimTime,
        /// Time left between *delivery* of this notice and `revoke_at` —
        /// the window in which a checkpoint can still be transferred out.
        /// Zero when the notice is delivered late (same poll as the
        /// revocation, or a fault-delayed lead already elapsed).
        grace: SimDur,
    },
    /// A VM has been reclaimed by the provider.
    Revoked {
        /// VM that was reclaimed.
        vm: VmId,
        /// Instant of reclamation.
        at: SimTime,
    },
}

/// Error returned by [`CloudProvider::request_spot`].
#[derive(Debug, Clone, PartialEq)]
pub enum RequestSpotError {
    /// No market exists for the requested instance type.
    UnknownInstance(String),
    /// The current market price already exceeds the offered maximum price.
    PriceAboveMax {
        /// Current market price.
        market_price: f64,
        /// Offered maximum price.
        max_price: f64,
    },
}

impl fmt::Display for RequestSpotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestSpotError::UnknownInstance(name) => {
                write!(f, "no spot market for instance type {name:?}")
            }
            RequestSpotError::PriceAboveMax { market_price, max_price } => write!(
                f,
                "market price {market_price} exceeds offered maximum price {max_price}"
            ),
        }
    }
}

impl Error for RequestSpotError {}

/// The simulated cloud provider.
///
/// Holds the market pool, live VMs and the billing ledger. All methods take
/// the current simulation time explicitly; the provider never advances time
/// itself, which keeps the orchestrator's control loop in charge (as in
/// Algorithm 1).
/// Kind of a pending agenda entry. `Notice < Revoke` so that a VM's notice
/// sorts before its revocation when both share an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum PendingKind {
    Notice,
    Revoke,
}

#[derive(Debug)]
pub struct CloudProvider {
    pool: MarketPool,
    vms: BTreeMap<VmId, Vm>,
    /// Future notice/revocation events, time-ordered. Entries are inserted
    /// at `request_spot` (revocation instants are trace-determined, so both
    /// events are known up front), removed when they fire in [`Self::poll`]
    /// or when the VM is user-terminated. This makes `poll` O(events fired)
    /// instead of O(all VMs ever created), and gives the event-driven
    /// orchestrator its [`Self::next_event_at`] jump target.
    agenda: BTreeSet<(SimTime, VmId, PendingKind)>,
    ledger: Ledger,
    next_id: u64,
    launch_delay: SimDur,
    notice_lead: SimDur,
    /// Optional injected-fault schedule. `None` (the default) leaves every
    /// code path bit-identical to a fault-free provider.
    fault_plan: Option<FaultPlan>,
    /// Optional shared per-scenario event spine. When present, market
    /// lookups go through its name index and revocation instants through
    /// its run-level agenda instead of the trace's minute scan — same bits,
    /// built once per scenario instead of per query.
    spine: Option<Arc<PoolSpine>>,
}

impl CloudProvider {
    /// Creates a provider over a market pool with default timing.
    pub fn new(pool: MarketPool) -> Self {
        CloudProvider {
            pool,
            vms: BTreeMap::new(),
            agenda: BTreeSet::new(),
            ledger: Ledger::new(),
            next_id: 0,
            launch_delay: DEFAULT_LAUNCH_DELAY,
            notice_lead: NOTICE_LEAD,
            fault_plan: None,
            spine: None,
        }
    }

    /// Installs a shared event spine derived from this provider's pool
    /// (callers resolve both through the same scenario key, typically via
    /// [`spottune_market::SpineCache`]). Every answer the spine gives is
    /// bit-identical to the trace queries it replaces, so this changes
    /// wall-clock only, never results.
    pub fn with_spine(mut self, spine: Arc<PoolSpine>) -> Self {
        self.spine = Some(spine);
        self
    }

    /// Overrides the request→running delay.
    pub fn with_launch_delay(mut self, delay: SimDur) -> Self {
        self.launch_delay = delay;
        self
    }

    /// Installs a seeded fault schedule (storms, delayed notices).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The installed fault schedule, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The market pool backing this provider.
    pub fn pool(&self) -> &MarketPool {
        &self.pool
    }

    /// Current market price for an instance type.
    pub fn market_price(&self, instance_name: &str, t: SimTime) -> Option<f64> {
        lookup_market(&self.pool, self.spine.as_deref(), instance_name).map(|(m, _)| m.price_at(t))
    }

    /// Requests a spot VM at time `t` with the given maximum price.
    ///
    /// The VM becomes usable at `t + launch_delay`. Its (deterministic)
    /// future revocation instant is derived from the price trace: the first
    /// minute after launch whose price exceeds `max_price`.
    ///
    /// # Errors
    ///
    /// Fails if the instance type has no market or the current market price
    /// already exceeds `max_price`.
    pub fn request_spot(
        &mut self,
        t: SimTime,
        instance_name: &str,
        max_price: f64,
    ) -> Result<VmId, RequestSpotError> {
        let (market, spine_idx) = lookup_market(&self.pool, self.spine.as_deref(), instance_name)
            .ok_or_else(|| RequestSpotError::UnknownInstance(instance_name.to_string()))?;
        let market_price = market.price_at(t);
        if market_price > max_price {
            return Err(RequestSpotError::PriceAboveMax { market_price, max_price });
        }
        let launched_at = t + self.launch_delay;
        // Revocation is determined by the trace; search to the end of it.
        // The spine's run-level agenda answers bit-identically to the
        // trace's minute scan (its equivalence tests lock this).
        let horizon = market.trace().duration();
        let trace_revoke = match (&self.spine, spine_idx) {
            (Some(spine), Some(idx)) => {
                spine.revocation_within(idx, launched_at, horizon, max_price)
            }
            _ => market.revocation_within(launched_at, horizon, max_price),
        };
        let id = VmId::new(self.next_id);
        self.next_id += 1;
        // An injected storm reclaims the VM even if the trace never would;
        // whichever cause strikes first wins.
        let storm_revoke = self
            .fault_plan
            .as_ref()
            .and_then(|p| p.storm_revoke_at(instance_name, launched_at));
        let revoke_at = match (trace_revoke, storm_revoke) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let lead = self
            .fault_plan
            .as_ref()
            .map_or(self.notice_lead, |p| p.notice_lead_for(id, self.notice_lead));
        if let Some(at) = revoke_at {
            self.agenda
                .insert((at.saturating_sub(lead), id, PendingKind::Notice));
            self.agenda.insert((at, id, PendingKind::Revoke));
        }
        self.vms.insert(
            id,
            Vm::new(id, market.instance().clone(), launched_at, max_price, revoke_at, lead),
        );
        Ok(id)
    }

    /// Requests an on-demand VM at time `t`: billed per-second at the
    /// instance type's fixed on-demand price, never revoked, never refunded.
    /// The VM becomes usable at `t + launch_delay`, exactly like a spot VM.
    ///
    /// # Errors
    ///
    /// Fails if the instance type is not in the pool's catalog.
    pub fn request_on_demand(
        &mut self,
        t: SimTime,
        instance_name: &str,
    ) -> Result<VmId, RequestSpotError> {
        let market = self
            .pool
            .market(instance_name)
            .ok_or_else(|| RequestSpotError::UnknownInstance(instance_name.to_string()))?;
        let launched_at = t + self.launch_delay;
        let id = VmId::new(self.next_id);
        self.next_id += 1;
        self.vms
            .insert(id, Vm::new_on_demand(id, market.instance().clone(), launched_at));
        Ok(id)
    }

    /// Looks up a VM.
    pub fn vm(&self, id: VmId) -> Option<&Vm> {
        self.vms.get(&id)
    }

    /// All VMs ever created (alive and ended).
    pub fn vms(&self) -> impl Iterator<Item = &Vm> {
        self.vms.values()
    }

    /// Number of currently alive VMs.
    pub fn alive_count(&self) -> usize {
        self.vms.values().filter(|v| v.is_alive()).count()
    }

    /// Advances provider-side state to time `t` and returns the events that
    /// fired since the last poll (notices first, then revocations, ordered
    /// by VM id for determinism — the same sequence [`Self::poll_scan`]
    /// produces).
    ///
    /// Only pending agenda entries up to `t` are visited, so a poll costs
    /// O(events fired · log pending), independent of how many VMs exist.
    pub fn poll(&mut self, t: SimTime) -> Vec<CloudEvent> {
        if self.agenda.first().is_none_or(|&(at, _, _)| at > t) {
            return Vec::new(); // common case: nothing due
        }
        let mut due = Vec::new();
        while let Some(&(at, id, kind)) = self.agenda.iter().next() {
            if at > t {
                break;
            }
            self.agenda.remove(&(at, id, kind));
            due.push((id, kind));
        }
        // Process in the scan order (VM id major, notice before revoke) so
        // both poll implementations emit bit-identical event sequences.
        due.sort_unstable();
        let mut events = Vec::new();
        for (id, kind) in due {
            let vm = self.vms.get_mut(&id).expect("agenda vm exists");
            if !vm.is_alive() {
                continue; // stale entry: terminated this instant
            }
            let revoke_at = vm.revoke_at.expect("agenda vm has a revocation");
            // The grace window is measured from *delivery*: polling after
            // the scheduled notice instant (or past the revocation itself)
            // leaves that much less time to transfer a checkpoint out.
            let grace = revoke_at - t;
            match kind {
                PendingKind::Notice => {
                    vm.notice_sent = true;
                    vm.state = VmState::Notified { revoke_at };
                    events.push(CloudEvent::RevocationNotice { vm: id, revoke_at, grace });
                }
                PendingKind::Revoke => {
                    // Deliver a (late) notice if the poll skipped the window.
                    if !vm.notice_sent {
                        vm.notice_sent = true;
                        events.push(CloudEvent::RevocationNotice { vm: id, revoke_at, grace });
                    }
                    vm.state = VmState::Revoked { at: revoke_at };
                    let record = self.settle_vm(id, revoke_at, EndCause::ProviderRevoked);
                    self.ledger.push(record);
                    events.push(CloudEvent::Revoked { vm: id, at: revoke_at });
                }
            }
        }
        events
    }

    /// The original polling implementation: visit every VM ever created, in
    /// id order, and fire whatever is due. Produces exactly the same event
    /// sequences as [`Self::poll`]; retained as the measured baseline of
    /// the tick-driven reference drive (its per-poll cost grows with the
    /// total VM count, which is precisely what the agenda removes).
    pub fn poll_scan(&mut self, t: SimTime) -> Vec<CloudEvent> {
        let mut events = Vec::new();
        // BTreeMap keys come out already in id order (D2: no hash-order
        // iteration in determinism-critical crates).
        let ids: Vec<VmId> = self.vms.keys().copied().collect();
        for id in ids {
            let vm = self.vms.get_mut(&id).expect("vm exists");
            if !vm.is_alive() {
                continue;
            }
            let Some(revoke_at) = vm.revoke_at else { continue };
            // Per-VM lead: a fault plan may have shrunk this VM's warning.
            let lead = vm.notice_lead;
            let grace = revoke_at - t;
            if !vm.notice_sent && t >= revoke_at.saturating_sub(lead) && t < revoke_at {
                vm.notice_sent = true;
                vm.state = VmState::Notified { revoke_at };
                self.agenda
                    .remove(&(revoke_at.saturating_sub(lead), id, PendingKind::Notice));
                events.push(CloudEvent::RevocationNotice { vm: id, revoke_at, grace });
            }
            if t >= revoke_at {
                if !vm.notice_sent {
                    vm.notice_sent = true;
                    self.agenda
                        .remove(&(revoke_at.saturating_sub(lead), id, PendingKind::Notice));
                    events.push(CloudEvent::RevocationNotice { vm: id, revoke_at, grace });
                }
                vm.state = VmState::Revoked { at: revoke_at };
                self.agenda.remove(&(revoke_at, id, PendingKind::Revoke));
                let record = self.settle_vm(id, revoke_at, EndCause::ProviderRevoked);
                self.ledger.push(record);
                events.push(CloudEvent::Revoked { vm: id, at: revoke_at });
            }
        }
        events
    }

    /// Instant of the earliest pending notice or revocation, if any — the
    /// cloud-side jump target for event-driven simulation.
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.agenda.iter().next().map(|&(at, _, _)| at)
    }

    /// Instant of the earliest pending *notice*, if any — the jump target
    /// for sub-poll delivery ([`Self::poll_notices`]).
    pub fn next_notice_at(&self) -> Option<SimTime> {
        self.agenda
            .iter()
            .find(|&&(_, _, kind)| kind == PendingKind::Notice)
            .map(|&(at, _, _)| at)
    }

    /// Delivers only the notices due at or before `t`, leaving revocations
    /// pending for the next full [`Self::poll`].
    ///
    /// This is the sub-poll path: a grace window shorter than the poll
    /// interval collapses to zero when its notice waits for the next grid
    /// tick (the tick coincides with the revocation), so the event-driven
    /// drive calls this at the notice's true instant instead. Grace is
    /// measured from delivery (`t`), exactly as in [`Self::poll`].
    pub fn poll_notices(&mut self, t: SimTime) -> Vec<CloudEvent> {
        let mut due: Vec<(SimTime, VmId)> = self
            .agenda
            .iter()
            .take_while(|&&(at, _, _)| at <= t)
            .filter(|&&(_, _, kind)| kind == PendingKind::Notice)
            .map(|&(at, id, _)| (at, id))
            .collect();
        // Per-instant order matches `poll`: VM id major.
        due.sort_unstable_by_key(|&(_, id)| id);
        let mut events = Vec::new();
        for (at, id) in due {
            self.agenda.remove(&(at, id, PendingKind::Notice));
            let vm = self.vms.get_mut(&id).expect("agenda vm exists");
            if !vm.is_alive() {
                continue; // stale entry: terminated this instant
            }
            let revoke_at = vm.revoke_at.expect("agenda vm has a revocation");
            vm.notice_sent = true;
            vm.state = VmState::Notified { revoke_at };
            events.push(CloudEvent::RevocationNotice { vm: id, revoke_at, grace: revoke_at - t });
        }
        events
    }

    /// User-initiated shutdown at time `t`. Bills the VM without a refund.
    ///
    /// # Panics
    ///
    /// Panics if the VM does not exist or is already ended.
    pub fn terminate(&mut self, t: SimTime, id: VmId) -> BillRecord {
        let vm = self.vms.get_mut(&id).expect("terminate: unknown vm");
        assert!(vm.is_alive(), "terminate: {id} already ended");
        let end = t.max(vm.launched_at());
        vm.state = VmState::Terminated { at: end };
        let revoke_at = vm.revoke_at;
        if let Some(at) = revoke_at {
            let lead = vm.notice_lead;
            self.agenda.remove(&(at.saturating_sub(lead), id, PendingKind::Notice));
            self.agenda.remove(&(at, id, PendingKind::Revoke));
        }
        let record = self.settle_vm(id, end, EndCause::UserTerminated);
        self.ledger.push(record.clone());
        record
    }

    fn settle_vm(&self, id: VmId, end: SimTime, cause: EndCause) -> BillRecord {
        let vm = &self.vms[&id];
        match vm.pricing() {
            Pricing::Spot => {
                let (market, _) =
                    lookup_market(&self.pool, self.spine.as_deref(), vm.instance().name())
                        .expect("vm market exists");
                settle(id, vm.instance().name(), market.trace(), vm.launched_at(), end, cause)
            }
            Pricing::OnDemand => settle_on_demand(
                id,
                vm.instance().name(),
                vm.instance().on_demand_price(),
                vm.launched_at(),
                end,
            ),
        }
    }

    /// The billing ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }
}

/// Resolves a market by instance name: through the spine's index when one
/// is installed, else the pool's linear scan. A free function (not a
/// method) so the returned borrow pins only the pool field and the caller
/// can keep mutating the provider's other fields.
fn lookup_market<'a>(
    pool: &'a MarketPool,
    spine: Option<&PoolSpine>,
    name: &str,
) -> Option<(&'a SpotMarket, Option<usize>)> {
    match spine {
        Some(spine) => {
            let idx = spine.market_index(name)?;
            Some((&pool.markets()[idx], Some(idx)))
        }
        None => pool.market(name).map(|m| (m, None)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_market::{InstanceType, PriceTrace, SpotMarket};

    /// Pool with one market whose price is 0.1 except minutes 90–99 at 0.5.
    fn spike_pool() -> MarketPool {
        let mut prices = vec![0.1; 240];
        for p in prices.iter_mut().take(100).skip(90) {
            *p = 0.5;
        }
        let inst = InstanceType::new("t.spike", 2, 8.0, 0.4);
        MarketPool::new(vec![SpotMarket::new(inst, PriceTrace::from_minutes(prices))])
    }

    fn provider() -> CloudProvider {
        CloudProvider::new(spike_pool()).with_launch_delay(SimDur::ZERO)
    }

    #[test]
    fn on_demand_survives_spikes_and_bills_flat() {
        let mut p = provider();
        let vm = p.request_on_demand(SimTime::ZERO, "t.spike").unwrap();
        // The minute-90 spike that would revoke any low-bid spot VM fires
        // no events for on-demand capacity.
        assert!(p.poll(SimTime::from_mins(120)).is_empty());
        assert!(p.vm(vm).unwrap().is_alive());
        assert_eq!(p.vm(vm).unwrap().pricing(), Pricing::OnDemand);
        assert_eq!(p.next_event_at(), None);
        // 30 minutes at the fixed $0.4/h on-demand rate = $0.2.
        let rec = p.terminate(SimTime::from_mins(30), vm);
        assert!((rec.gross - 0.2).abs() < 1e-12);
        assert_eq!(rec.refunded, 0.0);
        // Unknown instance types are still rejected.
        let err = p.request_on_demand(SimTime::ZERO, "nope").unwrap_err();
        assert!(matches!(err, RequestSpotError::UnknownInstance(_)));
    }

    #[test]
    fn request_rejects_low_max_price() {
        let mut p = provider();
        let err = p
            .request_spot(SimTime::from_mins(95), "t.spike", 0.2)
            .unwrap_err();
        assert!(matches!(err, RequestSpotError::PriceAboveMax { .. }));
        let err = p.request_spot(SimTime::ZERO, "nope", 0.2).unwrap_err();
        assert!(matches!(err, RequestSpotError::UnknownInstance(_)));
    }

    #[test]
    fn notice_precedes_revocation_by_two_minutes() {
        let mut p = provider();
        let vm = p.request_spot(SimTime::ZERO, "t.spike", 0.2).unwrap();
        // Price exceeds 0.2 at minute 90, so notice is due at minute 88.
        assert!(p.poll(SimTime::from_mins(87)).is_empty());
        let ev = p.poll(SimTime::from_mins(88));
        assert_eq!(
            ev,
            vec![CloudEvent::RevocationNotice {
                vm,
                revoke_at: SimTime::from_mins(90),
                grace: SimDur::from_secs(120),
            }]
        );
        assert!(matches!(p.vm(vm).unwrap().state(), VmState::Notified { .. }));
        // Still alive during the notice window.
        assert!(p.vm(vm).unwrap().is_alive());
        let ev = p.poll(SimTime::from_mins(90));
        assert_eq!(ev, vec![CloudEvent::Revoked { vm, at: SimTime::from_mins(90) }]);
        assert!(!p.vm(vm).unwrap().is_alive());
    }

    #[test]
    fn coarse_poll_still_delivers_notice_and_revocation() {
        let mut p = provider();
        let vm = p.request_spot(SimTime::ZERO, "t.spike", 0.2).unwrap();
        let ev = p.poll(SimTime::from_mins(120));
        assert_eq!(ev.len(), 2);
        assert!(matches!(ev[0], CloudEvent::RevocationNotice { .. }));
        assert!(matches!(ev[1], CloudEvent::Revoked { .. }));
        // Billing happened exactly once.
        assert_eq!(p.ledger().records().len(), 1);
        let rec = &p.ledger().records()[0];
        assert_eq!(rec.vm, vm);
        // Revoked at 90 minutes > 1h: no refund.
        assert!(!rec.was_free());
    }

    #[test]
    fn early_revocation_is_refunded() {
        let mut p = provider();
        // Launch shortly before the spike so the VM dies young.
        let vm = p.request_spot(SimTime::from_mins(60), "t.spike", 0.2).unwrap();
        p.poll(SimTime::from_mins(91));
        let rec = &p.ledger().records()[0];
        assert_eq!(rec.vm, vm);
        assert!(rec.was_free());
        assert_eq!(rec.net(), 0.0);
        assert!(rec.gross > 0.0);
    }

    #[test]
    fn user_termination_bills_without_refund() {
        let mut p = provider();
        let vm = p.request_spot(SimTime::ZERO, "t.spike", 0.2).unwrap();
        let rec = p.terminate(SimTime::from_mins(30), vm);
        assert!(!rec.was_free());
        // 30 minutes at $0.1/h.
        assert!((rec.net() - 0.05).abs() < 1e-9);
        assert_eq!(p.alive_count(), 0);
        // No further events for this VM.
        assert!(p.poll(SimTime::from_mins(120)).is_empty());
    }

    #[test]
    fn next_event_at_tracks_agenda() {
        let mut p = provider();
        assert_eq!(p.next_event_at(), None);
        let _vm = p.request_spot(SimTime::ZERO, "t.spike", 0.2).unwrap();
        // Price exceeds 0.2 at minute 90 → notice pending at minute 88.
        assert_eq!(p.next_event_at(), Some(SimTime::from_mins(88)));
        p.poll(SimTime::from_mins(88));
        assert_eq!(p.next_event_at(), Some(SimTime::from_mins(90)));
        p.poll(SimTime::from_mins(90));
        assert_eq!(p.next_event_at(), None);
    }

    #[test]
    fn terminate_clears_pending_events() {
        let mut p = provider();
        let vm = p.request_spot(SimTime::ZERO, "t.spike", 0.2).unwrap();
        assert!(p.next_event_at().is_some());
        p.terminate(SimTime::from_mins(10), vm);
        assert_eq!(p.next_event_at(), None);
        assert!(p.poll(SimTime::from_mins(120)).is_empty());
    }

    #[test]
    fn high_max_price_never_revokes() {
        let mut p = provider();
        let vm = p.request_spot(SimTime::ZERO, "t.spike", 10.0).unwrap();
        assert!(p.poll(SimTime::from_mins(239)).is_empty());
        assert!(p.vm(vm).unwrap().is_alive());
    }

    #[test]
    fn late_poll_delivers_notice_with_zero_grace() {
        let mut p = provider();
        let vm = p.request_spot(SimTime::ZERO, "t.spike", 0.2).unwrap();
        // Jumping straight past the revocation leaves no usable window.
        let ev = p.poll(SimTime::from_mins(95));
        assert_eq!(
            ev[0],
            CloudEvent::RevocationNotice {
                vm,
                revoke_at: SimTime::from_mins(90),
                grace: SimDur::ZERO,
            }
        );
    }

    #[test]
    fn poll_notices_delivers_at_true_instant_and_leaves_revocations() {
        let plan = FaultPlan::new(5)
            .with_storm("t.spike", SimTime::from_mins(40))
            .with_delayed_notices(1.0, SimDur::from_secs(5));
        let mut p = CloudProvider::new(spike_pool())
            .with_launch_delay(SimDur::ZERO)
            .with_fault_plan(plan);
        let vm = p.request_spot(SimTime::ZERO, "t.spike", 10.0).unwrap();
        // The 5 s lead puts the notice off the 10 s grid.
        let notice_at = SimTime::from_secs(40 * 60 - 5);
        assert_eq!(p.next_notice_at(), Some(notice_at));
        assert!(p.poll_notices(SimTime::from_secs(40 * 60 - 6)).is_empty());
        let ev = p.poll_notices(notice_at);
        assert_eq!(
            ev,
            vec![CloudEvent::RevocationNotice {
                vm,
                revoke_at: SimTime::from_mins(40),
                grace: SimDur::from_secs(5),
            }]
        );
        assert!(matches!(p.vm(vm).unwrap().state(), VmState::Notified { .. }));
        // The revocation stays pending for the next full poll, with no
        // duplicate notice.
        assert_eq!(p.next_notice_at(), None);
        assert_eq!(p.next_event_at(), Some(SimTime::from_mins(40)));
        let ev = p.poll(SimTime::from_mins(40));
        assert_eq!(ev, vec![CloudEvent::Revoked { vm, at: SimTime::from_mins(40) }]);
    }

    #[test]
    fn storm_revokes_every_vm_in_the_market_at_once() {
        let plan = FaultPlan::new(5).with_storm("t.spike", SimTime::from_mins(40));
        let mut p = CloudProvider::new(spike_pool())
            .with_launch_delay(SimDur::ZERO)
            .with_fault_plan(plan);
        // Bids high enough that the trace alone would never revoke them.
        let a = p.request_spot(SimTime::ZERO, "t.spike", 10.0).unwrap();
        let b = p.request_spot(SimTime::from_mins(10), "t.spike", 10.0).unwrap();
        assert_eq!(p.next_event_at(), Some(SimTime::from_mins(38)));
        let ev = p.poll(SimTime::from_mins(38));
        assert_eq!(ev.len(), 2, "both VMs get the storm notice: {ev:?}");
        let ev = p.poll(SimTime::from_mins(40));
        assert_eq!(
            ev,
            vec![
                CloudEvent::Revoked { vm: a, at: SimTime::from_mins(40) },
                CloudEvent::Revoked { vm: b, at: SimTime::from_mins(40) },
            ]
        );
        // A VM launched after the (only) storm is untouched by it.
        let c = p.request_spot(SimTime::from_mins(41), "t.spike", 10.0).unwrap();
        assert!(p.poll(SimTime::from_mins(239)).is_empty());
        assert!(p.vm(c).unwrap().is_alive());
    }

    #[test]
    fn storm_never_postpones_a_trace_revocation() {
        // Storm at minute 120 but the trace revokes this bid at minute 90.
        let plan = FaultPlan::new(5).with_storm("t.spike", SimTime::from_mins(120));
        let mut p = CloudProvider::new(spike_pool())
            .with_launch_delay(SimDur::ZERO)
            .with_fault_plan(plan);
        let vm = p.request_spot(SimTime::ZERO, "t.spike", 0.2).unwrap();
        p.poll(SimTime::from_mins(95));
        assert_eq!(p.vm(vm).unwrap().state(), VmState::Revoked { at: SimTime::from_mins(90) });
    }

    #[test]
    fn delayed_notice_shrinks_the_grace_window() {
        let plan = FaultPlan::new(5)
            .with_storm("t.spike", SimTime::from_mins(40))
            .with_delayed_notices(1.0, SimDur::from_secs(10));
        let mut p = CloudProvider::new(spike_pool())
            .with_launch_delay(SimDur::ZERO)
            .with_fault_plan(plan);
        let vm = p.request_spot(SimTime::ZERO, "t.spike", 10.0).unwrap();
        assert_eq!(p.vm(vm).unwrap().notice_lead(), SimDur::from_secs(10));
        // Nothing at the contractual two-minute mark…
        assert!(p.poll(SimTime::from_mins(38)).is_empty());
        // …the notice fires only 10 s ahead.
        let ev = p.poll(SimTime::from_secs(40 * 60 - 10));
        assert_eq!(
            ev,
            vec![CloudEvent::RevocationNotice {
                vm,
                revoke_at: SimTime::from_mins(40),
                grace: SimDur::from_secs(10),
            }]
        );
    }

    #[test]
    fn poll_and_poll_scan_agree_under_faults() {
        let plan = FaultPlan::new(9)
            .with_periodic_storms("t.spike", SimTime::from_mins(35), SimDur::from_mins(45), 3)
            .with_delayed_notices(0.5, SimDur::from_secs(10));
        let build = || {
            CloudProvider::new(spike_pool())
                .with_launch_delay(SimDur::ZERO)
                .with_fault_plan(plan.clone())
        };
        let mut a = build();
        let mut b = build();
        for (i, launch) in [0u64, 5, 10, 36, 80].iter().enumerate() {
            let bid = if i % 2 == 0 { 10.0 } else { 0.2 };
            a.request_spot(SimTime::from_mins(*launch), "t.spike", bid).unwrap();
            b.request_spot(SimTime::from_mins(*launch), "t.spike", bid).unwrap();
        }
        for m in 0..240 {
            let t = SimTime::from_mins(m);
            assert_eq!(a.poll(t), b.poll_scan(t), "diverged at minute {m}");
        }
    }

    #[test]
    fn spine_backed_provider_is_bit_identical() {
        // Same request/poll/terminate sequence with and without a spine:
        // identical events, identical ledgers.
        let pool = spike_pool();
        let spine = Arc::new(PoolSpine::build(&pool));
        let mut plain = CloudProvider::new(pool.clone()).with_launch_delay(SimDur::ZERO);
        let mut spined = CloudProvider::new(pool)
            .with_launch_delay(SimDur::ZERO)
            .with_spine(Arc::clone(&spine));
        for (launch, bid) in [(0u64, 10.0), (5, 0.2), (40, 0.3), (120, 10.0)] {
            let t = SimTime::from_mins(launch);
            let a = plain.request_spot(t, "t.spike", bid).unwrap();
            let b = spined.request_spot(t, "t.spike", bid).unwrap();
            assert_eq!(a, b);
            assert_eq!(plain.vm(a).unwrap().revoke_at, spined.vm(b).unwrap().revoke_at);
        }
        assert!(spined.market_price("t.spike", SimTime::ZERO).is_some());
        assert!(spined.request_spot(SimTime::ZERO, "nope", 1.0).is_err());
        for m in 0..240 {
            let t = SimTime::from_mins(m);
            assert_eq!(plain.poll(t), spined.poll(t), "diverged at minute {m}");
        }
        assert_eq!(plain.ledger().records(), spined.ledger().records());
        assert!(spine.queries() > 0, "spine must have served the requests");
    }

    #[test]
    fn launch_delay_shifts_billing_start() {
        let mut p = CloudProvider::new(spike_pool()).with_launch_delay(SimDur::from_secs(60));
        let vm = p.request_spot(SimTime::ZERO, "t.spike", 10.0).unwrap();
        assert_eq!(p.vm(vm).unwrap().launched_at(), SimTime::from_mins(1));
        let rec = p.terminate(SimTime::from_mins(31), vm);
        // Billed for 30 minutes, not 31.
        assert!((rec.gross - 0.05).abs() < 1e-9);
    }
}
