//! S3-like remote object storage for checkpoints.
//!
//! The paper (§IV.F) measures checkpointing to be CPU-bound: the 16-vCPU
//! m4.4xlarge uploads at 134.22 MB/s while the 1-vCPU t2.micro reaches
//! 62.83 MB/s. Fitting a power law through those two points gives
//! `speed(v) = 62.83 · v^0.274` MB/s, which this module uses for all
//! transfer-time accounting. The maximum checkpointable model size is
//! `speed × 120 s`, the revocation-notice lead time.

use serde::{Deserialize, Serialize};
use spottune_market::{InstanceType, SimDur};
use std::collections::BTreeMap;

/// Upload speed of the 1-vCPU reference instance, MB/s (measured: t2.micro).
pub const BASE_SPEED_MBPS: f64 = 62.83;
/// Exponent of the vCPU power law fitted through the paper's two measurements.
pub const SPEED_EXPONENT: f64 = 0.274;

/// Checkpoint upload/download speed for an instance type, in MB/s.
///
/// Memoized for common vCPU counts — `transfer_time` runs on every
/// checkpoint, restore, notice and recycle of every campaign, and `powf`
/// is the only expensive operation in it.
pub fn checkpoint_speed_mbps(instance: &InstanceType) -> f64 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[f64; 65]> = OnceLock::new();
    let v = instance.vcpus();
    if (v as usize) < 65 {
        let table = TABLE.get_or_init(|| {
            std::array::from_fn(|i| BASE_SPEED_MBPS * (i as f64).powf(SPEED_EXPONENT))
        });
        table[v as usize]
    } else {
        BASE_SPEED_MBPS * (v as f64).powf(SPEED_EXPONENT)
    }
}

/// Largest model checkpointable within the two-minute notice window, in MB.
pub fn max_model_size_mb(instance: &InstanceType) -> f64 {
    checkpoint_speed_mbps(instance) * 120.0
}

/// Transfer time for `size_mb` megabytes at the instance's speed.
///
/// Rounded up to whole simulation seconds (minimum one second for any
/// non-empty transfer).
pub fn transfer_time(instance: &InstanceType, size_mb: f64) -> SimDur {
    assert!(size_mb >= 0.0, "size must be non-negative");
    if size_mb == 0.0 {
        return SimDur::ZERO;
    }
    let secs = size_mb / checkpoint_speed_mbps(instance);
    SimDur::from_secs(secs.ceil().max(1.0) as u64)
}

/// A stored object's metadata.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Object size in MB.
    pub size_mb: f64,
    /// Number of times the object has been overwritten.
    pub versions: u64,
}

/// In-memory stand-in for the remote object store (AWS S3 in the paper).
///
/// Tracks object sizes and aggregate transfer statistics. The store itself is
/// passive: callers add the returned transfer times to their own clocks.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObjectStore {
    objects: BTreeMap<String, ObjectMeta>,
    bytes_up_mb: f64,
    bytes_down_mb: f64,
    puts: u64,
    gets: u64,
}

impl ObjectStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        ObjectStore::default()
    }

    /// Uploads (or overwrites) an object from `instance`, returning the
    /// simulated transfer time.
    pub fn put(&mut self, key: &str, size_mb: f64, instance: &InstanceType) -> SimDur {
        // Overwrites (the common case: every job re-checkpoints the same
        // key on each notice/recycle) must not re-allocate the key.
        let meta = match self.objects.get_mut(key) {
            Some(meta) => meta,
            None => self
                .objects
                .entry(key.to_string())
                .or_insert(ObjectMeta { size_mb, versions: 0 }),
        };
        meta.size_mb = size_mb;
        meta.versions += 1;
        self.bytes_up_mb += size_mb;
        self.puts += 1;
        transfer_time(instance, size_mb)
    }

    /// Downloads an object to `instance`, returning its size and transfer
    /// time, or `None` if the key does not exist.
    pub fn get(&mut self, key: &str, instance: &InstanceType) -> Option<(f64, SimDur)> {
        let meta = *self.objects.get(key)?;
        self.bytes_down_mb += meta.size_mb;
        self.gets += 1;
        Some((meta.size_mb, transfer_time(instance, meta.size_mb)))
    }

    /// Whether an object exists.
    pub fn contains(&self, key: &str) -> bool {
        self.objects.contains_key(key)
    }

    /// Metadata for an object.
    pub fn meta(&self, key: &str) -> Option<ObjectMeta> {
        self.objects.get(key).copied()
    }

    /// Number of distinct objects stored.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Total megabytes uploaded over the store's lifetime.
    pub fn uploaded_mb(&self) -> f64 {
        self.bytes_up_mb
    }

    /// Total megabytes downloaded over the store's lifetime.
    pub fn downloaded_mb(&self) -> f64 {
        self.bytes_down_mb
    }

    /// Total `(put, get)` operation counts.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.puts, self.gets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_market::instance;

    #[test]
    fn speed_matches_paper_measurements() {
        // m4.4xlarge (16 vCPU) should land on ~134.22 MB/s.
        let m4 = instance::by_name("m4.4xlarge").unwrap();
        let speed = checkpoint_speed_mbps(&m4);
        assert!((speed - 134.22).abs() < 2.0, "speed was {speed}");
        // Max model size ≈ 15.73 GB (paper: 15.73 GB).
        let max_gb = max_model_size_mb(&m4) / 1024.0;
        assert!((max_gb - 15.73).abs() < 0.3, "max size was {max_gb} GB");
        // 1-vCPU reference ≈ 7.36 GB.
        let micro = InstanceType::new("t2.micro", 1, 1.0, 0.0116);
        let max_gb = max_model_size_mb(&micro) / 1024.0;
        assert!((max_gb - 7.36).abs() < 0.1, "micro max size was {max_gb} GB");
    }

    #[test]
    fn faster_instances_upload_faster() {
        let small = instance::by_name("r4.large").unwrap();
        let big = instance::by_name("m4.4xlarge").unwrap();
        assert!(transfer_time(&big, 500.0) < transfer_time(&small, 500.0));
    }

    #[test]
    fn put_get_roundtrip() {
        let inst = instance::by_name("r4.large").unwrap();
        let mut store = ObjectStore::new();
        assert!(store.is_empty());
        let up = store.put("ckpt/hp1", 100.0, &inst);
        assert!(up.as_secs() >= 1);
        assert!(store.contains("ckpt/hp1"));
        let (size, down) = store.get("ckpt/hp1", &inst).unwrap();
        assert_eq!(size, 100.0);
        assert_eq!(up, down);
        assert_eq!(store.len(), 1);
        assert!(store.get("missing", &inst).is_none());
    }

    #[test]
    fn overwrite_bumps_version_and_traffic() {
        let inst = instance::by_name("r4.large").unwrap();
        let mut store = ObjectStore::new();
        store.put("k", 10.0, &inst);
        store.put("k", 20.0, &inst);
        let meta = store.meta("k").unwrap();
        assert_eq!(meta.versions, 2);
        assert_eq!(meta.size_mb, 20.0);
        assert_eq!(store.uploaded_mb(), 30.0);
        assert_eq!(store.op_counts(), (2, 0));
    }

    #[test]
    fn zero_size_transfer_is_instant() {
        let inst = instance::by_name("r4.large").unwrap();
        assert_eq!(transfer_time(&inst, 0.0), SimDur::ZERO);
    }
}
