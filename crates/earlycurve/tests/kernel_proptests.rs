//! Property tests locking the SoA lane kernel bit-identical to the scalar
//! staged-curve path: arbitrary lane counts (full chunks, ragged
//! remainders, single lanes), arbitrary coefficients including degenerate
//! plateau denominators, and end-to-end `fit_into` + stage selection +
//! lane evaluation against [`EarlyCurve::predict_final`].

use proptest::prelude::*;
use spottune_earlycurve::kernel::{
    extrapolation_stage, predict_lanes, step_cost_lanes, CurveLanes, FitScratch,
};
use spottune_earlycurve::prelude::*;

/// The scalar reference of one lane: exactly [`StageFit::predict`]'s
/// arithmetic on raw coefficients.
fn scalar_predict(a0: f64, a1: f64, a2: f64, a3: f64, rel: f64) -> f64 {
    let denom = a0 * rel * rel + a1 * rel + a2;
    if denom <= 1e-12 {
        a3
    } else {
        a3 + 1.0 / denom
    }
}

/// Coefficients drawn near the plateau threshold often enough to exercise
/// both branches: raw entropy in `[-1, 1]` with a third of the mass mapped
/// onto `[0, 2e-12]`.
fn coeff(raw: f64) -> f64 {
    if raw.abs() < 1.0 / 3.0 {
        (raw.abs() * 3.0) * 2e-12
    } else {
        raw
    }
}

/// A NaN-free synthetic learning curve: decaying rational trend plus
/// bounded deterministic jitter, optionally flattened into a plateau tail.
fn curve_points(n: usize, base: f64, scale: f64, decay: f64, noise: &[f64]) -> Vec<(u64, f64)> {
    (1..=n as u64)
        .map(|k| {
            let trend = base + scale / (decay * k as f64 + 1.0);
            let jitter = 0.02 * (noise[(k as usize - 1) % noise.len()] - 0.5);
            (k, trend + jitter)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// `predict_lanes` over any width — 1 lane, exact 8-wide chunks,
    /// ragged remainders — is the scalar formula per lane, bit for bit.
    #[test]
    fn lane_kernel_is_bit_identical_to_scalar_predict(
        n in 1usize..70,
        flat in prop::collection::vec(-1.0f64..1.0, 350..351),
    ) {
        let a0: Vec<f64> = (0..n).map(|i| coeff(flat[i])).collect();
        let a1: Vec<f64> = (0..n).map(|i| coeff(flat[70 + i])).collect();
        let a2: Vec<f64> = (0..n).map(|i| coeff(flat[140 + i])).collect();
        let a3: Vec<f64> = (0..n).map(|i| flat[210 + i]).collect();
        let rel: Vec<f64> = (0..n).map(|i| (flat[280 + i] + 1.0) * 500.0).collect();
        let mut out = vec![0.0; n];
        predict_lanes(&a0, &a1, &a2, &a3, &rel, &mut out);
        for i in 0..n {
            let want = scalar_predict(a0[i], a1[i], a2[i], a3[i], rel[i]);
            prop_assert_eq!(out[i].to_bits(), want.to_bits(), "lane {}", i);
        }
    }

    /// `step_cost_lanes` matches the provisioner's scalar expected-cost
    /// expression per lane.
    #[test]
    fn step_cost_lanes_are_bit_identical_to_scalar(
        n in 1usize..40,
        flat in prop::collection::vec(0.0f64..1.0, 120..121),
    ) {
        let spe: Vec<f64> = (0..n).map(|i| flat[i] * 30.0).collect();
        let p: Vec<f64> = (0..n).map(|i| flat[40 + i]).collect();
        let price: Vec<f64> = (0..n).map(|i| flat[80 + i] * 3.0).collect();
        let mut out = vec![0.0; n];
        step_cost_lanes(&spe, &p, &price, &mut out);
        for i in 0..n {
            let want = spe[i] * (1.0 - p[i]) * price[i];
            prop_assert_eq!(out[i].to_bits(), want.to_bits(), "lane {}", i);
        }
    }

    /// End to end: random curves fit through `fit_into`, extrapolation
    /// stage selected, evaluated in shared lanes — bit-identical to the
    /// allocating scalar `predict_final`, across group sizes (including a
    /// group of one when `curves == 1`).
    #[test]
    fn lane_path_matches_predict_final_on_random_curves(
        curves in 1usize..9,
        lens in prop::collection::vec(3usize..60, 8..9),
        bases in prop::collection::vec(0.1f64..2.0, 8..9),
        scales in prop::collection::vec(0.0f64..3.0, 8..9),
        decays in prop::collection::vec(0.05f64..0.6, 8..9),
        noise in prop::collection::vec(0.0f64..1.0, 64..65),
        horizon in 100u64..2000,
    ) {
        let mut ecs = Vec::new();
        for c in 0..curves {
            let mut ec = EarlyCurve::new(EarlyCurveConfig::default());
            for (k, m) in curve_points(lens[c], bases[c], scales[c], decays[c], &noise) {
                ec.push(k, m);
            }
            ecs.push(ec);
        }
        let mut fit = FitScratch::new();
        let mut lanes = CurveLanes::new();
        let mut lane_of = Vec::new();
        for ec in &ecs {
            if ec.fit_into(&mut fit) {
                lane_of.push(Some(lanes.push(extrapolation_stage(fit.stages(), horizon), horizon)));
            } else {
                lane_of.push(None);
            }
        }
        lanes.evaluate();
        for (ec, lane) in ecs.iter().zip(&lane_of) {
            let want = ec.predict_final(horizon);
            match (want, lane) {
                (Some(want), Some(lane)) => {
                    prop_assert_eq!(lanes.out()[*lane].to_bits(), want.to_bits());
                }
                (None, None) => {}
                (want, lane) => {
                    prop_assert!(false, "fit disagreement: scalar {:?}, lane {:?}", want, lane);
                }
            }
        }
    }

    /// Degenerate plateaus — constant and near-constant curves whose fit
    /// collapses the rational denominator — still match the scalar path
    /// exactly (the lane select must take the plateau branch on the same
    /// inputs the scalar early-return does).
    #[test]
    fn degenerate_plateau_curves_stay_bit_identical(
        n in 3usize..40,
        level in 0.2f64..1.5,
        horizon in 50u64..500,
    ) {
        let mut ec = EarlyCurve::new(EarlyCurveConfig::default());
        for k in 1..=n as u64 {
            ec.push(k, level);
        }
        let mut fit = FitScratch::new();
        let mut lanes = CurveLanes::new();
        prop_assert!(ec.fit_into(&mut fit), "constant curves of three+ points fit");
        let lane = lanes.push(extrapolation_stage(fit.stages(), horizon), horizon);
        lanes.evaluate();
        let want = ec.predict_final(horizon).expect("fit exists");
        prop_assert_eq!(lanes.out()[lane].to_bits(), want.to_bits());
    }
}
