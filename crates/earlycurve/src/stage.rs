//! Stage-boundary detection (paper Eq. 7).
//!
//! A step `i` opens a new stage when its relative metric change
//! `ζᵢ = |Lᵢ − Lᵢ₋₁| / Lᵢ₋₁` exceeds `ξ` *after* a steady period — every
//! `ζⱼ` in the preceding `window` steps below `ε`. "If the changing rate of
//! a model's metric is suddenly high after a steady period, it could be
//! considered to be moving to a new stage."

use serde::{Deserialize, Serialize};

/// Detection thresholds. Paper defaults are `ξ = 0.5`, `ε = 0.01`,
/// window 5; [`StageConfig::default`] uses `ξ = 0.3`, `ε = 0.05` instead
/// because this harness's curves carry ~2 % multiplicative metric noise and
/// gentler decay drops than ResNet-56's (calibration note in DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageConfig {
    /// Threshold `ξ` on the instantaneous change rate.
    pub xi: f64,
    /// Threshold `ε` on the preceding steady period.
    pub eps: f64,
    /// Number of preceding steps that must be steady.
    pub window: usize,
    /// Minimum steps in a stage before a new boundary may open.
    pub min_stage_len: usize,
}

impl Default for StageConfig {
    fn default() -> Self {
        StageConfig { xi: 0.3, eps: 0.05, window: 5, min_stage_len: 8 }
    }
}

impl StageConfig {
    /// The paper's exact Eq. 7 constants (ξ = 0.5, ε = 0.01).
    pub fn paper() -> Self {
        StageConfig { xi: 0.5, eps: 0.01, window: 5, min_stage_len: 8 }
    }
}

/// Returns the indices (into `metrics`) at which a new stage starts,
/// *excluding* the implicit stage at index 0.
///
/// `metrics[i]` is the metric after step `i+1`; indices are positions in
/// the slice. Boundaries honor `min_stage_len` spacing.
pub fn detect_boundaries(metrics: &[f64], cfg: &StageConfig) -> Vec<usize> {
    let mut boundaries = Vec::new();
    detect_boundaries_into(metrics, cfg, &mut boundaries);
    boundaries
}

/// [`detect_boundaries`] into a caller-owned buffer (cleared first), so the
/// batched sweep's per-selection fits reuse one allocation. Same indices,
/// same order.
pub fn detect_boundaries_into(metrics: &[f64], cfg: &StageConfig, boundaries: &mut Vec<usize>) {
    boundaries.clear();
    if metrics.len() < cfg.window + 2 {
        return;
    }
    let mut last_start = 0usize;
    for i in 1..metrics.len() {
        if i - last_start < cfg.min_stage_len || i < cfg.window + 1 {
            continue;
        }
        let prev = metrics[i - 1];
        if prev.abs() < 1e-12 {
            continue;
        }
        let zeta_i = (metrics[i] - prev).abs() / prev.abs();
        if zeta_i <= cfg.xi {
            continue;
        }
        // Steady-period condition on the preceding `window` steps.
        let steady = (i - cfg.window..i).all(|j| {
            let base = metrics[j - 1].abs();
            base > 1e-12 && (metrics[j] - metrics[j - 1]).abs() / base < cfg.eps
        });
        if steady {
            boundaries.push(i);
            last_start = i;
        }
    }
}

/// Splits `points` (absolute step, metric) into per-stage slices according
/// to the detected boundaries. The union of the returned ranges is the whole
/// input and ranges are disjoint — the Eq. 5/6 partition invariant.
pub fn split_stages<'a>(
    points: &'a [(u64, f64)],
    boundaries: &[usize],
) -> Vec<&'a [(u64, f64)]> {
    let mut out = Vec::with_capacity(boundaries.len() + 1);
    let mut start = 0usize;
    for &b in boundaries {
        out.push(&points[start..b]);
        start = b;
    }
    out.push(&points[start..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A curve that is steady around 1.0, then drops to 0.4 at index 30.
    fn two_stage_curve() -> Vec<f64> {
        let mut m: Vec<f64> = (0..30).map(|i| 1.0 + 0.3 / (1.0 + i as f64)).collect();
        m.extend((0..30).map(|i| 0.4 + 0.05 / (1.0 + i as f64)));
        m
    }

    #[test]
    fn detects_the_drop() {
        let cfg = StageConfig::default();
        let b = detect_boundaries(&two_stage_curve(), &cfg);
        assert_eq!(b, vec![30]);
    }

    #[test]
    fn no_boundary_without_steady_prefix() {
        // A drop right at the start, while the curve is still moving fast.
        let mut m: Vec<f64> = (0..6).map(|i| 3.0 / (1.0 + i as f64)).collect();
        m.extend((0..30).map(|i| 0.4 + 0.05 / (1.0 + i as f64)));
        let b = detect_boundaries(&m, &StageConfig::default());
        assert!(b.is_empty(), "boundaries {b:?}");
    }

    #[test]
    fn smooth_single_stage_has_no_boundaries() {
        let m: Vec<f64> = (0..60).map(|i| 0.4 + 1.0 / (1.0 + 0.2 * i as f64)).collect();
        assert!(detect_boundaries(&m, &StageConfig::default()).is_empty());
    }

    #[test]
    fn min_stage_len_suppresses_rapid_boundaries() {
        // Two drops four steps apart: only the first can open a stage.
        let mut m = vec![1.0; 20];
        m.extend(vec![0.5; 4]);
        m.extend(vec![0.2; 20]);
        let b = detect_boundaries(&m, &StageConfig { min_stage_len: 8, ..StageConfig::default() });
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn noise_below_eps_does_not_block_detection() {
        let cfg = StageConfig::default();
        let mut m: Vec<f64> = (0..30)
            .map(|i| (1.0 + 0.02 * ((i * 37 % 10) as f64 / 10.0 - 0.5)) * 1.0)
            .collect();
        m.extend(vec![0.3; 20]);
        let b = detect_boundaries(&m, &cfg);
        assert_eq!(b, vec![30]);
    }

    #[test]
    fn split_partitions_the_points() {
        let points: Vec<(u64, f64)> = (0..10).map(|k| (k, k as f64)).collect();
        let stages = split_stages(&points, &[4, 7]);
        assert_eq!(stages.len(), 3);
        assert_eq!(stages[0].len(), 4);
        assert_eq!(stages[1].len(), 3);
        assert_eq!(stages[2].len(), 3);
        let total: usize = stages.iter().map(|s| s.len()).sum();
        assert_eq!(total, points.len());
        // Contiguity: each stage starts where the previous ended.
        assert_eq!(stages[1][0].0, 4);
        assert_eq!(stages[2][0].0, 7);
    }

    #[test]
    fn short_series_yields_no_boundaries() {
        assert!(detect_boundaries(&[1.0, 0.5], &StageConfig::default()).is_empty());
    }
}
