//! Cross-campaign lane kernel: fixed-width f64 evaluation of EarlyCurve
//! stage predictions and SPE step-cost decisions for a whole cohort of
//! campaigns at once.
//!
//! The batched sweep engine pauses W campaigns at their prediction barrier
//! (Algorithm 1 lines 48–53), gathers every job's extrapolation-stage
//! coefficients into structure-of-arrays lanes, and evaluates the rational
//! model for all of them in chunked `[f64; 8]` blocks the compiler can
//! auto-vectorize — no external SIMD crates, no `unsafe`.
//!
//! **Bit-identity by construction.** Lanes run *across* campaigns, never
//! within one: each lane holds one `(campaign, job)` prediction, and every
//! lane evaluates the exact scalar expression of
//! [`StageFit::predict`](crate::fit::StageFit::predict) —
//! `denom = a0·rel² + a1·rel + a2`, then `a3 + 1/denom` with the same
//! `denom ≤ 1e-12` plateau guard. Reordering *independent* IEEE-754
//! computations does not change any of their bits, so the lane path is
//! bit-identical to calling `predict` per job in a loop. The
//! `kernel_equivalence` proptests and the core `batch_equivalence` suite
//! lock this.
//!
//! [`FitScratch`] is the companion allocation-free staged-fit path: the
//! same boundary-detection → segment-merge → per-stage line search as
//! [`EarlyCurve::fit`](crate::predictor::EarlyCurve::fit), writing into
//! reusable buffers instead of fresh `Vec`s (same arithmetic, same fits).

use crate::fit::StageFit;

/// Lanes per evaluation block. Eight f64 lanes fill one AVX-512 register
/// or two AVX2 registers; the remainder loop handles ragged tails so any
/// group size (including 1) is valid.
pub const LANE_WIDTH: usize = 8;

/// Reusable buffers for one allocation-free staged fit
/// ([`EarlyCurve::fit_into`](crate::predictor::EarlyCurve::fit_into)):
/// the metric scan, detected boundaries, the short-segment merge buffer
/// and the regression rows, plus the output stages.
#[derive(Debug, Default)]
pub struct FitScratch {
    /// Metric values of the observed points (boundary detection input).
    pub(crate) metrics: Vec<f64>,
    /// Detected stage-boundary indices.
    pub(crate) boundaries: Vec<usize>,
    /// Short segments carried into the next stage (the `min_fit_points`
    /// merge of `EarlyCurve::fit`).
    pub(crate) pending: Vec<(u64, f64)>,
    /// The merged points one stage is fitted over.
    pub(crate) merged: Vec<(u64, f64)>,
    /// Regression rows reused across the plateau line search.
    pub(crate) rows: Vec<[f64; 3]>,
    /// The fitted stages of the most recent `fit_into` call.
    stages: Vec<StageFit>,
}

impl FitScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        FitScratch::default()
    }

    /// The stages fitted by the most recent
    /// [`EarlyCurve::fit_into`](crate::predictor::EarlyCurve::fit_into).
    pub fn stages(&self) -> &[StageFit] {
        &self.stages
    }

    /// Clears and returns the stage buffer for a fresh fit (crate-internal:
    /// `fit_into` owns the filling protocol).
    pub(crate) fn stages_mut(&mut self) -> &mut Vec<StageFit> {
        &mut self.stages
    }
}

/// The stage a staged fit extrapolates step `k` from: the last stage whose
/// start is at or before `k`, falling back to the first. Exactly the
/// selection rule of [`StagedFit::predict`](crate::predictor::StagedFit::
/// predict), exposed so the lane path can pick the stage without
/// materializing a `StagedFit`.
///
/// # Panics
///
/// Panics if `stages` is empty.
pub fn extrapolation_stage(stages: &[StageFit], k: u64) -> &StageFit {
    stages
        .iter()
        .rev()
        .find(|s| s.start <= k)
        .unwrap_or(stages.first().expect("at least one stage"))
}

/// Structure-of-arrays lanes of per-job stage predictions: one slot per
/// `(campaign, job)` pair of a cohort, evaluated together by
/// [`predict_lanes`].
#[derive(Debug, Default)]
pub struct CurveLanes {
    a0: Vec<f64>,
    a1: Vec<f64>,
    a2: Vec<f64>,
    a3: Vec<f64>,
    rel: Vec<f64>,
    out: Vec<f64>,
    /// Lifetime counters (see the batched engine's stats): kernel
    /// evaluations, lane slots spanned (occupied rounded up to whole
    /// blocks), and lanes actually occupied.
    invocations: u64,
    slots: u64,
    occupied: u64,
}

impl CurveLanes {
    /// Creates empty lanes.
    pub fn new() -> Self {
        CurveLanes::default()
    }

    /// Drops every queued lane (counters persist).
    pub fn clear(&mut self) {
        self.a0.clear();
        self.a1.clear();
        self.a2.clear();
        self.a3.clear();
        self.rel.clear();
        self.out.clear();
    }

    /// Queued lane count.
    pub fn len(&self) -> usize {
        self.a0.len()
    }

    /// Whether no lane is queued.
    pub fn is_empty(&self) -> bool {
        self.a0.is_empty()
    }

    /// Queues one prediction — `stage.predict(k)` — and returns its lane
    /// index into [`CurveLanes::out`].
    pub fn push(&mut self, stage: &StageFit, k: u64) -> usize {
        let rel = k.saturating_sub(stage.start) as f64;
        self.a0.push(stage.a0);
        self.a1.push(stage.a1);
        self.a2.push(stage.a2);
        self.a3.push(stage.a3);
        self.rel.push(rel);
        self.a0.len() - 1
    }

    /// Evaluates every queued lane through [`predict_lanes`]. Each output
    /// is bit-identical to the corresponding scalar `stage.predict(k)`.
    pub fn evaluate(&mut self) {
        let n = self.len();
        self.out.clear();
        self.out.resize(n, 0.0);
        predict_lanes(&self.a0, &self.a1, &self.a2, &self.a3, &self.rel, &mut self.out);
        self.invocations += 1;
        self.occupied += n as u64;
        self.slots += (n as u64).div_ceil(LANE_WIDTH as u64) * LANE_WIDTH as u64;
    }

    /// Predictions of the most recent [`CurveLanes::evaluate`], indexed by
    /// the lane numbers [`CurveLanes::push`] returned.
    pub fn out(&self) -> &[f64] {
        &self.out
    }

    /// `(invocations, slots, occupied)` lifetime counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.invocations, self.slots, self.occupied)
    }
}

/// Evaluates the Eq. 4 rational model for every lane:
/// `out[i] = a3[i] + 1 / (a0[i]·rel[i]² + a1[i]·rel[i] + a2[i])`, with the
/// scalar path's `denom ≤ 1e-12 → a3` plateau guard. Runs in `[f64; 8]`
/// blocks with a scalar remainder loop; every lane computes the exact
/// [`StageFit::predict`] expression, so results are bit-identical to the
/// scalar loop for any slice length (ragged tails included).
///
/// # Panics
///
/// Panics if the slices disagree on length.
pub fn predict_lanes(a0: &[f64], a1: &[f64], a2: &[f64], a3: &[f64], rel: &[f64], out: &mut [f64]) {
    let n = out.len();
    assert!(
        a0.len() == n && a1.len() == n && a2.len() == n && a3.len() == n && rel.len() == n,
        "lane slices must agree on length"
    );
    let mut blocks = a0
        .chunks_exact(LANE_WIDTH)
        .zip(a1.chunks_exact(LANE_WIDTH))
        .zip(a2.chunks_exact(LANE_WIDTH))
        .zip(a3.chunks_exact(LANE_WIDTH))
        .zip(rel.chunks_exact(LANE_WIDTH))
        .zip(out.chunks_exact_mut(LANE_WIDTH));
    for (((((c0, c1), c2), c3), cr), co) in &mut blocks {
        let c0: &[f64; LANE_WIDTH] = c0.try_into().expect("exact chunk");
        let c1: &[f64; LANE_WIDTH] = c1.try_into().expect("exact chunk");
        let c2: &[f64; LANE_WIDTH] = c2.try_into().expect("exact chunk");
        let c3: &[f64; LANE_WIDTH] = c3.try_into().expect("exact chunk");
        let cr: &[f64; LANE_WIDTH] = cr.try_into().expect("exact chunk");
        let co: &mut [f64; LANE_WIDTH] = co.try_into().expect("exact chunk");
        for l in 0..LANE_WIDTH {
            let r = cr[l];
            let denom = c0[l] * r * r + c1[l] * r + c2[l];
            // Branchless select: the full value is computed in every lane
            // (an out-of-range divide just yields an unused inf) and the
            // guard picks exactly what the scalar branch would return.
            let full = c3[l] + 1.0 / denom;
            co[l] = if denom <= 1e-12 { c3[l] } else { full };
        }
    }
    let head = n - n % LANE_WIDTH;
    for i in head..n {
        let r = rel[i];
        let denom = a0[i] * r * r + a1[i] * r + a2[i];
        out[i] = if denom <= 1e-12 { a3[i] } else { a3[i] + 1.0 / denom };
    }
}

/// Expected-step-cost lanes (the paper's Eq. 2 decision the provisioner
/// evaluates per market): `out[i] = spe[i] · (1 − p[i]) · price[i]`,
/// chunked like [`predict_lanes`]. Each lane is the exact scalar
/// expression, so a provisioner that gathers its per-market terms and
/// evaluates them here gets the same bits as the scalar loop.
///
/// # Panics
///
/// Panics if the slices disagree on length.
pub fn step_cost_lanes(spe: &[f64], p: &[f64], price: &[f64], out: &mut [f64]) {
    let n = out.len();
    assert!(
        spe.len() == n && p.len() == n && price.len() == n,
        "lane slices must agree on length"
    );
    let mut blocks = spe
        .chunks_exact(LANE_WIDTH)
        .zip(p.chunks_exact(LANE_WIDTH))
        .zip(price.chunks_exact(LANE_WIDTH))
        .zip(out.chunks_exact_mut(LANE_WIDTH));
    for (((cs, cp), cc), co) in &mut blocks {
        let cs: &[f64; LANE_WIDTH] = cs.try_into().expect("exact chunk");
        let cp: &[f64; LANE_WIDTH] = cp.try_into().expect("exact chunk");
        let cc: &[f64; LANE_WIDTH] = cc.try_into().expect("exact chunk");
        let co: &mut [f64; LANE_WIDTH] = co.try_into().expect("exact chunk");
        for l in 0..LANE_WIDTH {
            co[l] = cs[l] * (1.0 - cp[l]) * cc[l];
        }
    }
    let head = n - n % LANE_WIDTH;
    for i in head..n {
        out[i] = spe[i] * (1.0 - p[i]) * price[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::{EarlyCurve, EarlyCurveConfig};

    fn curve(n: u64, f: impl Fn(u64) -> f64) -> EarlyCurve {
        let mut ec = EarlyCurve::new(EarlyCurveConfig::default());
        for k in 1..=n {
            ec.push(k, f(k));
        }
        ec
    }

    #[test]
    fn fit_into_matches_fit() {
        let curves = [
            curve(60, |k| 0.5 + 2.0 / (0.2 * k as f64 + 1.0)),
            curve(70, |k| {
                if k <= 40 {
                    1.0 + 1.5 / (0.3 * k as f64 + 1.0)
                } else {
                    0.45 + 0.2 / (0.4 * (k - 40) as f64 + 1.0)
                }
            }),
            curve(3, |k| 1.0 / k as f64),
            curve(5, |_| 0.25),
        ];
        let mut scratch = FitScratch::new();
        for ec in &curves {
            let want = ec.fit().expect("≥3 points");
            assert!(ec.fit_into(&mut scratch), "fit_into must fit ≥3 points");
            assert_eq!(scratch.stages(), want.stages(), "scratch fit must match fit()");
        }
        // Under three points: both decline.
        let short = curve(2, |k| 1.0 / k as f64);
        assert!(short.fit().is_none());
        assert!(!short.fit_into(&mut scratch));
    }

    #[test]
    fn lanes_match_scalar_predict() {
        let ec = curve(60, |k| 0.4 + 1.8 / (0.25 * k as f64 + 1.0));
        let fit = ec.fit().unwrap();
        let stage = extrapolation_stage(fit.stages(), 400);
        assert_eq!(stage.predict(400).to_bits(), fit.predict(400).to_bits());
        // 17 lanes: two full blocks plus a ragged tail of one.
        let mut lanes = CurveLanes::new();
        let ks: Vec<u64> = (0..17).map(|i| 100 + 37 * i).collect();
        for &k in &ks {
            lanes.push(extrapolation_stage(fit.stages(), k), k);
        }
        lanes.evaluate();
        for (i, &k) in ks.iter().enumerate() {
            let want = fit.predict(k);
            assert_eq!(lanes.out()[i].to_bits(), want.to_bits(), "lane {i} at k={k}");
        }
        let (inv, slots, occupied) = lanes.counters();
        assert_eq!(inv, 1);
        assert_eq!(occupied, 17);
        assert_eq!(slots, 24, "17 lanes span three 8-wide blocks");
    }

    #[test]
    fn degenerate_denominator_takes_the_plateau() {
        let stage = StageFit { a0: 0.0, a1: 0.0, a2: 0.0, a3: 0.75, start: 0, mse: 0.0 };
        let mut lanes = CurveLanes::new();
        lanes.push(&stage, 1000);
        lanes.evaluate();
        assert_eq!(lanes.out()[0].to_bits(), stage.predict(1000).to_bits());
        assert_eq!(lanes.out()[0], 0.75);
    }

    #[test]
    fn step_cost_lanes_match_scalar() {
        let n = 13; // one block + ragged tail of five
        let spe: Vec<f64> = (0..n).map(|i| 1.5 + i as f64 * 0.3).collect();
        let p: Vec<f64> = (0..n).map(|i| (i as f64 * 0.07) % 1.0).collect();
        let price: Vec<f64> = (0..n).map(|i| 0.09 + i as f64 * 0.011).collect();
        let mut out = vec![0.0; n];
        step_cost_lanes(&spe, &p, &price, &mut out);
        for i in 0..n {
            let want = spe[i] * (1.0 - p[i]) * price[i];
            assert_eq!(out[i].to_bits(), want.to_bits(), "lane {i}");
        }
    }

    #[test]
    fn lane_clear_keeps_counters() {
        let stage = StageFit { a0: 0.0, a1: 0.1, a2: 1.0, a3: 0.2, start: 0, mse: 0.0 };
        let mut lanes = CurveLanes::new();
        lanes.push(&stage, 10);
        lanes.evaluate();
        lanes.clear();
        assert!(lanes.is_empty());
        assert_eq!(lanes.len(), 0);
        let (inv, _, occupied) = lanes.counters();
        assert_eq!((inv, occupied), (1, 1));
    }
}
