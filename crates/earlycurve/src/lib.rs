//! # spottune-earlycurve
//!
//! EarlyCurve — SpotTune's ML training-trend predictor (paper §III.C):
//! fits the validation-metric history with a *staged* rational model
//! (Eq. 4–6), detects learning-rate stage boundaries online (Eq. 7),
//! detects convergence plateaus, and predicts the final metric from partial
//! training so bad configurations can be shut down early. Includes the SLAQ
//! single-stage baseline used in the paper's Fig. 11 comparison.
//!
//! ```
//! use spottune_earlycurve::prelude::*;
//!
//! let mut ec = EarlyCurve::new(EarlyCurveConfig::default());
//! for k in 1..=60u64 {
//!     ec.push(k, 0.4 + 1.8 / (0.25 * k as f64 + 1.0));
//! }
//! let predicted = ec.predict_final(400).unwrap();
//! assert!((predicted - 0.4).abs() < 0.1);
//! ```

pub mod fit;
pub mod kernel;
pub mod predictor;
pub mod slaq;
pub mod solver;
pub mod stage;
pub mod superlinear;

pub use fit::StageFit;
pub use kernel::{CurveLanes, FitScratch, LANE_WIDTH};
pub use predictor::{EarlyCurve, EarlyCurveConfig, StagedFit};
pub use slaq::Slaq;
pub use stage::StageConfig;
pub use superlinear::{fit_geometric, AutoFit, GeometricFit};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::fit::{fit_stage, StageFit};
    pub use crate::predictor::{EarlyCurve, EarlyCurveConfig, StagedFit};
    pub use crate::slaq::Slaq;
    pub use crate::stage::{detect_boundaries, split_stages, StageConfig};
    pub use crate::superlinear::{fit_geometric, AutoFit, GeometricFit};
}
