//! Tiny dense linear algebra: Gaussian elimination and (weighted) linear
//! least squares via normal equations. Sized for the 3-coefficient systems
//! EarlyCurve solves, but general.

/// Solves `A x = b` for square `A` (row-major, `n × n`) with partial
/// pivoting. Returns `None` if the system is (numerically) singular.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn solve(a: &[f64], b: &[f64], n: usize) -> Option<Vec<f64>> {
    assert_eq!(a.len(), n * n, "matrix must be n×n");
    assert_eq!(b.len(), n, "rhs must have n entries");
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    if solve_in_place(&mut m, &mut rhs, n) {
        Some(rhs)
    } else {
        None
    }
}

/// Allocation-free variant of [`solve`]: destroys `m`, leaves the solution
/// in `rhs`, returns `false` on a (numerically) singular system. Callers on
/// hot paths (EarlyCurve's plateau line search) pass stack buffers.
///
/// # Panics
///
/// Panics if dimensions are inconsistent.
pub fn solve_in_place(m: &mut [f64], rhs: &mut [f64], n: usize) -> bool {
    assert_eq!(m.len(), n * n, "matrix must be n×n");
    assert_eq!(rhs.len(), n, "rhs must have n entries");
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for r in col + 1..n {
            if m[r * n + col].abs() > m[pivot * n + col].abs() {
                pivot = r;
            }
        }
        if m[pivot * n + col].abs() < 1e-12 {
            return false;
        }
        if pivot != col {
            for c in 0..n {
                m.swap(col * n + c, pivot * n + c);
            }
            rhs.swap(col, pivot);
        }
        let diag = m[col * n + col];
        for r in col + 1..n {
            let factor = m[r * n + col] / diag;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                m[r * n + c] -= factor * m[col * n + c];
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution (solution overwrites `rhs`).
    for col in (0..n).rev() {
        let mut acc = rhs[col];
        for c in col + 1..n {
            acc -= m[col * n + c] * rhs[c];
        }
        rhs[col] = acc / m[col * n + col];
    }
    true
}

/// Weighted linear least squares: minimizes `Σ wᵢ (xᵢᵀβ − yᵢ)²` over β.
///
/// `rows` holds the feature vectors (all of width `p`); solves the `p × p`
/// normal equations with a small ridge term for conditioning. Returns `None`
/// when the system is singular even with the ridge.
///
/// # Panics
///
/// Panics if inputs disagree in length or `p` is zero.
pub fn weighted_least_squares(
    rows: &[Vec<f64>],
    y: &[f64],
    w: &[f64],
    p: usize,
    ridge: f64,
) -> Option<Vec<f64>> {
    assert!(p > 0, "need at least one coefficient");
    assert_eq!(rows.len(), y.len(), "row/target mismatch");
    assert_eq!(rows.len(), w.len(), "row/weight mismatch");
    let mut xtx = vec![0.0; p * p];
    let mut xty = vec![0.0; p];
    for ((row, &target), &weight) in rows.iter().zip(y).zip(w) {
        assert_eq!(row.len(), p, "feature width mismatch");
        for i in 0..p {
            xty[i] += weight * row[i] * target;
            for j in 0..p {
                xtx[i * p + j] += weight * row[i] * row[j];
            }
        }
    }
    for i in 0..p {
        xtx[i * p + i] += ridge;
    }
    solve(&xtx, &xty, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_known_system() {
        // 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
        let x = solve(&[2.0, 1.0, 1.0, -1.0], &[5.0, 1.0], 2).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // First pivot position is 0 but the system is fine.
        let x = solve(&[0.0, 1.0, 1.0, 0.0], &[3.0, 4.0], 2).unwrap();
        assert!((x[0] - 4.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_returns_none() {
        assert!(solve(&[1.0, 2.0, 2.0, 4.0], &[1.0, 2.0], 2).is_none());
    }

    #[test]
    fn least_squares_recovers_quadratic() {
        // y = 3k² + 2k + 1 exactly.
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|k| {
                let k = k as f64;
                vec![k * k, k, 1.0]
            })
            .collect();
        let y: Vec<f64> = (0..20)
            .map(|k| {
                let k = k as f64;
                3.0 * k * k + 2.0 * k + 1.0
            })
            .collect();
        let w = vec![1.0; 20];
        let beta = weighted_least_squares(&rows, &y, &w, 3, 1e-9).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-6);
        assert!((beta[1] - 2.0).abs() < 1e-5);
        assert!((beta[2] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn weights_shift_the_fit() {
        // Two clusters of points wanting different constants; the weighted
        // fit should land near the heavier cluster.
        let rows: Vec<Vec<f64>> = (0..10).map(|_| vec![1.0]).collect();
        let y: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 10.0 }).collect();
        let mut w = vec![1.0; 10];
        for wi in w.iter_mut().take(5) {
            *wi = 100.0;
        }
        let beta = weighted_least_squares(&rows, &y, &w, 1, 0.0).unwrap();
        assert!(beta[0] < 1.0, "beta {beta:?}");
    }
}
