//! Superlinear-convergence curve fitting — the §V.B extension.
//!
//! EarlyCurve's rational family (Eq. 4) models the `O(1/k)`-family
//! convergence of gradient-descent optimizers. Quasi-Newton methods such as
//! L-BFGS converge at a rate `O(μᵏ)` (linear/superlinear), for which the
//! paper says "a different curve-fitting model should be applied, which we
//! will investigate in future work". This module supplies that model:
//!
//! ```text
//! L̂(k) = a3 + amp · μ^(k − start),        0 < μ < 1, amp ≥ 0, a3 ≥ 0
//! ```
//!
//! The fit linearizes per plateau candidate: `ln(L − a3) = ln(amp) +
//! (k − start)·ln μ` is ordinary least squares in `(ln amp, ln μ)`, and the
//! plateau is line-searched exactly like [`crate::fit::fit_stage`].

use crate::solver::weighted_least_squares;
use serde::{Deserialize, Serialize};

/// Fitted geometric-convergence coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeometricFit {
    /// Plateau the curve decays toward.
    pub a3: f64,
    /// Amplitude above the plateau at the stage start.
    pub amp: f64,
    /// Per-step contraction ratio in `(0, 1)`.
    pub mu: f64,
    /// Absolute step the fit starts at.
    pub start: u64,
    /// Mean squared residual in metric space.
    pub mse: f64,
}

impl GeometricFit {
    /// Predicted metric at absolute step `k`.
    pub fn predict(&self, k: u64) -> f64 {
        let rel = k.saturating_sub(self.start) as f64;
        self.a3 + self.amp * self.mu.powf(rel)
    }
}

/// Fits `L(k) = a3 + amp·μ^(k−start)` to `(absolute step, metric)` points.
///
/// Returns a degenerate constant fit (μ = 1 asymptote semantics via
/// `amp = 0`) for fewer than three points.
///
/// # Panics
///
/// Panics if `points` is empty or contains non-finite metrics.
pub fn fit_geometric(points: &[(u64, f64)], start: u64) -> GeometricFit {
    assert!(!points.is_empty(), "cannot fit an empty stage");
    for &(_, m) in points {
        assert!(m.is_finite(), "metrics must be finite");
    }
    let n = points.len();
    let mean = points.iter().map(|&(_, m)| m).sum::<f64>() / n as f64;
    if n < 3 {
        return GeometricFit { a3: mean, amp: 0.0, mu: 0.5, start, mse: 0.0 };
    }
    let min_l = points.iter().map(|&(_, m)| m).fold(f64::INFINITY, f64::min);

    let mut best: Option<GeometricFit> = None;
    const GRID: usize = 24;
    for j in 0..=GRID {
        let frac = (j as f64 / GRID as f64).powi(2);
        let a3 = (min_l * (1.0 - 1e-3)) * (1.0 - frac);
        let Some(fit) = fit_with_plateau(points, start, a3) else {
            continue;
        };
        if best.as_ref().is_none_or(|b| fit.mse < b.mse) {
            best = Some(fit);
        }
    }
    best.unwrap_or(GeometricFit { a3: mean, amp: 0.0, mu: 0.5, start, mse: 0.0 })
}

fn fit_with_plateau(points: &[(u64, f64)], start: u64, a3: f64) -> Option<GeometricFit> {
    // ln(L − a3) = ln amp + rel·ln μ, weighted by (L − a3)² to express
    // residuals in metric space (d ln(x) = dx/x).
    let mut rows = Vec::with_capacity(points.len());
    let mut ys = Vec::with_capacity(points.len());
    let mut ws = Vec::with_capacity(points.len());
    for &(k, m) in points {
        let gap = m - a3;
        if gap <= 1e-12 {
            return None;
        }
        let rel = k.saturating_sub(start) as f64;
        rows.push(vec![1.0, rel]);
        ys.push(gap.ln());
        ws.push(gap * gap / (m * m).max(1e-12));
    }
    let beta = weighted_least_squares(&rows, &ys, &ws, 2, 1e-9)?;
    let amp = beta[0].exp();
    let mu = beta[1].exp();
    if !(0.0..1.0).contains(&mu) || !amp.is_finite() {
        return None;
    }
    let candidate = GeometricFit { a3, amp, mu, start, mse: 0.0 };
    let mse = points
        .iter()
        .map(|&(k, m)| {
            let e = candidate.predict(k) - m;
            e * e
        })
        .sum::<f64>()
        / points.len() as f64;
    Some(GeometricFit { mse, ..candidate })
}

/// Picks between the rational (sublinear) and geometric (superlinear)
/// families by residual — lets callers handle optimizers of unknown
/// convergence order automatically.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AutoFit {
    /// The Eq. 4 rational family won.
    Rational(crate::fit::StageFit),
    /// The geometric family won.
    Geometric(GeometricFit),
}

impl AutoFit {
    /// Fits both families and keeps the lower-residual one.
    pub fn fit(points: &[(u64, f64)], start: u64) -> AutoFit {
        let rational = crate::fit::fit_stage(points, start);
        let geometric = fit_geometric(points, start);
        if geometric.mse < rational.mse {
            AutoFit::Geometric(geometric)
        } else {
            AutoFit::Rational(rational)
        }
    }

    /// Predicted metric at absolute step `k`.
    pub fn predict(&self, k: u64) -> f64 {
        match self {
            AutoFit::Rational(f) => f.predict(k),
            AutoFit::Geometric(f) => f.predict(k),
        }
    }

    /// Mean squared residual of the winning fit.
    pub fn mse(&self) -> f64 {
        match self {
            AutoFit::Rational(f) => f.mse,
            AutoFit::Geometric(f) => f.mse,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometric_points(a3: f64, amp: f64, mu: f64, n: u64) -> Vec<(u64, f64)> {
        (0..n).map(|k| (k, a3 + amp * mu.powf(k as f64))).collect()
    }

    #[test]
    fn recovers_geometric_curve() {
        let pts = geometric_points(0.3, 2.0, 0.9, 50);
        let fit = fit_geometric(&pts, 0);
        assert!((fit.mu - 0.9).abs() < 0.02, "mu {}", fit.mu);
        assert!((fit.predict(200) - 0.3).abs() < 0.05, "plateau {}", fit.predict(200));
        for &(k, m) in &pts {
            assert!((fit.predict(k) - m).abs() < 0.02);
        }
    }

    #[test]
    fn geometric_beats_rational_on_superlinear_data() {
        // An L-BFGS-style fast-contracting curve.
        let pts = geometric_points(0.1, 5.0, 0.75, 40);
        let auto = AutoFit::fit(&pts, 0);
        assert!(matches!(auto, AutoFit::Geometric(_)), "auto picked {auto:?}");
        assert!((auto.predict(100) - 0.1).abs() < 0.02);
    }

    #[test]
    fn rational_wins_on_sublinear_data() {
        // O(1/k) data should keep the Eq. 4 family.
        let pts: Vec<(u64, f64)> = (0..60)
            .map(|k| (k, 0.4 + 1.0 / (0.2 * k as f64 + 1.0)))
            .collect();
        let auto = AutoFit::fit(&pts, 0);
        let err = (auto.predict(400) - (0.4 + 1.0 / (0.2 * 400.0 + 1.0))).abs();
        assert!(err < 0.1, "extrapolation error {err}");
    }

    #[test]
    fn short_input_falls_back_to_constant() {
        let fit = fit_geometric(&[(0, 1.0), (1, 0.9)], 0);
        assert_eq!(fit.amp, 0.0);
        assert!((fit.predict(100) - 0.95).abs() < 0.01);
    }

    #[test]
    fn stage_offset_respected() {
        let pts: Vec<(u64, f64)> = geometric_points(0.2, 1.0, 0.85, 30)
            .into_iter()
            .map(|(k, m)| (k + 50, m))
            .collect();
        let fit = fit_geometric(&pts, 50);
        assert!((fit.predict(50) - 1.2).abs() < 0.05);
    }
}
