//! Single-stage fitting of the paper's rational curve family (Eq. 4):
//!
//! ```text
//! L̂(k) = 1 / (a0·k² + a1·k + a2) + a3,      a0..a3 ≥ 0
//! ```
//!
//! EarlyCurve "uses a linear regression solver to find the best
//! coefficients" (§III.C): for a fixed plateau `a3`, the transform
//! `y = 1/(L − a3)` turns the model into a quadratic that is *linear* in
//! `(a0, a1, a2)`. We line-search `a3` (coarse grid below the smallest
//! observed metric, then a fine pass around the winner), solve each
//! weighted linear least-squares problem, and keep the plateau whose fit
//! has the smallest residual in the original metric space. Non-negativity
//! is enforced by active-set descent over coefficient subsets: the first
//! (most expressive) subset whose unconstrained solution is already
//! non-negative is accepted.

use crate::solver::solve_in_place;
use serde::{Deserialize, Serialize};

/// Fitted coefficients for one stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageFit {
    /// Quadratic coefficient (Eq. 4 `a_{i0}`).
    pub a0: f64,
    /// Linear coefficient (`a_{i1}`).
    pub a1: f64,
    /// Constant coefficient (`a_{i2}`).
    pub a2: f64,
    /// Plateau offset (`a_{i3}`).
    pub a3: f64,
    /// Absolute step the stage starts at (its `l_i`); `k` in the model is
    /// measured relative to this.
    pub start: u64,
    /// Mean squared residual of the fit in metric space.
    pub mse: f64,
}

impl StageFit {
    /// Predicted metric at absolute step `k` (clamped to the stage start).
    pub fn predict(&self, k: u64) -> f64 {
        let rel = k.saturating_sub(self.start) as f64;
        let denom = self.a0 * rel * rel + self.a1 * rel + self.a2;
        if denom <= 1e-12 {
            return self.a3;
        }
        self.a3 + 1.0 / denom
    }
}

/// Fits one stage to `(absolute step, metric)` points.
///
/// Returns a degenerate constant fit when fewer than three points are given
/// (prediction = mean of what is available).
///
/// # Panics
///
/// Panics if `points` is empty or any metric is non-finite.
pub fn fit_stage(points: &[(u64, f64)], start: u64) -> StageFit {
    fit_stage_scratch(points, start, &mut Vec::new())
}

/// [`fit_stage`] with a caller-owned row buffer, so the batched sweep's
/// per-selection fits reuse one allocation across every job of a cohort.
/// The buffer is cleared and refilled; the arithmetic (and therefore the
/// returned fit) is bit-identical to [`fit_stage`].
pub fn fit_stage_scratch(
    points: &[(u64, f64)],
    start: u64,
    rows: &mut Vec<[f64; 3]>,
) -> StageFit {
    assert!(!points.is_empty(), "cannot fit an empty stage");
    for &(_, m) in points {
        assert!(m.is_finite(), "metrics must be finite");
    }
    let n = points.len();
    let mean = points.iter().map(|&(_, m)| m).sum::<f64>() / n as f64;
    if n < 3 {
        return StageFit { a0: 0.0, a1: 0.0, a2: 1.0 / mean.max(1e-9), a3: 0.0, start, mse: 0.0 };
    }
    let min_l = points.iter().map(|&(_, m)| m).fold(f64::INFINITY, f64::min);

    // Two-phase line search of the plateau over [0, min_l): a coarse
    // quadratic-spaced grid (denser near min_l where the true plateau
    // usually sits, plus a3 = 0 exactly), then a fine pass around the
    // coarse winner. Same resolution as a dense 25-point grid at roughly
    // half the solves — this runs inside every selection of every
    // campaign, so it is a hot path of scenario sweeps.
    const COARSE: usize = 8;
    const FINE: usize = 6;
    let top = min_l * (1.0 - 1e-3);
    let coarse_a3 = |j: usize| {
        let frac = (j as f64 / COARSE as f64).powi(2);
        top * (1.0 - frac)
    };
    // The regression rows depend only on the step offsets, not on the
    // plateau candidate — build them once for the whole line search.
    rows.clear();
    rows.extend(points.iter().map(|&(k, _)| {
        let rel = k.saturating_sub(start) as f64;
        [rel * rel, rel, 1.0]
    }));
    let rows: &[[f64; 3]] = rows;
    let mut best: Option<StageFit> = None;
    let mut best_j = 0usize;
    for j in 0..=COARSE {
        if let Some(fit) = fit_with_plateau(points, rows, start, coarse_a3(j)) {
            if best.as_ref().is_none_or(|b| fit.mse < b.mse) {
                best = Some(fit);
                best_j = j;
            }
        }
    }
    if best.is_some() {
        // Refine between the coarse neighbors of the winner.
        let lo_a3 = coarse_a3((best_j + 1).min(COARSE));
        let hi_a3 = coarse_a3(best_j.saturating_sub(1));
        for i in 1..=FINE {
            let a3 = lo_a3 + (hi_a3 - lo_a3) * i as f64 / (FINE + 1) as f64;
            if let Some(fit) = fit_with_plateau(points, rows, start, a3) {
                if best.as_ref().is_none_or(|b| fit.mse < b.mse) {
                    best = Some(fit);
                }
            }
        }
    }
    best.unwrap_or(StageFit {
        a0: 0.0,
        a1: 0.0,
        a2: 1.0 / mean.max(1e-9),
        a3: 0.0,
        start,
        mse: variance(points, mean),
    })
}

fn variance(points: &[(u64, f64)], mean: f64) -> f64 {
    points.iter().map(|&(_, m)| (m - mean) * (m - mean)).sum::<f64>() / points.len() as f64
}

/// Linearized weighted LS for a fixed plateau, with non-negativity via
/// active-set enumeration over the three coefficients.
///
/// The normal equations are accumulated directly on stack arrays — this
/// runs `plateau grid × 4 subsets` times per fitted stage, and the
/// orchestrator fits a stage per configuration at every selection, so a
/// per-row allocation here was the single hottest allocation site of a
/// campaign simulation.
fn fit_with_plateau(
    points: &[(u64, f64)],
    rows: &[[f64; 3]],
    start: u64,
    a3: f64,
) -> Option<StageFit> {
    // y = 1/(L - a3); weight (L - a3)^4 maps y-residuals back to L-space,
    // and the extra 1/L² makes residuals *relative*, so a large initial
    // transient (loss falling orders of magnitude) cannot drown out the
    // plateau tail that the final-metric prediction extrapolates from.
    let target_of = |m: f64| -> Option<(f64, f64)> {
        let gap = m - a3;
        if gap <= 1e-9 {
            return None; // plateau not strictly below all points
        }
        Some((1.0 / gap, gap.powi(4) / (m * m).max(1e-12)))
    };
    // Every point must sit strictly above the plateau.
    if points.iter().any(|&(_, m)| m - a3 <= 1e-9) {
        return None;
    }

    // Subsets of active coefficients, most expressive first; inactive ones
    // are pinned to zero. a2 (the intercept) is always active — the model
    // needs 1/a2 finite at the stage start. The first subset whose
    // unconstrained solution is already non-negative is accepted
    // (active-set descent); later subsets only run when an earlier one
    // violates the constraint.
    const SUBSETS: [[bool; 3]; 4] = [
        [true, true, true],
        [false, true, true],
        [true, false, true],
        [false, false, true],
    ];
    for active in SUBSETS {
        let mut idx = [0usize; 3];
        let mut p = 0;
        for (i, &on) in active.iter().enumerate() {
            if on {
                idx[p] = i;
                p += 1;
            }
        }
        let idx = &idx[..p];
        // Weighted normal equations over the active columns, in the same
        // accumulation order as the general solver used previously.
        let mut xtx = [0.0f64; 9];
        let mut xty = [0.0f64; 3];
        for (row, &(_, m)) in rows.iter().zip(points) {
            let (target, weight) = target_of(m).expect("gap checked above");
            for (si, &i) in idx.iter().enumerate() {
                xty[si] += weight * row[i] * target;
                for (sj, &j) in idx.iter().enumerate() {
                    xtx[si * p + sj] += weight * row[i] * row[j];
                }
            }
        }
        for i in 0..p {
            xtx[i * p + i] += 1e-9;
        }
        if !solve_in_place(&mut xtx[..p * p], &mut xty[..p], p) {
            continue;
        }
        let beta = &xty[..p];
        let mut coef = [0.0f64; 3];
        for (slot, &i) in idx.iter().enumerate() {
            coef[i] = beta[slot];
        }
        if coef.iter().any(|&c| c < 0.0) {
            continue;
        }
        let candidate = StageFit {
            a0: coef[0],
            a1: coef[1],
            a2: coef[2],
            a3,
            start,
            mse: 0.0,
        };
        let mse = points
            .iter()
            .map(|&(k, m)| {
                let e = candidate.predict(k) - m;
                e * e
            })
            .sum::<f64>()
            / points.len() as f64;
        return Some(StageFit { mse, ..candidate });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(a0: f64, a1: f64, a2: f64, a3: f64, n: u64) -> Vec<(u64, f64)> {
        (0..n)
            .map(|k| {
                let rel = k as f64;
                (k, a3 + 1.0 / (a0 * rel * rel + a1 * rel + a2))
            })
            .collect()
    }

    #[test]
    fn recovers_noise_free_curve() {
        let pts = synth(0.0, 0.05, 0.8, 0.4, 60);
        let fit = fit_stage(&pts, 0);
        // Prediction quality matters more than exact coefficients
        // (the problem is ill-conditioned by design).
        for &(k, m) in &pts {
            assert!((fit.predict(k) - m).abs() < 0.01, "at {k}: {} vs {m}", fit.predict(k));
        }
        // Extrapolation approaches the true plateau.
        let far = fit.predict(600);
        assert!((far - 0.4).abs() < 0.12, "extrapolated {far}");
    }

    #[test]
    fn coefficients_are_nonnegative() {
        let pts = synth(0.002, 0.0, 0.5, 0.2, 50);
        let fit = fit_stage(&pts, 0);
        assert!(fit.a0 >= 0.0 && fit.a1 >= 0.0 && fit.a2 >= 0.0 && fit.a3 >= 0.0);
    }

    #[test]
    fn noisy_curve_fits_reasonably() {
        let mut pts = synth(0.0, 0.08, 1.0, 0.45, 80);
        // Deterministic "noise".
        for (i, p) in pts.iter_mut().enumerate() {
            p.1 *= 1.0 + 0.01 * (((i * 2_654_435_761) % 1000) as f64 / 1000.0 - 0.5);
        }
        let fit = fit_stage(&pts, 0);
        assert!(fit.mse < 1e-3, "mse {}", fit.mse);
        let far = fit.predict(400);
        assert!((far - 0.45).abs() < 0.15, "extrapolated {far}");
    }

    #[test]
    fn stage_offset_is_respected() {
        // Same curve shape but starting at absolute step 100.
        let pts: Vec<(u64, f64)> = synth(0.0, 0.05, 0.8, 0.3, 40)
            .into_iter()
            .map(|(k, m)| (k + 100, m))
            .collect();
        let fit = fit_stage(&pts, 100);
        assert_eq!(fit.start, 100);
        assert!((fit.predict(100) - pts[0].1).abs() < 0.02);
    }

    #[test]
    fn short_stages_fall_back_to_constant() {
        let fit = fit_stage(&[(3, 0.5), (4, 0.6)], 3);
        assert!((fit.predict(100) - 0.55).abs() < 0.01);
    }

    #[test]
    fn flat_plateau_is_fit_exactly() {
        let pts: Vec<(u64, f64)> = (0..30).map(|k| (k, 0.25)).collect();
        let fit = fit_stage(&pts, 0);
        assert!((fit.predict(1000) - 0.25).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "cannot fit an empty stage")]
    fn empty_stage_panics() {
        let _ = fit_stage(&[], 0);
    }
}
