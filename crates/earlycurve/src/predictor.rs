//! The EarlyCurve predictor: online metric collection, staged fitting,
//! convergence detection and final-metric prediction.

use crate::fit::{fit_stage, fit_stage_scratch, StageFit};
use crate::kernel::FitScratch;
use crate::stage::{detect_boundaries, detect_boundaries_into, split_stages, StageConfig};
use serde::{Deserialize, Serialize};

/// Full configuration of the predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EarlyCurveConfig {
    /// Stage-boundary detection thresholds (Eq. 7).
    pub stage: StageConfig,
    /// Relative tail-slope threshold for convergence ("the metric curve
    /// becomes a plateau, where training is no longer meaningful", §III.C).
    pub conv_tol: f64,
    /// Number of trailing points examined for convergence.
    pub conv_window: usize,
    /// Minimum points required in the last stage before extrapolating from
    /// it; shorter last stages fall back to all points since the previous
    /// boundary.
    pub min_fit_points: usize,
}

impl Default for EarlyCurveConfig {
    fn default() -> Self {
        EarlyCurveConfig {
            stage: StageConfig::default(),
            conv_tol: 0.002,
            conv_window: 24,
            min_fit_points: 4,
        }
    }
}

/// A fitted piecewise curve (Eq. 4–6): one [`StageFit`] per detected stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StagedFit {
    stages: Vec<StageFit>,
    /// Step of the last observed point.
    last_step: u64,
}

impl StagedFit {
    /// The per-stage fits, in order.
    pub fn stages(&self) -> &[StageFit] {
        &self.stages
    }

    /// Predicted metric at absolute step `k`. Steps within the observed
    /// range use their containing stage; steps beyond it extrapolate with
    /// the last stage (the paper's final-metric prediction).
    pub fn predict(&self, k: u64) -> f64 {
        let stage = self
            .stages
            .iter()
            .rev()
            .find(|s| s.start <= k)
            .unwrap_or(self.stages.first().expect("at least one stage"));
        stage.predict(k)
    }

    /// Mean squared residual across all stages, weighted by stage length.
    pub fn mse(&self) -> f64 {
        // Stage mse values are per-point; combine by simple mean over stages
        // (stage lengths are similar in practice).
        self.stages.iter().map(|s| s.mse).sum::<f64>() / self.stages.len() as f64
    }
}

/// Online EarlyCurve state for one HPT job.
///
/// ```
/// use spottune_earlycurve::predictor::EarlyCurve;
///
/// let mut ec = EarlyCurve::new(Default::default());
/// for k in 1..=50u64 {
///     let metric = 0.4 + 1.0 / (0.3 * k as f64 + 1.0);
///     ec.push(k, metric);
/// }
/// let fit = ec.fit().unwrap();
/// let predicted_final = fit.predict(400);
/// assert!((predicted_final - 0.4).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EarlyCurve {
    config: EarlyCurveConfig,
    points: Vec<(u64, f64)>,
}

impl EarlyCurve {
    /// Creates an empty predictor.
    pub fn new(config: EarlyCurveConfig) -> Self {
        EarlyCurve { config, points: Vec::new() }
    }

    /// Feeds the metric observed after step `k` (strictly increasing `k`).
    ///
    /// # Panics
    ///
    /// Panics if `k` does not increase or the metric is not finite.
    pub fn push(&mut self, k: u64, metric: f64) {
        assert!(metric.is_finite(), "metric must be finite");
        if let Some(&(last, _)) = self.points.last() {
            assert!(k > last, "steps must strictly increase ({k} after {last})");
        }
        self.points.push((k, metric));
    }

    /// Number of observed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points have been observed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The observed `(step, metric)` points.
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// Discards every observation, keeping the allocation. Equivalent to
    /// `*self = EarlyCurve::new(config)` — used by the batch engine's job
    /// arena to reuse a slot across campaigns without reallocating.
    pub fn reset(&mut self, config: EarlyCurveConfig) {
        self.config = config;
        self.points.clear();
    }

    /// Discards every observation past step `step`, keeping the prefix at
    /// or below it. Used when work is rolled back to an older checkpoint
    /// after a failed transfer: the re-executed steps will be re-observed,
    /// and `push`'s strictly-increasing invariant must keep holding.
    pub fn truncate_to(&mut self, step: u64) {
        self.points.retain(|&(k, _)| k <= step);
    }

    /// Detected stage boundaries as indices into [`EarlyCurve::points`].
    pub fn boundaries(&self) -> Vec<usize> {
        let metrics: Vec<f64> = self.points.iter().map(|&(_, m)| m).collect();
        detect_boundaries(&metrics, &self.config.stage)
    }

    /// Fits the staged model to everything observed so far. Returns `None`
    /// with fewer than three points.
    pub fn fit(&self) -> Option<StagedFit> {
        if self.points.len() < 3 {
            return None;
        }
        let boundaries = self.boundaries();
        let segments = split_stages(&self.points, &boundaries);
        let mut stages = Vec::with_capacity(segments.len());
        let mut pending: Vec<(u64, f64)> = Vec::new();
        for segment in segments {
            // Merge too-short segments into the next stage rather than
            // extrapolating from a handful of points.
            if segment.len() + pending.len() < self.config.min_fit_points {
                pending.extend_from_slice(segment);
                continue;
            }
            let merged: Vec<(u64, f64)> = pending
                .drain(..)
                .chain(segment.iter().copied())
                .collect();
            let start = merged[0].0;
            stages.push(fit_stage(&merged, start));
        }
        if !pending.is_empty() {
            let start = pending[0].0;
            stages.push(fit_stage(&pending, start));
        }
        Some(StagedFit { stages, last_step: self.points.last().expect("non-empty").0 })
    }

    /// Predicts the final metric at `max_trial_steps` (the paper's
    /// EarlyCurve(hp, max_trial_steps) call, Algorithm 1 line 50).
    pub fn predict_final(&self, max_trial_steps: u64) -> Option<f64> {
        Some(self.fit()?.predict(max_trial_steps))
    }

    /// Allocation-free [`EarlyCurve::fit`]: the same boundary detection,
    /// short-segment merging and per-stage fitting, written into
    /// `scratch`'s reusable buffers ([`FitScratch::stages`] holds the
    /// result). Returns `false` — with no stages fitted — under three
    /// points, exactly when [`EarlyCurve::fit`] returns `None`; otherwise
    /// the stages equal `self.fit().unwrap().stages()` bit for bit (every
    /// buffer reuse is a cleared-and-refilled `Vec`, never a change of
    /// arithmetic). The batched sweep's lane path fits every job of a
    /// cohort through one scratch.
    pub fn fit_into(&self, scratch: &mut FitScratch) -> bool {
        scratch.stages_mut().clear();
        if self.points.len() < 3 {
            return false;
        }
        scratch.metrics.clear();
        scratch.metrics.extend(self.points.iter().map(|&(_, m)| m));
        detect_boundaries_into(&scratch.metrics, &self.config.stage, &mut scratch.boundaries);
        scratch.pending.clear();
        // Segments are the `split_stages` partition, iterated in place:
        // [prev boundary, boundary) per detected boundary, then the tail.
        let mut seg_start = 0usize;
        for bi in 0..=scratch.boundaries.len() {
            let seg_end =
                scratch.boundaries.get(bi).copied().unwrap_or(self.points.len());
            let segment = &self.points[seg_start..seg_end];
            seg_start = seg_end;
            // Merge too-short segments into the next stage rather than
            // extrapolating from a handful of points (as in `fit`).
            if segment.len() + scratch.pending.len() < self.config.min_fit_points {
                scratch.pending.extend_from_slice(segment);
                continue;
            }
            scratch.merged.clear();
            scratch.merged.append(&mut scratch.pending);
            scratch.merged.extend_from_slice(segment);
            let start = scratch.merged[0].0;
            let fitted = fit_stage_scratch(&scratch.merged, start, &mut scratch.rows);
            scratch.stages_mut().push(fitted);
        }
        if !scratch.pending.is_empty() {
            let start = scratch.pending[0].0;
            let fitted = fit_stage_scratch(&scratch.pending, start, &mut scratch.rows);
            scratch.stages_mut().push(fitted);
        }
        true
    }

    /// Whether the curve has plateaued ("the model comes to convergence …
    /// we stop the iteration and treat this model as finished", §III.C).
    ///
    /// Compares the means of the first and second halves of the last
    /// `conv_window` points; converged when their relative difference is
    /// below `conv_tol`.
    pub fn converged(&self) -> bool {
        let w = self.config.conv_window;
        if self.points.len() < w {
            return false;
        }
        let tail = &self.points[self.points.len() - w..];
        let half = w / 2;
        let first: f64 = tail[..half].iter().map(|&(_, m)| m).sum::<f64>() / half as f64;
        let second: f64 =
            tail[half..].iter().map(|&(_, m)| m).sum::<f64>() / (w - half) as f64;
        if first.abs() < 1e-12 {
            return true;
        }
        ((first - second) / first).abs() < self.config.conv_tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(ec: &mut EarlyCurve, f: impl Fn(u64) -> f64, upto: u64) {
        for k in 1..=upto {
            ec.push(k, f(k));
        }
    }

    #[test]
    fn single_stage_prediction_extrapolates() {
        let mut ec = EarlyCurve::new(Default::default());
        feed(&mut ec, |k| 0.5 + 2.0 / (0.2 * k as f64 + 1.0), 60);
        let pred = ec.predict_final(500).unwrap();
        let truth = 0.5 + 2.0 / (0.2 * 500.0 + 1.0);
        assert!((pred - truth).abs() < 0.08, "pred {pred} truth {truth}");
    }

    #[test]
    fn two_stage_curve_is_fit_piecewise() {
        let mut ec = EarlyCurve::new(Default::default());
        let f = |k: u64| {
            if k <= 40 {
                1.0 + 1.5 / (0.3 * k as f64 + 1.0)
            } else {
                let rel = (k - 40) as f64;
                0.45 + 0.2 / (0.4 * rel + 1.0)
            }
        };
        feed(&mut ec, f, 70);
        let fit = ec.fit().unwrap();
        assert_eq!(fit.stages().len(), 2, "boundaries {:?}", ec.boundaries());
        // The final prediction must come from the second stage, near 0.45,
        // not from the first stage's plateau near 1.0.
        let pred = fit.predict(400);
        assert!((pred - 0.45).abs() < 0.1, "pred {pred}");
    }

    #[test]
    fn convergence_detected_on_plateau() {
        let mut ec = EarlyCurve::new(Default::default());
        feed(&mut ec, |k| if k < 30 { 1.0 / k as f64 } else { 0.033 }, 60);
        assert!(ec.converged());
        let mut moving = EarlyCurve::new(Default::default());
        feed(&mut moving, |k| 2.0 / (0.05 * k as f64 + 1.0), 40);
        assert!(!moving.converged());
    }

    #[test]
    fn too_few_points_yield_none() {
        let mut ec = EarlyCurve::new(Default::default());
        ec.push(1, 1.0);
        ec.push(2, 0.9);
        assert!(ec.fit().is_none());
        assert!(ec.predict_final(100).is_none());
        assert!(!ec.converged());
        assert_eq!(ec.len(), 2);
        assert!(!ec.is_empty());
    }

    #[test]
    fn truncation_reopens_the_step_range() {
        let mut ec = EarlyCurve::new(Default::default());
        feed(&mut ec, |k| 1.0 / k as f64, 20);
        ec.truncate_to(12);
        assert_eq!(ec.len(), 12);
        assert_eq!(ec.points().last().unwrap().0, 12);
        // Re-executed steps can be observed again.
        ec.push(13, 0.07);
        assert_eq!(ec.len(), 13);
        // Truncating below every point empties the curve.
        ec.truncate_to(0);
        assert!(ec.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn non_increasing_steps_panic() {
        let mut ec = EarlyCurve::new(Default::default());
        ec.push(5, 1.0);
        ec.push(5, 0.9);
    }
}
