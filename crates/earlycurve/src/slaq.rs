//! The SLAQ baseline: single-stage curve fitting over the whole history.
//!
//! SLAQ [19] fits the training curve "using a single function", ignoring
//! learning-rate stages. On single-stage curves it matches EarlyCurve
//! exactly ("if the learning rate of a model is not changing periodically,
//! EarlyCurve and SLAQ would exhibit the same effect", §IV.E); on staged
//! curves the early high-loss stage drags its plateau estimate up and the
//! final-metric prediction degrades — the comparison of paper Fig. 11.

use crate::fit::{fit_stage, StageFit};
use serde::{Deserialize, Serialize};

/// Single-stage curve predictor.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Slaq {
    points: Vec<(u64, f64)>,
}

impl Slaq {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        Slaq::default()
    }

    /// Feeds the metric observed after step `k` (strictly increasing `k`).
    ///
    /// # Panics
    ///
    /// Panics if `k` does not increase or the metric is not finite.
    pub fn push(&mut self, k: u64, metric: f64) {
        assert!(metric.is_finite(), "metric must be finite");
        if let Some(&(last, _)) = self.points.last() {
            assert!(k > last, "steps must strictly increase");
        }
        self.points.push((k, metric));
    }

    /// Number of observed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points have been observed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Fits one stage over the whole history. `None` with < 3 points.
    pub fn fit(&self) -> Option<StageFit> {
        if self.points.len() < 3 {
            return None;
        }
        Some(fit_stage(&self.points, self.points[0].0))
    }

    /// Predicts the final metric at `max_trial_steps`.
    pub fn predict_final(&self, max_trial_steps: u64) -> Option<f64> {
        Some(self.fit()?.predict(max_trial_steps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::EarlyCurve;

    #[test]
    fn matches_earlycurve_on_single_stage() {
        let f = |k: u64| 0.5 + 2.0 / (0.2 * k as f64 + 1.0);
        let mut slaq = Slaq::new();
        let mut ec = EarlyCurve::new(Default::default());
        for k in 1..=60 {
            slaq.push(k, f(k));
            ec.push(k, f(k));
        }
        let ps = slaq.predict_final(500).unwrap();
        let pe = ec.predict_final(500).unwrap();
        assert!((ps - pe).abs() < 1e-6, "slaq {ps} vs earlycurve {pe}");
    }

    #[test]
    fn worse_than_earlycurve_on_two_stage() {
        let f = |k: u64| {
            if k <= 40 {
                1.0 + 1.5 / (0.3 * k as f64 + 1.0)
            } else {
                let rel = (k - 40) as f64;
                0.45 + 0.2 / (0.4 * rel + 1.0)
            }
        };
        let mut slaq = Slaq::new();
        let mut ec = EarlyCurve::new(Default::default());
        for k in 1..=70 {
            slaq.push(k, f(k));
            ec.push(k, f(k));
        }
        let truth = f(400);
        let es = (slaq.predict_final(400).unwrap() - truth).abs();
        let ee = (ec.predict_final(400).unwrap() - truth).abs();
        assert!(
            ee < es,
            "EarlyCurve error {ee} should beat SLAQ error {es} on staged curves"
        );
    }

    #[test]
    fn insufficient_points() {
        let mut slaq = Slaq::new();
        slaq.push(1, 0.5);
        assert!(slaq.fit().is_none());
        assert_eq!(slaq.len(), 1);
        assert!(!slaq.is_empty());
    }
}
