//! # spottune-bench
//!
//! Shared infrastructure for the figure/table regeneration binaries (one
//! per paper figure; see DESIGN.md's experiment index) and the criterion
//! micro-benchmarks.

use rayon::prelude::*;
use spottune_core::prelude::*;
use spottune_market::prelude::*;
use spottune_mlsim::prelude::*;

/// Length of the standard simulated price history (the Kaggle dataset spans
/// ~12 days: 2017-04-26 → 2017-05-08).
pub const TRACE_DAYS: u64 = 12;

/// Master seed used by every figure unless it sweeps seeds itself.
pub const MASTER_SEED: u64 = 42;

/// The standard six-market pool used by all experiments.
pub fn standard_pool(seed: u64) -> MarketPool {
    MarketPool::standard(SimDur::from_days(TRACE_DAYS), seed)
}

/// The four approaches of paper Fig. 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Approach {
    /// SpotTune with the given θ.
    SpotTune {
        /// Early-shutdown rate.
        theta: f64,
    },
    /// Single-Spot Tune baselines.
    SingleSpot(SingleSpotKind),
}

impl Approach {
    /// The four bars of Fig. 7, in paper order.
    pub fn fig7_set() -> [Approach; 4] {
        [
            Approach::SpotTune { theta: 0.7 },
            Approach::SpotTune { theta: 1.0 },
            Approach::SingleSpot(SingleSpotKind::Cheapest),
            Approach::SingleSpot(SingleSpotKind::Fastest),
        ]
    }
}

/// Runs one approach on one workload with the oracle revocation estimator.
pub fn run_approach(approach: Approach, workload: &Workload, pool: &MarketPool, seed: u64) -> HptReport {
    match approach {
        Approach::SpotTune { theta } => {
            let oracle = OracleEstimator::new(pool.clone(), 0.9);
            let cfg = SpotTuneConfig::new(theta, 3).with_seed(seed);
            Orchestrator::new(cfg, workload.clone(), pool.clone(), &oracle).run()
        }
        Approach::SingleSpot(kind) => {
            run_single_spot(kind, workload, pool, SpotTuneConfig::default().start, seed)
        }
    }
}

/// Runs a set of (approach, workload) campaigns across all cores with
/// rayon, preserving input order in the output. Campaigns are independent
/// simulations over a shared (`Arc`-backed, cheap-to-clone) market pool,
/// so the sweep scales linearly until the machine runs out of cores.
pub fn run_campaigns(
    tasks: Vec<(Approach, Workload)>,
    pool: &MarketPool,
    seed: u64,
) -> Vec<HptReport> {
    tasks
        .into_par_iter()
        .map(|(approach, workload)| run_approach(approach, &workload, pool, seed))
        .collect()
}

/// Prints a CSV-ish header + rows helper used by the figure binaries.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    println!("{}", header.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_set_matches_paper_order() {
        let set = Approach::fig7_set();
        assert!(matches!(set[0], Approach::SpotTune { theta } if theta == 0.7));
        assert!(matches!(set[3], Approach::SingleSpot(SingleSpotKind::Fastest)));
    }

    #[test]
    fn parallel_campaigns_preserve_order() {
        let pool = standard_pool(1);
        let base = Workload::benchmark(Algorithm::LoR);
        let small = Workload::custom(Algorithm::LoR, 30, base.hp_grid()[..2].to_vec());
        let tasks = vec![
            (Approach::SingleSpot(SingleSpotKind::Cheapest), small.clone()),
            (Approach::SingleSpot(SingleSpotKind::Fastest), small),
        ];
        let reports = run_campaigns(tasks, &pool, 3);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].approach.contains("Cheapest"));
        assert!(reports[1].approach.contains("Fastest"));
    }
}
