//! # spottune-bench
//!
//! Shared infrastructure for the figure/table regeneration binaries (one
//! per paper figure; see DESIGN.md's experiment index) and the criterion
//! micro-benchmarks. The campaign fan-out itself lives in
//! `spottune-server`: the helpers here are thin clients that build
//! [`CampaignRequest`]s and stream reports back from a worker pool.

use spottune_core::prelude::*;
use spottune_market::prelude::*;
use spottune_mlsim::prelude::*;
use spottune_revpred::PredictorCache;
use spottune_server::{CampaignServer, ServerConfig};

// Re-exported so existing figure binaries keep importing the approach enum
// from the bench facade (it moved into `spottune_core::campaign`).
pub use spottune_core::campaign::Approach;

/// Length of the standard simulated price history (the Kaggle dataset spans
/// ~12 days: 2017-04-26 → 2017-05-08).
pub const TRACE_DAYS: u64 = 12;

/// Master seed used by every figure unless it sweeps seeds itself.
pub const MASTER_SEED: u64 = 42;

/// The standard six-market pool used by all experiments.
pub fn standard_pool(seed: u64) -> MarketPool {
    standard_scenario(seed).build()
}

/// The scenario key naming [`standard_pool`] on the server's pool tier.
pub fn standard_scenario(seed: u64) -> MarketScenario {
    MarketScenario::from_days(TRACE_DAYS, seed)
}

/// Runs one approach on one workload with the default (`oracle(0.9)`)
/// revocation estimator.
pub fn run_approach(
    approach: Approach,
    workload: &Workload,
    pool: &MarketPool,
    seed: u64,
) -> HptReport {
    Campaign::new(approach, workload.clone(), seed).run(pool)
}

/// [`run_campaigns_with_estimator`] with the default `oracle(0.9)` spec —
/// the figure binaries' thin-client path.
pub fn run_campaigns(
    tasks: Vec<(Approach, Workload)>,
    scenario: MarketScenario,
    seed: u64,
) -> Vec<HptReport> {
    run_campaigns_with_estimator(tasks, scenario, seed, EstimatorSpec::default())
}

/// Runs a set of (approach, workload) campaigns through a sharded
/// [`CampaignServer`] worker pool (one worker per core), preserving input
/// order in the output. The server shares the scenario's market pool, the
/// training-curve memo and — for learned estimator specs — the trained
/// predictor set across all campaigns, and its reports are bit-identical
/// to running each campaign serially.
pub fn run_campaigns_with_estimator(
    tasks: Vec<(Approach, Workload)>,
    scenario: MarketScenario,
    seed: u64,
    estimator: EstimatorSpec,
) -> Vec<HptReport> {
    let requests: Vec<CampaignRequest> = tasks
        .into_iter()
        .enumerate()
        .map(|(i, (approach, workload))| CampaignRequest {
            id: i as u64,
            approach,
            workload,
            scenario,
            seed,
            estimator,
        })
        .collect();
    // Share the process-wide curve memo and predictor tier: figure
    // binaries interleave server sweeps with direct TrainingRun
    // evaluation (e.g. fig08's accuracy grid) and call this client once
    // per batch, so both sides replay each other's curves and a learned
    // predictor trains once per process, not once per call.
    let server = CampaignServer::start_with_tiers(
        ServerConfig::default(),
        PoolCache::new(),
        CurveCache::global(),
        PredictorCache::global(),
    );
    let responses = server.run_sweep(requests);
    server.shutdown();
    responses.into_iter().map(|r| r.report).collect()
}

/// Prints a CSV-ish header + rows helper used by the figure binaries.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    println!("{}", header.join(","));
    for row in rows {
        println!("{}", row.join(","));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_set_matches_paper_order() {
        let set = Approach::fig7_set();
        assert!(matches!(set[0], Approach::SpotTune { theta } if theta == 0.7));
        assert!(matches!(set[3], Approach::SingleSpot(SingleSpotKind::Fastest)));
    }

    #[test]
    fn server_campaigns_preserve_order() {
        let base = Workload::benchmark(Algorithm::LoR);
        let small = Workload::custom(Algorithm::LoR, 30, base.hp_grid()[..2].to_vec());
        let tasks = vec![
            (Approach::SingleSpot(SingleSpotKind::Cheapest), small.clone()),
            (Approach::SingleSpot(SingleSpotKind::Fastest), small),
        ];
        let reports = run_campaigns(tasks, standard_scenario(1), 3);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].approach.contains("Cheapest"));
        assert!(reports[1].approach.contains("Fastest"));
    }

    #[test]
    fn learned_estimator_campaigns_run_through_the_thin_client() {
        let base = Workload::benchmark(Algorithm::LoR);
        let small = Workload::custom(Algorithm::LoR, 15, base.hp_grid()[..2].to_vec());
        let tasks = vec![(Approach::SpotTune { theta: 0.7 }, small)];
        // A short scenario keeps the per-market training sets tiny.
        let scenario = MarketScenario::new(SimDur::from_hours(6), 5);
        let reports =
            run_campaigns_with_estimator(tasks, scenario, 3, EstimatorSpec::Logistic);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].predicted_finals.len(), 2);
    }
}
