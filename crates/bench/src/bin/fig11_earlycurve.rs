//! Regenerates paper Fig. 11: (a) an example staged curve with EarlyCurve's
//! and SLAQ's fitted predictions; (b) the final-metric prediction error of
//! both methods on all 16 ResNet configurations at θ = 0.7.
//!
//! Run with: `cargo run --release -p spottune-bench --bin fig11_earlycurve`

use spottune_bench::{print_table, MASTER_SEED};
use spottune_earlycurve::prelude::*;
use spottune_mlsim::prelude::*;

fn main() {
    let w = Workload::benchmark(Algorithm::ResNet);
    let max = w.max_trial_steps();
    let target = (0.7 * max as f64).ceil() as u64;

    // (a) One two-stage configuration: observed curve + both fits.
    let hp = w
        .hp_grid()
        .iter()
        .find(|h| h.int("de") == 40 && h.int("depth") == 20)
        .expect("grid contains de=40 depth=20");
    let mut run = TrainingRun::new(&w, hp, MASTER_SEED);
    let mut ec = EarlyCurve::new(EarlyCurveConfig::default());
    let mut slaq = Slaq::new();
    for k in 1..=target {
        let m = run.metric_at(k);
        ec.push(k, m);
        slaq.push(k, m);
    }
    let ec_fit = ec.fit().expect("enough points");
    let slaq_fit = slaq.fit().expect("enough points");
    let rows: Vec<Vec<String>> = (1..=max)
        .map(|k| {
            vec![
                k.to_string(),
                format!("{:.4}", run.metric_at(k)),
                format!("{:.4}", ec_fit.predict(k)),
                format!("{:.4}", slaq_fit.predict(k)),
            ]
        })
        .collect();
    print_table(
        &format!("Fig 11(a): fits for {} (observed ≤ step {target})", hp.id()),
        &["step", "validation_loss", "earlycurve_fit", "slaq_fit"],
        &rows,
    );
    println!(
        "\ndetected stage boundaries (observed range): {:?}",
        ec.boundaries()
    );

    // (b) Absolute final-metric prediction error on all 16 configurations.
    let mut rows = Vec::new();
    let (mut sum_ec, mut sum_slaq) = (0.0, 0.0);
    for (i, hp) in w.hp_grid().iter().enumerate() {
        let mut run = TrainingRun::new(&w, hp, MASTER_SEED);
        let mut ec = EarlyCurve::new(EarlyCurveConfig::default());
        let mut slaq = Slaq::new();
        for k in 1..=target {
            let m = run.metric_at(k);
            ec.push(k, m);
            slaq.push(k, m);
        }
        let truth = run.final_metric();
        let e_ec = (ec.predict_final(max).expect("fit") - truth).abs();
        let e_slaq = (slaq.predict_final(max).expect("fit") - truth).abs();
        sum_ec += e_ec;
        sum_slaq += e_slaq;
        rows.push(vec![
            format!("{i}"),
            format!("{:.4}", e_ec),
            format!("{:.4}", e_slaq),
            hp.id(),
        ]);
    }
    print_table(
        "Fig 11(b): |prediction error| on 16 ResNet configurations (θ=0.7)",
        &["config", "earlycurve_error", "slaq_error", "hp"],
        &rows,
    );
    println!(
        "\nmean error: EarlyCurve {:.4} vs SLAQ {:.4} ({:.1}x reduction)",
        sum_ec / 16.0,
        sum_slaq / 16.0,
        sum_slaq / sum_ec.max(1e-12)
    );
}
