//! Regenerates paper Fig. 12 and the §IV.F measurements: the
//! checkpoint-restore share of each workload's busy time under
//! SpotTune(θ=0.7), plus checkpoint speeds and maximum checkpointable model
//! sizes per instance type.
//!
//! Run with: `cargo run --release -p spottune-bench --bin fig12_checkpoint`

use spottune_bench::{print_table, run_campaigns, standard_scenario, Approach, MASTER_SEED};
use spottune_cloud::storage::{checkpoint_speed_mbps, max_model_size_mb};
use spottune_market::{instance, InstanceType};
use spottune_mlsim::prelude::*;

fn main() {
    let scenario = standard_scenario(MASTER_SEED);
    let workloads = Workload::all_benchmarks();
    let tasks: Vec<(Approach, Workload)> = workloads
        .iter()
        .map(|w| (Approach::SpotTune { theta: 0.7 }, w.clone()))
        .collect();
    let reports = run_campaigns(tasks, scenario, MASTER_SEED);

    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                format!("{:.1}", 100.0 * r.overhead_fraction()),
                format!("{:.1}", 100.0 * (1.0 - r.overhead_fraction())),
            ]
        })
        .collect();
    print_table(
        "Fig 12: checkpoint-restore time share of busy time (θ=0.7)",
        &["workload", "checkpoint_restore_pct", "other_pct"],
        &rows,
    );
    let avg = reports.iter().map(|r| r.overhead_fraction()).sum::<f64>() / reports.len() as f64;
    println!("\naverage checkpoint-restore share: {:.1}% (paper: <10% on average)", 100.0 * avg);

    // §IV.F: speeds and max model sizes.
    let mut table = Vec::new();
    let micro = InstanceType::new("t2.micro", 1, 1.0, 0.0116);
    for inst in std::iter::once(micro).chain(instance::catalog()) {
        table.push(vec![
            inst.name().to_string(),
            format!("{:.2}", checkpoint_speed_mbps(&inst)),
            format!("{:.2}", max_model_size_mb(&inst) / 1024.0),
        ]);
    }
    print_table(
        "§IV.F: checkpoint speed and max model size within the 120 s notice",
        &["instance", "speed_MB_per_s", "max_model_GB"],
        &table,
    );
    println!("\npaper reference points: m4.4xlarge 134.22 MB/s & 15.73 GB; t2.micro 62.83 MB/s & 7.36 GB");
}
