//! Regenerates paper Fig. 1: the r3.xlarge spot-price trace across eleven
//! days against its flat on-demand price.
//!
//! Run with: `cargo run --release -p spottune-bench --bin fig01_spot_prices`

use spottune_bench::{print_table, standard_pool, MASTER_SEED};
use spottune_market::prelude::*;

fn main() {
    let pool = standard_pool(MASTER_SEED);
    let market = pool.market("r3.xlarge").expect("catalog market");
    let od = market.instance().on_demand_price();

    // Hourly samples over eleven days (the paper's Apr 26 – May 7 span).
    let rows: Vec<Vec<String>> = (0..11 * 24)
        .map(|h| {
            let t = SimTime::from_hours(h);
            vec![
                format!("{t}"),
                format!("{:.4}", market.price_at(t)),
                format!("{od:.4}"),
            ]
        })
        .collect();
    print_table(
        "Fig 1: r3.xlarge spot price vs on-demand (hourly samples, 11 days)",
        &["time", "spot_price_usd_per_h", "on_demand_usd_per_h"],
        &rows,
    );

    let trace = market.trace();
    let (lo, hi) = trace.min_max();
    let avg = trace.avg_over(SimTime::ZERO, SimTime::from_days(11));
    println!("\nsummary: min={lo:.4} max={hi:.4} avg={avg:.4} on_demand={od:.4}");
    println!(
        "spot averages {:.0}% of on-demand; peak reaches {:.1}x on-demand (paper Fig. 1 peaks ~10x its spot floor)",
        100.0 * avg / od,
        hi / od
    );
}
