//! Sweep client of the sharded campaign server: builds a
//! workload × policy × θ × seed × market-scenario request grid, submits it
//! to a [`CampaignServer`] worker pool, streams reports back in completion
//! order and prints throughput plus shared-tier hit rates.
//!
//! Run with (all flags optional):
//!
//! ```sh
//! cargo run --release -p spottune-bench --bin run_campaigns -- \
//!     --workloads LoR,GBTR --policy spottune,hybrid --thetas 0.5,0.7,1.0 \
//!     --estimator revpred --seeds 8 --scenario-seeds 2 --days 12 \
//!     --workers 0 --curve-capacity 0 --quiet
//! ```
//!
//! `--policy` names come from the policy registry
//! ([`Approach::registered_policies`]); `all` expands to every registered
//! policy, and unknown names abort with the registry listing. θ-independent
//! policies (the baselines) run once regardless of `--thetas`.
//! `--estimator` names come from the estimator registry
//! ([`EstimatorSpec::registered_estimators`]): `oracle`/`oracle(0.8)`,
//! `constant(0.25)`, or a learned family (`revpred`, `tributary`,
//! `logistic`) trained at most once per market scenario through the
//! server's predictor tier; unknown or malformed specs abort with the
//! registry listing. The legacy `--baselines` flag appends the two
//! single-spot baselines for backwards compatibility. `--workers 0` (the
//! default) sizes the pool to the machine; `--curve-capacity N` bounds the
//! shared curve tier to `N` resident curves (LRU, `0` = unbounded) for
//! many-seed sweeps, and `--predictor-capacity N` bounds the trained-
//! predictor tier the same way for scenario-heavy learned sweeps.
//! `--batch` (the default) routes the sweep through the server's batched
//! path — requests grouped by market scenario, pool/spine/predictors
//! resolved once per group, engine scratch reused across each chunk —
//! while `--no-batch` falls back to one request per work item for A/B
//! comparison; both produce bit-identical reports. Within the batched
//! path, `--no-soa` disables the SoA cohort staging (the cross-campaign
//! lane kernel plus probe-cached estimators) so the scalar per-campaign
//! loop can be A/B'd the same way — again bit-identical by construction.

use spottune_bench::TRACE_DAYS;
use spottune_core::prelude::*;
use spottune_market::prelude::*;
use spottune_mlsim::prelude::*;
use spottune_server::{CampaignServer, ServerConfig};
use std::time::Instant;

struct Args {
    workers: usize,
    workloads: Vec<Algorithm>,
    policies: Vec<String>,
    thetas: Vec<f64>,
    estimator: EstimatorSpec,
    seeds: u64,
    scenario_seeds: u64,
    days: u64,
    curve_capacity: usize,
    predictor_capacity: usize,
    batch: bool,
    soa: bool,
    baselines: bool,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: 0,
        workloads: vec![Algorithm::LoR, Algorithm::ResNet],
        policies: vec!["spottune".to_string()],
        thetas: vec![0.7, 1.0],
        estimator: EstimatorSpec::default(),
        seeds: 4,
        scenario_seeds: 1,
        days: TRACE_DAYS,
        curve_capacity: 0,
        predictor_capacity: 0,
        batch: true,
        soa: true,
        baselines: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--workers" => args.workers = value("--workers").parse().expect("--workers: usize"),
            "--workloads" => {
                args.workloads = value("--workloads")
                    .split(',')
                    .map(|name| {
                        Algorithm::all()
                            .into_iter()
                            .find(|a| a.name().eq_ignore_ascii_case(name))
                            .unwrap_or_else(|| panic!("unknown workload {name}"))
                    })
                    .collect();
            }
            "--policy" | "--policies" => {
                let raw = value("--policy");
                args.policies = if raw == "all" {
                    Approach::registered_policies().iter().map(|s| s.to_string()).collect()
                } else {
                    raw.split(',').map(str::to_string).collect()
                };
            }
            "--thetas" => {
                args.thetas = value("--thetas")
                    .split(',')
                    .map(|t| t.parse().expect("--thetas: f64 list"))
                    .collect();
            }
            "--estimator" => {
                let raw = value("--estimator");
                args.estimator = EstimatorSpec::parse(&raw).unwrap_or_else(|| {
                    panic!(
                        "unknown or malformed estimator {raw:?}; registered estimators: {}",
                        EstimatorSpec::registered_estimators().join(", ")
                    )
                });
            }
            "--seeds" => args.seeds = value("--seeds").parse().expect("--seeds: u64"),
            "--scenario-seeds" => {
                args.scenario_seeds =
                    value("--scenario-seeds").parse().expect("--scenario-seeds: u64");
            }
            "--days" => args.days = value("--days").parse().expect("--days: u64"),
            "--curve-capacity" => {
                args.curve_capacity =
                    value("--curve-capacity").parse().expect("--curve-capacity: usize");
            }
            "--predictor-capacity" => {
                args.predictor_capacity =
                    value("--predictor-capacity").parse().expect("--predictor-capacity: usize");
            }
            "--batch" => args.batch = true,
            "--no-batch" => args.batch = false,
            "--no-soa" => args.soa = false,
            "--baselines" => args.baselines = true,
            "--quiet" => args.quiet = true,
            other => panic!("unknown flag {other} (see the module docs for usage)"),
        }
    }
    args
}

/// Expands the policy names into concrete approaches: θ-parameterized
/// policies fan out over `--thetas`, the rest appear once. Unknown names
/// abort with the registry listing.
fn resolve_approaches(args: &Args) -> Vec<Approach> {
    let mut approaches = Vec::new();
    for name in &args.policies {
        let probe = Approach::from_policy_name(name, args.thetas[0]).unwrap_or_else(|| {
            panic!(
                "unknown policy {name:?}; registered policies: {}",
                Approach::registered_policies().join(", ")
            )
        });
        if probe.is_theta_parameterized() {
            for &theta in &args.thetas {
                approaches.push(
                    Approach::from_policy_name(name, theta).expect("name already resolved"),
                );
            }
        } else {
            approaches.push(probe);
        }
    }
    if args.baselines {
        // Legacy flag: append the single-spot baselines unless --policy
        // already named them (no double-run of identical campaigns).
        for kind in [SingleSpotKind::Cheapest, SingleSpotKind::Fastest] {
            let baseline = Approach::SingleSpot(kind);
            if !approaches.contains(&baseline) {
                approaches.push(baseline);
            }
        }
    }
    approaches
}

fn main() {
    let args = parse_args();
    assert!(!args.thetas.is_empty(), "--thetas must name at least one value");
    let approaches = resolve_approaches(&args);

    // The full sweep grid: workload × approach × seed × market scenario.
    let mut requests = Vec::new();
    for &algorithm in &args.workloads {
        let workload = Workload::benchmark(algorithm);
        for &approach in &approaches {
            for seed in 0..args.seeds {
                for scenario_seed in 0..args.scenario_seeds {
                    requests.push(CampaignRequest {
                        id: requests.len() as u64,
                        approach,
                        workload: workload.clone(),
                        scenario: MarketScenario::from_days(args.days, 42 + scenario_seed),
                        seed: 42 + seed,
                        estimator: args.estimator,
                    });
                }
            }
        }
    }
    let total = requests.len();
    assert!(total > 0, "empty sweep: no workload × policy combinations");

    let server = CampaignServer::start(
        ServerConfig::with_workers(args.workers)
            .with_curve_capacity(args.curve_capacity)
            .with_predictor_capacity(args.predictor_capacity)
            .with_batch(args.batch)
            .with_soa(args.soa),
    );
    let workers = server.stats().workers;
    let mode = match (args.batch, args.soa) {
        (true, true) => "batched+soa",
        (true, false) => "batched",
        (false, _) => "serial",
    };
    println!(
        "submitting {total} campaigns (estimator {}, {mode}) to {workers} workers …",
        args.estimator
    );
    let t0 = Instant::now();
    let mut done = 0usize;
    for response in server.submit_sweep(requests) {
        done += 1;
        assert!(
            !response.report.predicted_finals.is_empty(),
            "campaign {} produced an empty report",
            response.id
        );
        if !args.quiet {
            println!("[{done:>5}/{total}] #{:<5} {}", response.id, response.report.summary());
        }
    }
    let elapsed = t0.elapsed();
    let stats = server.stats();
    server.shutdown();

    assert_eq!(done, total, "every submitted campaign must report");
    println!("\n--- sweep complete ---");
    println!("campaigns    : {done} in {elapsed:.2?} ({:.1}/s)", done as f64 / elapsed.as_secs_f64());
    println!("workers      : {}", stats.workers);
    println!(
        "pool tier    : {} resident, {} hits / {} lookups ({:.1}% hit rate)",
        stats.resident_pools,
        stats.pool_cache.hits,
        stats.pool_cache.lookups(),
        100.0 * stats.pool_cache.hit_rate(),
    );
    println!(
        "curve tier   : {} resident, {} hits / {} lookups ({:.1}% hit rate, {} evictions)",
        stats.resident_curves,
        stats.curve_cache.hits,
        stats.curve_cache.lookups(),
        100.0 * stats.curve_cache.hit_rate(),
        stats.curve_cache.evictions,
    );
    // Each predictor-tier miss is one full training run; the hit rate is
    // the amortization a learned-estimator sweep lives or dies by.
    println!(
        "predict tier : {} resident, {} hits / {} lookups ({:.1}% hit rate, {} trainings)",
        stats.resident_predictors,
        stats.predictor_cache.hits,
        stats.predictor_cache.lookups(),
        100.0 * stats.predictor_cache.hit_rate(),
        stats.predictor_cache.misses,
    );
    if args.batch {
        println!(
            "spine tier   : {} resident, {} groups, {} spine queries",
            stats.resident_spines, stats.batched_groups, stats.spine_queries,
        );
    }
    if args.batch && args.soa {
        let occupancy = if stats.lane_slots > 0 {
            100.0 * stats.lane_jobs as f64 / stats.lane_slots as f64
        } else {
            0.0
        };
        println!(
            "lane kernel  : {} passes, {} jobs over {} slots ({occupancy:.1}% occupancy)",
            stats.kernel_invocations, stats.lane_jobs, stats.lane_slots,
        );
    }
}
