//! Sweep client of the sharded campaign server: builds a
//! workload × θ × seed × market-scenario request grid, submits it to a
//! [`CampaignServer`] worker pool, streams reports back in completion
//! order and prints throughput plus shared-tier hit rates.
//!
//! Run with (all flags optional):
//!
//! ```sh
//! cargo run --release -p spottune-bench --bin run_campaigns -- \
//!     --workloads LoR,GBTR --thetas 0.5,0.7,1.0 --seeds 8 \
//!     --scenario-seeds 2 --days 12 --workers 0 --baselines --quiet
//! ```
//!
//! `--workers 0` (the default) sizes the pool to the machine.

use spottune_bench::TRACE_DAYS;
use spottune_core::prelude::*;
use spottune_market::prelude::*;
use spottune_mlsim::prelude::*;
use spottune_server::{CampaignServer, ServerConfig};
use std::time::Instant;

struct Args {
    workers: usize,
    workloads: Vec<Algorithm>,
    thetas: Vec<f64>,
    seeds: u64,
    scenario_seeds: u64,
    days: u64,
    baselines: bool,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        workers: 0,
        workloads: vec![Algorithm::LoR, Algorithm::ResNet],
        thetas: vec![0.7, 1.0],
        seeds: 4,
        scenario_seeds: 1,
        days: TRACE_DAYS,
        baselines: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--workers" => args.workers = value("--workers").parse().expect("--workers: usize"),
            "--workloads" => {
                args.workloads = value("--workloads")
                    .split(',')
                    .map(|name| {
                        Algorithm::all()
                            .into_iter()
                            .find(|a| a.name().eq_ignore_ascii_case(name))
                            .unwrap_or_else(|| panic!("unknown workload {name}"))
                    })
                    .collect();
            }
            "--thetas" => {
                args.thetas = value("--thetas")
                    .split(',')
                    .map(|t| t.parse().expect("--thetas: f64 list"))
                    .collect();
            }
            "--seeds" => args.seeds = value("--seeds").parse().expect("--seeds: u64"),
            "--scenario-seeds" => {
                args.scenario_seeds =
                    value("--scenario-seeds").parse().expect("--scenario-seeds: u64");
            }
            "--days" => args.days = value("--days").parse().expect("--days: u64"),
            "--baselines" => args.baselines = true,
            "--quiet" => args.quiet = true,
            other => panic!("unknown flag {other} (see the module docs for usage)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut approaches: Vec<Approach> =
        args.thetas.iter().map(|&theta| Approach::SpotTune { theta }).collect();
    if args.baselines {
        approaches.push(Approach::SingleSpot(SingleSpotKind::Cheapest));
        approaches.push(Approach::SingleSpot(SingleSpotKind::Fastest));
    }

    // The full sweep grid: workload × approach × seed × market scenario.
    let mut requests = Vec::new();
    for &algorithm in &args.workloads {
        let workload = Workload::benchmark(algorithm);
        for &approach in &approaches {
            for seed in 0..args.seeds {
                for scenario_seed in 0..args.scenario_seeds {
                    requests.push(CampaignRequest {
                        id: requests.len() as u64,
                        approach,
                        workload: workload.clone(),
                        scenario: MarketScenario::from_days(args.days, 42 + scenario_seed),
                        seed: 42 + seed,
                    });
                }
            }
        }
    }
    let total = requests.len();

    let server = CampaignServer::start(ServerConfig::with_workers(args.workers));
    let workers = server.stats().workers;
    println!("submitting {total} campaigns to {workers} workers …");
    let t0 = Instant::now();
    let mut done = 0usize;
    for response in server.submit_sweep(requests) {
        done += 1;
        if !args.quiet {
            println!("[{done:>5}/{total}] #{:<5} {}", response.id, response.report.summary());
        }
    }
    let elapsed = t0.elapsed();
    let stats = server.stats();
    server.shutdown();

    assert_eq!(done, total, "every submitted campaign must report");
    println!("\n--- sweep complete ---");
    println!("campaigns    : {done} in {elapsed:.2?} ({:.1}/s)", done as f64 / elapsed.as_secs_f64());
    println!("workers      : {}", stats.workers);
    println!(
        "pool tier    : {} resident, {} hits / {} lookups ({:.1}% hit rate)",
        stats.resident_pools,
        stats.pool_cache.hits,
        stats.pool_cache.lookups(),
        100.0 * stats.pool_cache.hit_rate(),
    );
    println!(
        "curve tier   : {} resident, {} hits / {} lookups ({:.1}% hit rate)",
        stats.resident_curves,
        stats.curve_cache.hits,
        stats.curve_cache.lookups(),
        100.0 * stats.curve_cache.hit_rate(),
    );
}
