//! Ablation: how much of SpotTune's saving comes from each provisioning
//! ingredient (§IV.C "Why SpotTune is the Cheapest")?
//!
//! Four estimator variants drive the same Algorithm-1 orchestrator:
//!
//! * **Oracle (p=0.9)** — full revocation awareness (the Figs. 7–9 setup);
//! * **Blind (p=0)**   — Eq. 2 degenerates to lowest step cost, the
//!   "stable markets" scenario of §V.A: no refund harvesting by intent;
//! * **Pessimist (p=0.5 everywhere)** — constant probability: expected cost
//!   keeps ordering by `spe × price`, so refunds happen only by accident;
//! * **Anti-oracle** — inverted predictions, actively avoiding refunds —
//!   a lower bound showing the cost of being wrong.
//!
//! Run with: `cargo run --release -p spottune-bench --bin ablation_provisioner`

use rayon::prelude::*;
use spottune_bench::{print_table, standard_pool, MASTER_SEED};
use spottune_core::prelude::*;
use spottune_market::prelude::*;
use spottune_mlsim::prelude::*;

/// Inverts an oracle: predicts "safe" exactly when the market will revoke.
#[derive(Debug)]
struct AntiOracle(OracleEstimator);

impl RevocationEstimator for AntiOracle {
    fn revocation_probability(&self, instance: &str, t: SimTime, max_price: f64) -> f64 {
        1.0 - self.0.revocation_probability(instance, t, max_price)
    }
    fn name(&self) -> &str {
        "anti-oracle"
    }
}

fn main() {
    let pool = standard_pool(MASTER_SEED);
    let workloads = [Algorithm::LoR, Algorithm::Svm, Algorithm::ResNet];

    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let blind = ConstantEstimator::new(0.0);
    let pessimist = ConstantEstimator::new(0.5);
    let anti = AntiOracle(OracleEstimator::new(pool.clone(), 0.9));
    let estimators: [(&str, &dyn RevocationEstimator); 4] = [
        ("oracle", &oracle),
        ("blind(p=0)", &blind),
        ("constant(p=0.5)", &pessimist),
        ("anti-oracle", &anti),
    ];

    // Every (workload, estimator) campaign is independent: fan the whole
    // ablation grid out across cores.
    let grid: Vec<(Algorithm, usize)> = workloads
        .iter()
        .flat_map(|&alg| (0..estimators.len()).map(move |ei| (alg, ei)))
        .collect();
    let rows: Vec<Vec<String>> = grid
        .into_par_iter()
        .map(|(alg, ei)| {
            let (label, est) = estimators[ei];
            let w = Workload::benchmark(alg);
            let cfg = SpotTuneConfig::new(0.7, 3).with_seed(MASTER_SEED);
            let r = Orchestrator::new(cfg, w.clone(), pool.clone(), est).run();
            vec![
                w.algorithm().name().to_string(),
                label.to_string(),
                format!("{:.3}", r.cost),
                format!("{:.1}", 100.0 * r.free_step_fraction()),
                format!("{:.2}", r.jct.as_hours_f64()),
            ]
        })
        .collect();
    print_table(
        "Ablation: revocation awareness in the provisioner (θ=0.7)",
        &["workload", "estimator", "cost_$", "free_steps_pct", "jct_h"],
        &rows,
    );
    println!("\nExpectation: oracle ≪ blind/constant on cost via refunds; the");
    println!("anti-oracle pays the most — prediction quality, not luck, drives Fig. 7.");
}
