//! Grace-window ablation: how much of a campaign survives revocation as
//! the provider's notice lead shrinks, across checkpoint plans and
//! migration matchers.
//!
//! Three policies run the same storm-ridden campaigns:
//!
//! * `spottune` — the paper's policy with the defaulted grace hooks
//!   (always-full checkpoints, per-job greedy redeploy);
//! * `migration-aware/greedy` — window-sized checkpoints
//!   (full/partial/abandon) plus batch migration with the first-fit
//!   matcher;
//! * `migration-aware/km` — the same, matched with Kuhn–Munkres over the
//!   whole displaced batch.
//!
//! Each cell of (storms × notice lead × policy) averages over seeds;
//! per-campaign rows append as JSON lines to `BENCH_grace.json` (in
//! `crates/bench/` when run from the repo root).
//!
//! Run with: `cargo run --release -p spottune-bench --bin fig_grace`
//! (`--quick` shrinks the grid for smoke runs).

use spottune_bench::{print_table, standard_scenario, MASTER_SEED};
use spottune_cloud::FaultPlan;
use spottune_core::policy::{Matcher, MigrationAware, SpotTuneTheta};
use spottune_core::prelude::*;
use spottune_market::prelude::*;
use spottune_market::RevocationEstimator;
use spottune_mlsim::prelude::*;
use std::io::Write as _;

const THETA: f64 = 0.7;

/// One ablation cell's identity: which policy variant runs the campaign.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PolicyVariant {
    SpotTune,
    MigrationGreedy,
    MigrationKm,
}

impl PolicyVariant {
    fn label(self) -> &'static str {
        match self {
            PolicyVariant::SpotTune => "spottune",
            PolicyVariant::MigrationGreedy => "migration-aware/greedy",
            PolicyVariant::MigrationKm => "migration-aware/km",
        }
    }
}

struct Cell {
    storms: bool,
    grace_secs: u64,
    policy: PolicyVariant,
    mean_cost: f64,
    mean_lost: f64,
    mean_migrations: f64,
    mean_revocations: f64,
}

/// AlexNet carries the paper's largest checkpoint (230 MB, 1.7–3.7 s of
/// transfer depending on the instance), so single-digit grace windows
/// actually truncate uploads — the dimension this figure ablates.
fn workload(quick: bool) -> Workload {
    let base = Workload::benchmark(Algorithm::AlexNet);
    let steps = if quick { 30 } else { 60 };
    Workload::custom(Algorithm::AlexNet, steps, base.hp_grid()[..4].to_vec())
}

/// A storm schedule hammering the two markets the provisioner most often
/// picks, so displaced batches exist for the matchers to spread.
fn storm_plan(pool: &MarketPool, grace_secs: u64) -> FaultPlan {
    let markets: Vec<&str> = pool.iter().map(|m| m.instance().name()).take(2).collect();
    let mut plan = FaultPlan::new(MASTER_SEED);
    for market in markets {
        plan = plan.with_periodic_storms(
            market,
            SimTime::from_hours(10) + SimDur::from_mins(5),
            SimDur::from_mins(10),
            24,
        );
    }
    plan.with_delayed_notices(1.0, SimDur::from_secs(grace_secs))
}

/// The fault-free control arm still caps the notice lead, isolating the
/// grace dimension from the storm dimension.
fn calm_plan(grace_secs: u64) -> FaultPlan {
    FaultPlan::new(MASTER_SEED).with_delayed_notices(1.0, SimDur::from_secs(grace_secs))
}

fn run_cell(
    variant: PolicyVariant,
    plan: &FaultPlan,
    pool: &MarketPool,
    oracle: &dyn RevocationEstimator,
    w: &Workload,
    seed: u64,
) -> HptReport {
    let cfg = SpotTuneConfig::new(THETA, 2).with_seed(seed);
    let engine = Engine::new(cfg.clone(), w.clone(), pool.clone()).with_fault_plan(plan.clone());
    match variant {
        PolicyVariant::SpotTune => {
            let mut policy = SpotTuneTheta::new(oracle, cfg.delta_range, THETA);
            engine.run(&mut policy)
        }
        PolicyVariant::MigrationGreedy => {
            let mut policy =
                MigrationAware::with_matcher(oracle, cfg.delta_range, THETA, Matcher::Greedy);
            engine.run(&mut policy)
        }
        PolicyVariant::MigrationKm => {
            let mut policy = MigrationAware::new(oracle, cfg.delta_range, THETA);
            engine.run(&mut policy)
        }
    }
}

fn json_path() -> &'static str {
    if std::path::Path::new("crates/bench").is_dir() {
        "crates/bench/BENCH_grace.json"
    } else {
        "BENCH_grace.json"
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Notices are delivered on the engine's 10 s poll grid, so any lead
    // below one poll interval collapses to a zero-length window; 0 is the
    // honest label for that regime ("revoked with no usable warning").
    let leads: &[u64] = if quick { &[120, 0] } else { &[120, 30, 10, 0] };
    let seeds: u64 = if quick { 2 } else { 5 };

    let pool = standard_scenario(MASTER_SEED).build();
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let w = workload(quick);
    let variants =
        [PolicyVariant::SpotTune, PolicyVariant::MigrationGreedy, PolicyVariant::MigrationKm];

    let mut out = std::fs::File::create(json_path()).expect("open BENCH_grace.json");
    let mut cells = Vec::new();
    for &storms in &[false, true] {
        for &grace in leads {
            let plan = if storms { storm_plan(&pool, grace) } else { calm_plan(grace) };
            for &variant in &variants {
                let (mut cost, mut lost, mut migrations, mut revocations) = (0.0, 0.0, 0.0, 0.0);
                for seed in 0..seeds {
                    let r = run_cell(variant, &plan, &pool, &oracle, &w, seed);
                    writeln!(
                        out,
                        concat!(
                            r#"{{"group":"grace","policy":"{}","storms":{},"#,
                            r#""grace_secs":{},"seed":{},"cost":{:.6},"jct_secs":{},"#,
                            r#""lost_steps":{},"migrations":{},"revocations":{}}}"#
                        ),
                        variant.label(),
                        storms,
                        grace,
                        seed,
                        r.cost,
                        r.jct.as_secs(),
                        r.lost_steps,
                        r.migrations,
                        r.revocations,
                    )
                    .expect("append JSON row");
                    cost += r.cost;
                    lost += r.lost_steps as f64;
                    migrations += r.migrations as f64;
                    revocations += r.revocations as f64;
                }
                let n = seeds as f64;
                cells.push(Cell {
                    storms,
                    grace_secs: grace,
                    policy: variant,
                    mean_cost: cost / n,
                    mean_lost: lost / n,
                    mean_migrations: migrations / n,
                    mean_revocations: revocations / n,
                });
            }
        }
    }

    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                if c.storms { "storm" } else { "calm" }.to_string(),
                c.grace_secs.to_string(),
                c.policy.label().to_string(),
                format!("{:.4}", c.mean_cost),
                format!("{:.1}", c.mean_lost),
                format!("{:.1}", c.mean_migrations),
                format!("{:.1}", c.mean_revocations),
            ]
        })
        .collect();
    print_table(
        "Grace-window ablation: mean over seeds per (scenario, lead, policy)",
        &["scenario", "grace_s", "policy", "cost_usd", "lost_steps", "migrations", "revocations"],
        &rows,
    );

    // Acceptance: the KM matcher must beat the greedy matcher on at least
    // one storm cell — fewer lost steps, or equal losses at lower cost.
    let beats = |a: &Cell, b: &Cell| {
        a.mean_lost < b.mean_lost || (a.mean_lost == b.mean_lost && a.mean_cost < b.mean_cost)
    };
    let cell = |storms: bool, grace: u64, policy: PolicyVariant| {
        cells
            .iter()
            .find(|c| c.storms == storms && c.grace_secs == grace && c.policy == policy)
            .expect("grid cell exists")
    };
    let mut km_won = false;
    for &grace in leads {
        let km = cell(true, grace, PolicyVariant::MigrationKm);
        let greedy = cell(true, grace, PolicyVariant::MigrationGreedy);
        let spottune = cell(true, grace, PolicyVariant::SpotTune);
        if beats(km, greedy) {
            km_won = true;
            println!(
                "km beats greedy under storms at grace={grace}s: \
                 {:.1} vs {:.1} lost steps, ${:.4} vs ${:.4}",
                km.mean_lost, greedy.mean_lost, km.mean_cost, greedy.mean_cost
            );
        }
        if km.mean_lost < spottune.mean_lost {
            println!(
                "window-sized checkpoints save {:.1} steps vs the default full-plan \
                 path under storms at grace={grace}s",
                spottune.mean_lost - km.mean_lost
            );
        }
    }
    assert!(km_won, "Kuhn–Munkres should out-migrate greedy on at least one storm scenario");
    println!("\nper-campaign rows appended to {}", json_path());
}
