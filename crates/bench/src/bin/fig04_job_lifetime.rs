//! Regenerates paper Fig. 4: the lifecycle of HPT jobs under SpotTune —
//! deployments, free (refunded) revocations, proactive one-hour recycles and
//! the early-shutdown finish — as an event timeline.
//!
//! Run with: `cargo run --release -p spottune-bench --bin fig04_job_lifetime`

use spottune_bench::{standard_pool, MASTER_SEED};
use spottune_core::prelude::*;
use spottune_mlsim::prelude::*;

fn main() {
    let pool = standard_pool(MASTER_SEED);
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    // A small ResNet slice keeps the timeline readable.
    let base = Workload::benchmark(Algorithm::ResNet);
    let workload = Workload::custom(Algorithm::ResNet, 100, base.hp_grid()[..4].to_vec());
    let cfg = SpotTuneConfig::new(0.7, 1).with_seed(MASTER_SEED);
    let orch = Orchestrator::new(cfg, workload, pool, &oracle);
    let (report, events) = orch.run_traced();

    println!("=== Fig 4: lifetime of {} HPT jobs under SpotTune ===", 4);
    for e in &events {
        match e {
            TraceEvent::Deployed { job, instance, max_price, at } => println!(
                "{at}  job {job}: deployed on {instance} (max price ${max_price:.4})"
            ),
            TraceEvent::NoticeCheckpoint { job, at } => println!(
                "{at}  job {job}: revocation notice -> checkpoint to object storage"
            ),
            TraceEvent::Revoked { job, free, at } => println!(
                "{at}  job {job}: revoked by provider ({})",
                if *free { "first-hour refund: the time was FREE" } else { "charged" }
            ),
            TraceEvent::Recycled { job, at } => println!(
                "{at}  job {job}: ran >1h on one VM -> proactive shutdown & redeploy"
            ),
            TraceEvent::Finished { job, reason, steps, at } => println!(
                "{at}  job {job}: finished after {steps} steps ({reason:?})"
            ),
        }
    }
    println!("\n{}", report.summary());
}
