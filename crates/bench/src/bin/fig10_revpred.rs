//! Regenerates paper Fig. 10: (a) accuracy and (b) F1 of RevPred vs the
//! Tributary re-implementation vs logistic regression — trained on the first
//! nine days of the traces, evaluated on the last three — and (c) SpotTune's
//! cost / normalized PCR when provisioning with RevPred vs Tributary.
//!
//! Run with: `cargo run --release -p spottune-bench --bin fig10_revpred`

use parking_lot::Mutex;
use spottune_bench::{print_table, standard_pool, MASTER_SEED};
use spottune_core::prelude::*;
use spottune_market::prelude::*;
use spottune_mlsim::prelude::*;
use spottune_revpred::prelude::*;

fn main() {
    let pool = standard_pool(MASTER_SEED);
    // Paper split: trained on 04/26–05/04, evaluated on 05/05–05/07. The
    // training half is the shared `train_for_pool` entry point (first 3/4
    // of the 12-day trace = exactly the paper's nine days), so this binary
    // trains byte-identical models to the server's predictor tier.
    let eval_from = SimTime::from_days(9);
    let eval_to = SimTime::from_days(12) - SimDur::from_hours(2);

    let kinds = [PredictorKind::RevPred, PredictorKind::Tributary, PredictorKind::Logistic];

    // Train the three predictor families in parallel.
    let sets: Mutex<Vec<(usize, MarketPredictorSet)>> = Mutex::new(Vec::new());
    crossbeam::thread::scope(|scope| {
        for (i, kind) in kinds.iter().enumerate() {
            let pool = pool.clone();
            let sets = &sets;
            scope.spawn(move |_| {
                let set = train_for_pool(*kind, &pool, MASTER_SEED);
                sets.lock().push((i, set));
            });
        }
    })
    .expect("training thread panicked");
    let mut sets = sets.into_inner();
    sets.sort_by_key(|(i, _)| *i);

    // (a)+(b): evaluate on held-out windows. Test max prices use the
    // *random* delta policy — the paper's inference-time behaviour ("while
    // using the trained model for inference, RevPred randomly generates the
    // maximum price as Tributary does") — so no model can game the test by
    // answering the majority class.
    let mut rows = Vec::new();
    for (i, set) in &sets {
        let mut probs = Vec::new();
        let mut labels = Vec::new();
        for market in pool.iter() {
            let samples = build_dataset(
                market,
                eval_from,
                eval_to,
                SimDur::from_mins(15),
                DeltaPolicy::UniformRandom,
                MASTER_SEED ^ 0xeea1,
            );
            for s in &samples {
                let p = set
                    .predict_sample(market.instance().name(), s)
                    .expect("trained market");
                probs.push(p);
                labels.push(s.label);
            }
        }
        let eval = BinaryEval::score(&probs, &labels, 0.5);
        rows.push(vec![
            format!("{:?}", kinds[*i]),
            format!("{:.4}", eval.accuracy()),
            format!("{:.4}", eval.f1()),
            format!("{:.4}", eval.precision()),
            format!("{:.4}", eval.recall()),
        ]);
    }
    print_table(
        "Fig 10(a,b): revocation predictor quality (held-out days 10-12)",
        &["model", "accuracy", "f1", "precision", "recall"],
        &rows,
    );

    // (c): SpotTune cost/PCR with RevPred vs Tributary on all 6 workloads.
    let revpred_set = &sets[0].1;
    let tributary_set = &sets[1].1;
    let reports: Mutex<Vec<(usize, HptReport)>> = Mutex::new(Vec::new());
    crossbeam::thread::scope(|scope| {
        for (wi, w) in Workload::all_benchmarks().into_iter().enumerate() {
            for (ei, est) in [revpred_set, tributary_set].into_iter().enumerate() {
                let pool = pool.clone();
                let w = w.clone();
                let reports = &reports;
                scope.spawn(move |_| {
                    let cfg = SpotTuneConfig::new(0.7, 3).with_seed(MASTER_SEED);
                    let report = Orchestrator::new(cfg, w, pool, est).run();
                    reports.lock().push((wi * 2 + ei, report));
                });
            }
        }
    })
    .expect("campaign thread panicked");
    let mut reports = reports.into_inner();
    reports.sort_by_key(|(i, _)| *i);

    let mut rows = Vec::new();
    let (mut cost_rp, mut cost_tr) = (0.0, 0.0);
    for wi in 0..6 {
        let rp = &reports[wi * 2].1;
        let tr = &reports[wi * 2 + 1].1;
        cost_rp += rp.cost;
        cost_tr += tr.cost;
        rows.push(vec![
            rp.workload.clone(),
            format!("{:.3}", rp.cost),
            format!("{:.3}", tr.cost),
            format!("{:.3}", rp.pcr_normalized(rp)),
            format!("{:.3}", tr.pcr_normalized(rp)),
        ]);
    }
    print_table(
        "Fig 10(c): SpotTune with RevPred vs Tributary predictor (θ=0.7)",
        &["workload", "cost_revpred", "cost_tributary", "pcr_revpred(norm)", "pcr_tributary"],
        &rows,
    );
    println!(
        "\naggregate: RevPred yields {:.1}% lower cost than Tributary (paper: ~25%)",
        100.0 * (1.0 - cost_rp / cost_tr)
    );
}
