//! Regenerates paper Fig. 7: overall cost (a), job completion time (b) and
//! normalized performance-cost rate (c) for SpotTune(θ=0.7), SpotTune(θ=1.0),
//! Single-Spot Tune (Cheapest) and Single-Spot Tune (Fastest) across the six
//! Table-II workloads.
//!
//! Run with: `cargo run --release -p spottune-bench --bin fig07_cost_perf`

use spottune_bench::{print_table, run_campaigns, standard_scenario, Approach, MASTER_SEED};
use spottune_mlsim::prelude::*;

fn main() {
    let scenario = standard_scenario(MASTER_SEED);
    let workloads = Workload::all_benchmarks();
    let approaches = Approach::fig7_set();

    let tasks: Vec<(Approach, Workload)> = workloads
        .iter()
        .flat_map(|w| approaches.iter().map(move |a| (*a, w.clone())))
        .collect();
    let reports = run_campaigns(tasks, scenario, MASTER_SEED);

    // Group per workload: rows of 4 approaches.
    let mut cost_rows = Vec::new();
    let mut jct_rows = Vec::new();
    let mut pcr_rows = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let group = &reports[wi * 4..(wi + 1) * 4];
        let reference = &group[0]; // SpotTune(θ=0.7) normalized to 1
        cost_rows.push(
            std::iter::once(w.algorithm().name().to_string())
                .chain(group.iter().map(|r| format!("{:.3}", r.cost)))
                .collect::<Vec<_>>(),
        );
        jct_rows.push(
            std::iter::once(w.algorithm().name().to_string())
                .chain(group.iter().map(|r| format!("{:.2}", r.jct.as_hours_f64())))
                .collect::<Vec<_>>(),
        );
        pcr_rows.push(
            std::iter::once(w.algorithm().name().to_string())
                .chain(group.iter().map(|r| format!("{:.3}", r.pcr_normalized(reference))))
                .collect::<Vec<_>>(),
        );
    }

    let header = [
        "workload",
        "SpotTune(theta=0.7)",
        "SpotTune(theta=1.0)",
        "SingleSpot(Cheapest)",
        "SingleSpot(Fastest)",
    ];
    print_table("Fig 7(a) Overall Cost ($)", &header, &cost_rows);
    print_table("Fig 7(b) Job Completion Time (hours)", &header, &jct_rows);
    print_table("Fig 7(c) Normalized PCR (SpotTune θ=0.7 = 1)", &header, &pcr_rows);

    // Aggregate savings the paper quotes in §IV.B.1.
    let avg = |f: &dyn Fn(&spottune_core::HptReport) -> f64, col: usize| -> f64 {
        (0..workloads.len()).map(|wi| f(&reports[wi * 4 + col])).sum::<f64>()
            / workloads.len() as f64
    };
    let cost = |r: &spottune_core::HptReport| r.cost;
    let (st07, st10, cheap, fast) = (avg(&cost, 0), avg(&cost, 1), avg(&cost, 2), avg(&cost, 3));
    println!("\n--- aggregate savings (paper §IV.B.1 quotes) ---");
    println!("SpotTune(1.0) vs Cheapest: {:.1}% (paper: 41.5%)", 100.0 * (1.0 - st10 / cheap));
    println!("SpotTune(1.0) vs Fastest:  {:.1}% (paper: 86.04%)", 100.0 * (1.0 - st10 / fast));
    println!("SpotTune(0.7) vs SpotTune(1.0): {:.1}% (paper: 57.16%)", 100.0 * (1.0 - st07 / st10));
    println!("SpotTune(0.7) vs Cheapest: {:.1}% (paper: 75.64%)", 100.0 * (1.0 - st07 / cheap));
    println!("SpotTune(0.7) vs Fastest:  {:.1}% (paper: 94.18%)", 100.0 * (1.0 - st07 / fast));
}
