//! Regenerates paper Fig. 9: the contribution of refunded (free) resources —
//! charged vs free step fractions (a) and refund vs net-cost fractions (b) —
//! for SpotTune(θ=0.7) across the six workloads.
//!
//! Run with: `cargo run --release -p spottune-bench --bin fig09_refund`

use spottune_bench::{print_table, run_campaigns, standard_scenario, Approach, MASTER_SEED};
use spottune_mlsim::prelude::*;

fn main() {
    let scenario = standard_scenario(MASTER_SEED);
    let workloads = Workload::all_benchmarks();
    let tasks: Vec<(Approach, Workload)> = workloads
        .iter()
        .map(|w| (Approach::SpotTune { theta: 0.7 }, w.clone()))
        .collect();
    let reports = run_campaigns(tasks, scenario, MASTER_SEED);

    let mut contribution = Vec::new();
    let mut refund = Vec::new();
    for r in &reports {
        contribution.push(vec![
            r.workload.clone(),
            format!("{:.1}", 100.0 * (1.0 - r.free_step_fraction())),
            format!("{:.1}", 100.0 * r.free_step_fraction()),
        ]);
        refund.push(vec![
            r.workload.clone(),
            format!("{:.1}", 100.0 * (1.0 - r.refund_fraction())),
            format!("{:.1}", 100.0 * r.refund_fraction()),
        ]);
    }
    print_table(
        "Fig 9(a) Free Resources Contribution (% of steps)",
        &["workload", "charged_steps_pct", "free_steps_pct"],
        &contribution,
    );
    print_table(
        "Fig 9(b) Refund-Cost Comparison (% of gross spend)",
        &["workload", "net_cost_pct", "refund_pct"],
        &refund,
    );
    let avg_free = reports.iter().map(|r| r.free_step_fraction()).sum::<f64>()
        / reports.len() as f64;
    println!(
        "\naverage free-step contribution: {:.1}% (paper: 77.5% at θ=0.7)",
        100.0 * avg_free
    );
    let avg_revocations =
        reports.iter().map(|r| r.revocations).sum::<u64>() as f64 / reports.len() as f64;
    println!("average revocations per campaign: {avg_revocations:.1}");
}
