//! Regenerates paper Fig. 5: (a) logistic-regression validation-loss curves
//! under three hyper-parameter settings; (b) a ResNet-style two-stage
//! validation-loss curve with a learning-rate decay drop.
//!
//! Run with: `cargo run --release -p spottune-bench --bin fig05_loss_curves`

use spottune_bench::{print_table, MASTER_SEED};
use spottune_mlsim::prelude::*;

fn main() {
    // (a) Three LoR configurations, like the paper's three curves.
    let w = Workload::benchmark(Algorithm::LoR);
    let picks = [0usize, 5, 10];
    let mut runs: Vec<(String, TrainingRun)> = picks
        .iter()
        .map(|&i| {
            let hp = &w.hp_grid()[i];
            (hp.id(), TrainingRun::new(&w, hp, MASTER_SEED))
        })
        .collect();
    let max = w.max_trial_steps();
    let mut rows = Vec::new();
    for k in (5..=max).step_by(5) {
        let mut row = vec![k.to_string()];
        for (_, run) in runs.iter_mut() {
            row.push(format!("{:.4}", run.metric_at(k)));
        }
        rows.push(row);
    }
    let labels: Vec<&str> = runs.iter().map(|(id, _)| id.as_str()).collect();
    print_table(
        "Fig 5(a): LoR validation loss under three HP settings",
        &["step", labels[0], labels[1], labels[2]],
        &rows,
    );

    // (b) ResNet two-stage curve (decay at epoch 40).
    let w = Workload::benchmark(Algorithm::ResNet);
    let hp = w
        .hp_grid()
        .iter()
        .find(|h| h.int("de") == 40 && h.int("depth") == 29)
        .expect("grid contains de=40 depth=29");
    let mut run = TrainingRun::new(&w, hp, MASTER_SEED);
    let rows: Vec<Vec<String>> = (1..=w.max_trial_steps())
        .map(|k| vec![k.to_string(), format!("{:.4}", run.metric_at(k))])
        .collect();
    print_table(
        &format!("Fig 5(b): ResNet validation loss ({})", hp.id()),
        &["epoch", "validation_loss"],
        &rows,
    );
    let drop = run.metric_at(39) - run.metric_at(44);
    println!("\nstage drop across the decay epoch (39→44): {drop:.3} (clearly visible, as in Fig. 5(b))");
}
