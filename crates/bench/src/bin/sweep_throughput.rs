//! Sweep-throughput bench: the batched sweep engine
//! ([`Campaign::run_many`] via [`BatchRunner`]) vs the serial reference
//! loop ([`CampaignRequest::run_serial`] per campaign), over a
//! representative policy × estimator × seed grid.
//!
//! The batched path groups requests by market scenario, resolves the pool
//! and event spine once per group, trains each learned estimator once per
//! (kind, scenario) instead of once per campaign, and reuses one arena of
//! job state across the whole group — the serial loop pays all of that
//! per campaign. Both produce bit-identical reports (locked by
//! `crates/core/tests/batch_equivalence.rs` and re-asserted here under
//! `--check`).
//!
//! ```sh
//! # CI check: 1k campaigns, full serial reference, bit-identity asserted.
//! cargo run --release -p spottune-bench --bin sweep_throughput -- \
//!     --campaigns 1000 --days 2 --check
//!
//! # Headline measurement: 100k campaigns, serial extrapolated from a
//! # 2k-campaign sample (full serial would retrain ~50k estimators),
//! # appended to the committed baseline.
//! cargo run --release -p spottune-bench --bin sweep_throughput -- \
//!     --campaigns 100000 --days 2 --serial-sample 2000 \
//!     --write crates/bench/BENCH_sweep.json
//! ```
//!
//! The JSON line schema is documented in `crates/bench/README.md`.

use spottune_core::prelude::*;
use spottune_market::{EstimatorSpec, MarketScenario};
use spottune_mlsim::prelude::*;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::time::Instant;

struct Args {
    campaigns: usize,
    days: u64,
    scenarios: u64,
    serial_sample: usize,
    check: bool,
    soa: bool,
    write: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        campaigns: 1000,
        days: 2,
        scenarios: 2,
        serial_sample: 0,
        check: false,
        soa: true,
        write: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match flag.as_str() {
            "--campaigns" => {
                args.campaigns = value("--campaigns").parse().expect("--campaigns: usize");
            }
            "--days" => args.days = value("--days").parse().expect("--days: u64"),
            "--scenarios" => {
                args.scenarios = value("--scenarios").parse().expect("--scenarios: u64");
            }
            "--serial-sample" => {
                args.serial_sample =
                    value("--serial-sample").parse().expect("--serial-sample: usize");
            }
            "--check" => args.check = true,
            "--no-soa" => args.soa = false,
            "--write" => args.write = Some(value("--write")),
            other => panic!("unknown flag {other} (see the module docs for usage)"),
        }
    }
    args
}

/// The estimator mix the sweep cycles through: half learned (the case the
/// predictor tier amortizes), the rest split between the oracle (spine
/// lookups) and the constant baseline (pure engine cost).
const ESTIMATOR_MIX: [&str; 4] = ["logistic", "oracle(0.9)", "logistic", "constant(0.2)"];
const POLICY_MIX: [&str; 4] = ["spottune", "spottune", "hybrid", "migration-aware"];
const THETA_MIX: [f64; 4] = [0.7, 1.0, 0.7, 0.7];

fn build_requests(args: &Args) -> Vec<CampaignRequest> {
    let base = Workload::benchmark(Algorithm::LoR);
    let workload = Workload::custom(Algorithm::LoR, 15, base.hp_grid()[..2].to_vec());
    (0..args.campaigns)
        .map(|i| CampaignRequest {
            id: i as u64,
            approach: Approach::from_policy_name(POLICY_MIX[i % 4], THETA_MIX[i % 4])
                .expect("mix names are registered"),
            workload: workload.clone(),
            // `i / 4` decorrelates the scenario from the mod-4 mixes so
            // every estimator kind appears in every scenario.
            scenario: MarketScenario::from_days(args.days, 42 + (i as u64 / 4) % args.scenarios),
            seed: 42 + (i as u64 % 16),
            estimator: EstimatorSpec::parse(ESTIMATOR_MIX[i % 4]).expect("mix specs parse"),
        })
        .collect()
}

fn main() {
    let args = parse_args();
    assert!(args.campaigns > 0 && args.scenarios > 0, "need a non-empty sweep");
    let requests = build_requests(&args);
    let n = requests.len();
    println!(
        "sweep_throughput: {n} campaigns, {} scenario(s) at {} day(s), mix {:?}",
        args.scenarios, args.days, ESTIMATOR_MIX
    );

    // Batched: one runner, fresh tiers, full sweep. SoA cohort staging
    // (cross-campaign lane kernel, probe-cached estimators) is on unless
    // `--no-soa` selects the scalar A/B reference.
    let runner = BatchRunner::new().with_soa(args.soa);
    let t0 = Instant::now();
    let batched = runner.run_many(&requests);
    let batched_secs = t0.elapsed().as_secs_f64();
    let stats = runner.stats();
    println!(
        "batched : {batched_secs:>8.2}s total, {:>9.1} campaigns/s ({} groups, {} trainings, \
         {} spine queries, soa={}, {} kernel passes, lane occupancy {}, probes {}/{})",
        n as f64 / batched_secs,
        stats.groups,
        stats.predictor_cache.misses,
        stats.spine_queries,
        args.soa,
        stats.kernel_invocations,
        stats
            .lane_occupancy()
            .map_or("n/a".to_string(), |o| format!("{:.3}", o)),
        stats.probe_hits,
        stats.probe_hits + stats.probe_misses,
    );

    // Serial reference: pools built once per scenario (as every serial
    // sweep before the batched engine did), one shared curve memo, but
    // estimator training and engine state paid per campaign. `--serial-
    // sample M` measures a prefix and extrapolates — full serial at 100k
    // campaigns retrains tens of thousands of estimators.
    let sample = match args.serial_sample {
        0 => n,
        m => m.min(n),
    };
    assert!(
        !args.check || sample == n,
        "--check needs the full serial reference (drop --serial-sample)"
    );
    let mut pools = BTreeMap::new();
    for request in &requests[..sample] {
        pools.entry(request.scenario).or_insert_with(|| request.scenario.build());
    }
    let cache = CurveCache::new();
    let t0 = Instant::now();
    let serial: Vec<HptReport> = requests[..sample]
        .iter()
        .map(|request| request.run_serial(&pools[&request.scenario], &cache))
        .collect();
    let measured_secs = t0.elapsed().as_secs_f64();
    let serial_secs = measured_secs * n as f64 / sample as f64;
    if sample == n {
        println!(
            "serial  : {serial_secs:>8.2}s total, {:>9.1} campaigns/s",
            n as f64 / serial_secs
        );
    } else {
        println!(
            "serial  : {serial_secs:>8.2}s extrapolated from {sample} campaigns in \
             {measured_secs:.2}s ({:>9.1} campaigns/s)",
            sample as f64 / measured_secs
        );
    }

    let speedup = serial_secs / batched_secs;
    println!("speedup : {speedup:>8.2}x (batched vs serial)");

    for (i, (want, got)) in serial.iter().zip(&batched).enumerate() {
        assert_eq!(got, want, "campaign {i}: batched report diverged from run_serial");
    }
    println!("bit-identity: {sample}/{n} campaigns verified against run_serial");
    if args.check {
        assert!(stats.spine_queries > 0, "batched sweep never queried the spine");
        // One pool/spine build per scenario, one learned training per
        // (kind, scenario) — the amortization the batched path exists for.
        assert_eq!(stats.pool_cache.misses, args.scenarios, "{stats:?}");
        assert_eq!(stats.spine_cache.misses, args.scenarios, "{stats:?}");
        assert_eq!(stats.predictor_cache.misses, args.scenarios, "{stats:?}");
        assert_eq!(stats.campaigns as usize, n);
        if args.soa {
            assert!(
                stats.kernel_invocations > 0,
                "SoA sweep never invoked the lane kernel: {stats:?}"
            );
        } else {
            assert_eq!(stats.kernel_invocations, 0, "--no-soa must skip the kernel");
        }
        println!("check ok: batched ≡ serial, spine queries {}", stats.spine_queries);
    }

    if let Some(path) = &args.write {
        // One JSON line per run, appended (the BENCH_*.json convention;
        // serde is stubbed workspace-wide, so format by hand).
        let line = format!(
            concat!(
                "{{\"group\":\"sweep\",\"campaigns\":{},\"scenarios\":{},\"days\":{},",
                "\"estimator_mix\":[\"logistic\",\"oracle(0.9)\",\"logistic\",",
                "\"constant(0.2)\"],\"serial_secs\":{:.2},\"serial_sample\":{},",
                "\"batched_secs\":{:.2},\"speedup\":{:.2},\"batched_campaigns_per_sec\":{:.1},",
                "\"serial_campaigns_per_sec\":{:.1},\"groups\":{},\"trainings\":{},",
                "\"spine_queries\":{},\"soa\":{},\"lane_width\":{},",
                "\"kernel_invocations\":{}}}"
            ),
            n,
            args.scenarios,
            args.days,
            serial_secs,
            sample,
            batched_secs,
            speedup,
            n as f64 / batched_secs,
            n as f64 / serial_secs,
            stats.groups,
            stats.predictor_cache.misses,
            stats.spine_queries,
            args.soa,
            spottune_earlycurve::LANE_WIDTH,
            stats.kernel_invocations,
        );
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .unwrap_or_else(|e| panic!("cannot open {path}: {e}"));
        writeln!(file, "{line}").expect("write bench line");
        println!("appended baseline line to {path}");
    }
}
