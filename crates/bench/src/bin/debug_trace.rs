//! Developer diagnostic: campaign event statistics for one workload.

use spottune_bench::{standard_pool, MASTER_SEED};
use spottune_core::prelude::*;
use spottune_mlsim::prelude::*;
use std::collections::HashMap;

fn main() {
    let pool = standard_pool(MASTER_SEED);
    let oracle = OracleEstimator::new(pool.clone(), 0.9);
    let w = Workload::benchmark(Algorithm::LoR);
    let cfg = SpotTuneConfig::new(0.7, 3).with_seed(MASTER_SEED);
    let orch = Orchestrator::new(cfg, w, pool, &oracle);
    let (report, events) = orch.run_traced();

    let mut deployed_per_inst: HashMap<String, u64> = HashMap::new();
    let (mut deployed, mut revoked_free, mut revoked_paid, mut recycled, mut finished) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut deploy_time: HashMap<usize, spottune_market::SimTime> = HashMap::new();
    let mut free_lifetimes = Vec::new();
    for e in &events {
        match e {
            TraceEvent::Deployed { job, instance, at, .. } => {
                deployed += 1;
                *deployed_per_inst.entry(instance.clone()).or_default() += 1;
                deploy_time.insert(*job, *at);
            }
            TraceEvent::Revoked { free, job, at } => {
                if *free {
                    revoked_free += 1;
                    if let Some(d) = deploy_time.get(job) {
                        free_lifetimes.push(at.since(*d).as_secs() / 60);
                    }
                } else {
                    revoked_paid += 1;
                }
            }
            TraceEvent::Recycled { .. } => recycled += 1,
            TraceEvent::Finished { .. } => finished += 1,
            _ => {}
        }
    }
    println!("deployed={deployed} revoked_free={revoked_free} revoked_paid={revoked_paid} recycled={recycled} finished={finished}");
    println!("per-instance deployments: {deployed_per_inst:?}");
    free_lifetimes.sort_unstable();
    println!("free VM lifetimes (min): {free_lifetimes:?}");
    println!("free_steps={} charged_steps={}", report.free_steps, report.charged_steps);
    println!("{}", report.summary());
}
