//! Regenerates paper Fig. 6 and the §IV.A.5 COV claim: seconds-per-epoch of
//! the ResNet benchmark across the six instance types (ordered by price),
//! plus the step-time coefficient of variation per workload.
//!
//! Run with: `cargo run --release -p spottune-bench --bin fig06_profiling`

use rand::rngs::StdRng;
use rand::SeedableRng;
use spottune_bench::print_table;
use spottune_market::instance;
use spottune_market::stats::cov;
use spottune_mlsim::prelude::*;

fn main() {
    let model = PerfModel::new();
    let resnet = Workload::benchmark(Algorithm::ResNet);
    let hp = resnet.hp_grid()[0].clone();

    let mut catalog = instance::catalog();
    catalog.sort_by(|a, b| {
        a.on_demand_price()
            .partial_cmp(&b.on_demand_price())
            .expect("finite prices")
    });
    let rows: Vec<Vec<String>> = catalog
        .iter()
        .map(|inst| {
            vec![
                inst.name().into(),
                format!("{}", inst.on_demand_price()),
                format!("{:.1}", model.true_spe(inst, &resnet, &hp)),
            ]
        })
        .collect();
    print_table(
        "Fig 6: ResNet speed (seconds/epoch) by instance, price-ascending",
        &["instance", "on_demand_USD_per_h", "seconds_per_epoch"],
        &rows,
    );
    let spes: Vec<f64> = catalog
        .iter()
        .map(|i| model.true_spe(i, &resnet, &hp))
        .collect();
    let monotone = spes.windows(2).all(|w| w[1] <= w[0]);
    println!("\nstrictly price-monotone performance: {monotone} (paper observes it is NOT monotone)");

    // §IV.A.5: COV of per-step times must be < 0.1 for every benchmark.
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(5);
    for w in Workload::all_benchmarks() {
        let hp = w.hp_grid()[0].clone();
        let inst = instance::by_name("r3.xlarge").expect("catalog");
        let samples: Vec<f64> = (0..400)
            .map(|_| model.sample_spe(&inst, &w, &hp, &mut rng))
            .collect();
        rows.push(vec![
            w.algorithm().name().into(),
            format!("{:.4}", cov(&samples)),
            "<0.1".into(),
        ]);
    }
    print_table(
        "§IV.A.5: step-time COV per workload (r3.xlarge, 400 samples)",
        &["workload", "cov", "paper_bound"],
        &rows,
    );
}
