//! Regenerates the paper's tables: user parameters (Table I), the benchmark
//! matrix (Table II), the instance catalog (Table III), and the Fig. 2 grid
//! expansion example.
//!
//! Run with: `cargo run --release -p spottune-bench --bin tables`

use rayon::prelude::*;
use spottune_bench::print_table;
use spottune_core::SpotTuneConfig;
use spottune_market::instance;
use spottune_mlsim::prelude::*;

fn main() {
    // Table I: user-specified parameters and their defaults here.
    let cfg = SpotTuneConfig::default();
    print_table(
        "Table I: user-specified parameters",
        &["parameter", "meaning", "default"],
        &[
            vec![
                "metric".into(),
                "model-quality metric (per workload, lower is better)".into(),
                "see Table II".into(),
            ],
            vec![
                "max_trial_steps".into(),
                "maximum steps per configuration".into(),
                "see Table II".into(),
            ],
            vec![
                "theta".into(),
                "early-shutdown rate for final-metric prediction".into(),
                format!("{}", cfg.theta),
            ],
            vec![
                "mcnt".into(),
                "models kept for continued training".into(),
                format!("{}", cfg.mcnt),
            ],
        ],
    );

    // Table II: algorithms, datasets, optimizers, metrics, HP grids. Each
    // row walks its whole grid to collect the axis values — independent
    // per workload, so fan the rows across cores.
    let rows: Vec<Vec<String>> = Workload::all_benchmarks()
        .par_iter()
        .map(|w| {
            let axes: Vec<String> = w.hp_grid()[0]
                .entries()
                .iter()
                .map(|(k, _)| {
                    let mut values: Vec<String> = w
                        .hp_grid()
                        .iter()
                        .map(|hp| hp.get(k).expect("axis present").to_string())
                        .collect();
                    values.sort();
                    values.dedup();
                    format!("{k}∈{{{}}}", values.join(" "))
                })
                .collect();
            vec![
                w.algorithm().name().into(),
                w.dataset().into(),
                w.optimizer().into(),
                w.metric().into(),
                format!("{}", w.max_trial_steps()),
                axes.join(" "),
            ]
        })
        .collect();
    print_table(
        "Table II: ML benchmarks",
        &["algorithm", "dataset", "optimizer", "metric", "max_trial_steps", "hyper-parameters"],
        &rows,
    );

    // Table III: instance catalog.
    let rows: Vec<Vec<String>> = instance::catalog()
        .iter()
        .map(|i| {
            vec![
                i.name().into(),
                format!("{}", i.vcpus()),
                format!("{}", i.memory_gb()),
                format!("{}", i.on_demand_price()),
            ]
        })
        .collect();
    print_table(
        "Table III: experimental instance configurations",
        &["instance", "vCPUs", "memory_GB", "on_demand_USD_per_h"],
        &rows,
    );

    // Fig. 2: grid expansion example (the HPT search space).
    let w = Workload::benchmark(Algorithm::ResNet);
    let rows: Vec<Vec<String>> = w
        .hp_grid()
        .iter()
        .enumerate()
        .map(|(i, hp)| vec![format!("model {}.{}", 6, i + 1), hp.id()])
        .collect();
    print_table("Fig 2: expanded ResNet search space (16 models)", &["model", "configuration"], &rows);
}
