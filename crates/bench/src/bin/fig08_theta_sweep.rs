//! Regenerates paper Fig. 8: SpotTune's sensitivity against θ — (a) cost and
//! (b) JCT per workload for θ ∈ {0.1, …, 1.0}, and (c) the average top-1 /
//! top-3 accuracy of EarlyCurve's final selection.
//!
//! Run with: `cargo run --release -p spottune-bench --bin fig08_theta_sweep`

use rayon::prelude::*;
use spottune_bench::{print_table, run_campaigns, standard_scenario, Approach, MASTER_SEED};
use spottune_earlycurve::prelude::*;
use spottune_mlsim::prelude::*;

const THETAS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

fn main() {
    let scenario = standard_scenario(MASTER_SEED);
    let workloads = Workload::all_benchmarks();

    // (a) + (b): one campaign per (workload, θ).
    let tasks: Vec<(Approach, Workload)> = workloads
        .iter()
        .flat_map(|w| THETAS.iter().map(move |&theta| (Approach::SpotTune { theta }, w.clone())))
        .collect();
    let reports = run_campaigns(tasks, scenario, MASTER_SEED);

    let mut cost_rows = Vec::new();
    let mut jct_rows = Vec::new();
    for (wi, w) in workloads.iter().enumerate() {
        let group = &reports[wi * THETAS.len()..(wi + 1) * THETAS.len()];
        cost_rows.push(
            std::iter::once(w.algorithm().name().to_string())
                .chain(group.iter().map(|r| format!("{:.3}", r.cost)))
                .collect::<Vec<_>>(),
        );
        jct_rows.push(
            std::iter::once(w.algorithm().name().to_string())
                .chain(group.iter().map(|r| format!("{:.2}", r.jct.as_hours_f64())))
                .collect::<Vec<_>>(),
        );
    }
    let header: Vec<String> = std::iter::once("workload".to_string())
        .chain(THETAS.iter().map(|t| format!("θ={t}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_table("Fig 8(a): SpotTune cost ($) vs θ", &header_refs, &cost_rows);
    print_table("Fig 8(b): SpotTune JCT (hours) vs θ", &header_refs, &jct_rows);

    // (c): EarlyCurve selection accuracy vs θ, averaged over workloads and
    // seeds (the prediction itself needs no cloud simulation). Each
    // (θ, workload, seed) cell is independent — fan the whole grid out
    // across cores and reduce per θ afterwards.
    let seeds = [42u64, 7, 1234, 99, 555];
    let cells: Vec<(usize, usize, u64)> = (0..THETAS.len())
        .flat_map(|ti| {
            (0..workloads.len()).flat_map(move |wi| seeds.into_iter().map(move |s| (ti, wi, s)))
        })
        .collect();
    let hits: Vec<(usize, bool, bool)> = cells
        .into_par_iter()
        .map(|(ti, wi, seed)| {
            let theta = THETAS[ti];
            let w = &workloads[wi];
            let max = w.max_trial_steps();
            let target = ((theta * max as f64).ceil() as u64).clamp(1, max);
            let mut preds = Vec::with_capacity(w.hp_grid().len());
            let mut finals = Vec::with_capacity(w.hp_grid().len());
            for hp in w.hp_grid() {
                let mut run = TrainingRun::new(w, hp, seed);
                let mut ec = EarlyCurve::new(EarlyCurveConfig::default());
                for k in 1..=target {
                    ec.push(k, run.metric_at(k));
                }
                let last = run.metric_at(target);
                preds.push(if theta >= 1.0 {
                    last
                } else {
                    ec.predict_final(max).unwrap_or(last)
                });
                finals.push(run.final_metric());
            }
            let best = argmin(&finals);
            let mut rank: Vec<usize> = (0..preds.len()).collect();
            rank.sort_by(|&a, &b| preds[a].partial_cmp(&preds[b]).expect("finite"));
            (ti, rank[0] == best, rank[..3].contains(&best))
        })
        .collect();
    let mut acc_rows = Vec::new();
    for (ti, &theta) in THETAS.iter().enumerate() {
        let cell: Vec<&(usize, bool, bool)> = hits.iter().filter(|(i, _, _)| *i == ti).collect();
        let n = cell.len() as f64;
        let hit1 = cell.iter().filter(|(_, h1, _)| *h1).count() as f64;
        let hit3 = cell.iter().filter(|(_, _, h3)| *h3).count() as f64;
        acc_rows.push(vec![
            format!("{theta}"),
            format!("{:.3}", hit1 / n),
            format!("{:.3}", hit3 / n),
        ]);
    }
    print_table(
        "Fig 8(c): selection accuracy vs θ (avg over 6 workloads × 5 seeds)",
        &["theta", "top1_accuracy", "top3_accuracy"],
        &acc_rows,
    );
}

fn argmin(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")
}
