//! Criterion macro-benchmark: a complete (small) SpotTune campaign — the
//! end-to-end cost of simulating Algorithm 1 against the cloud substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use spottune_core::prelude::*;
use spottune_market::prelude::*;
use spottune_mlsim::prelude::*;

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator");
    group.sample_size(10);
    let pool = MarketPool::standard(SimDur::from_days(10), 42);
    // The paper's headline deep-learning workload: ResNet steps take the
    // better part of ten simulated minutes, so a campaign spans many
    // simulated hours — the regime the event-driven core exists for.
    let base = Workload::benchmark(Algorithm::ResNet);
    let small = Workload::custom(Algorithm::ResNet, 60, base.hp_grid()[..4].to_vec());
    // Default (event-driven) drive vs the retained 10-second tick loop —
    // the two produce bit-identical reports (see the
    // tick_event_equivalence tests), so the ratio is pure scheduling
    // overhead.
    group.bench_function("campaign_4cfg_60steps_theta07", |b| {
        b.iter(|| {
            let oracle = OracleEstimator::new(pool.clone(), 0.9);
            let cfg = SpotTuneConfig::new(0.7, 2).with_seed(9);
            Orchestrator::new(cfg, small.clone(), pool.clone(), &oracle).run()
        })
    });
    group.bench_function("campaign_4cfg_60steps_theta07_tickloop", |b| {
        b.iter(|| {
            let oracle = OracleEstimator::new(pool.clone(), 0.9);
            let cfg = SpotTuneConfig::new(0.7, 2)
                .with_seed(9)
                .with_drive_mode(DriveMode::Tick);
            Orchestrator::new(cfg, small.clone(), pool.clone(), &oracle).run()
        })
    });
    let lor = Workload::benchmark(Algorithm::LoR);
    let lor_small = Workload::custom(Algorithm::LoR, 60, lor.hp_grid()[..4].to_vec());
    group.bench_function("campaign_lor_4cfg_60steps_theta07", |b| {
        b.iter(|| {
            let oracle = OracleEstimator::new(pool.clone(), 0.9);
            let cfg = SpotTuneConfig::new(0.7, 2).with_seed(9);
            Orchestrator::new(cfg, lor_small.clone(), pool.clone(), &oracle).run()
        })
    });
    group.bench_function("single_spot_baseline_4cfg", |b| {
        b.iter(|| {
            run_single_spot(
                SingleSpotKind::Cheapest,
                &small,
                &pool,
                SimTime::from_hours(2),
                9,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
