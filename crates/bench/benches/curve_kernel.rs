//! Criterion micro-benchmark: scalar staged-curve prediction (one
//! `fit_stage` + `predict` per campaign, the pre-SoA hot loop) vs the
//! cross-campaign lane kernel (`fit_into` + `CurveLanes`), across group
//! sizes from a single campaign through a full sweep chunk. The lane path
//! is bit-identical to the scalar one (locked by
//! `crates/earlycurve/tests/kernel_proptests.rs`); this bench measures
//! what that identity costs or saves at each width.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spottune_earlycurve::kernel::{extrapolation_stage, CurveLanes, FitScratch};
use spottune_earlycurve::prelude::*;

const HORIZON: u64 = 1000;

/// One synthetic decaying curve per group member, decorrelated by index so
/// stage detection does real work on every lane.
fn curves(n: usize) -> Vec<EarlyCurve> {
    (0..n)
        .map(|i| {
            let mut ec = EarlyCurve::new(EarlyCurveConfig::default());
            let base = 0.3 + 0.01 * (i % 7) as f64;
            let scale = 1.0 + 0.05 * (i % 5) as f64;
            let decay = 0.2 + 0.02 * (i % 3) as f64;
            for k in 1..=40u64 {
                let jitter = 0.01 * (((i as u64 + k) % 9) as f64 - 4.0) / 4.0;
                ec.push(k, base + scale / (decay * k as f64 + 1.0) + jitter);
            }
            ec
        })
        .collect()
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("curve_kernel");
    for n in [1usize, 7, 8, 64, 1000] {
        let ecs = curves(n);

        // Scalar reference: the per-campaign loop the engine ran before the
        // SoA path — allocate, fit, predict, one curve at a time.
        group.bench_function(format!("scalar_predict_{n}"), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for ec in &ecs {
                    acc += ec.predict_final(HORIZON).unwrap_or(f64::INFINITY);
                }
                acc
            })
        });

        // Lane path: allocation-free fits into shared scratch, stage
        // selection, then one chunked kernel pass over all n campaigns.
        group.bench_function(format!("lane_kernel_{n}"), |b| {
            b.iter_batched(
                || (FitScratch::new(), CurveLanes::new()),
                |(mut fit, mut lanes)| {
                    for ec in &ecs {
                        if ec.fit_into(&mut fit) {
                            lanes.push(extrapolation_stage(fit.stages(), HORIZON), HORIZON);
                        }
                    }
                    lanes.evaluate();
                    lanes.out().iter().sum::<f64>()
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernel);
criterion_main!(benches);
