//! Criterion micro-benchmark: synthetic spot-price trace generation and the
//! window queries behind RevPred's feature engineering.

use criterion::{criterion_group, criterion_main, Criterion};
use spottune_market::prelude::*;

fn bench_traces(c: &mut Criterion) {
    let mut group = c.benchmark_group("market");
    let inst = instance::by_name("r3.xlarge").expect("catalog");
    let generator = TraceGenerator::preset(Regime::Spiky);
    group.bench_function("generate_12day_trace", |b| {
        b.iter(|| generator.generate(&inst, SimDur::from_days(12), 42))
    });
    let trace = generator.generate(&inst, SimDur::from_days(12), 42);
    group.bench_function("avg_last_hour", |b| {
        b.iter(|| trace.avg_last_hour(SimTime::from_days(6)))
    });
    group.bench_function("first_exceed_1h_horizon", |b| {
        b.iter(|| trace.first_exceed(SimTime::from_days(6), SimDur::from_hours(1), 0.2))
    });
    group.bench_function("standard_pool_12days", |b| {
        b.iter(|| MarketPool::standard(SimDur::from_days(12), 42))
    });
    group.finish();
}

criterion_group!(benches, bench_traces);
criterion_main!(benches);
