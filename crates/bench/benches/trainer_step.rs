//! Criterion micro-benchmark: one training step of each real trainer — the
//! per-step work the ML-simulation substrate pays inside campaigns.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spottune_mlsim::prelude::*;

fn bench_trainers(c: &mut Criterion) {
    let mut group = c.benchmark_group("trainer");
    for alg in [Algorithm::LoR, Algorithm::Svm, Algorithm::Gbtr, Algorithm::LiR] {
        let w = Workload::benchmark(alg);
        let hp = w.hp_grid()[0].clone();
        group.bench_function(format!("{}_step", alg.name()), |b| {
            b.iter_batched(
                || TrainingRun::new(&w, &hp, 42),
                |mut run| run.metric_at(1),
                BatchSize::LargeInput,
            )
        });
    }
    // The curve substrate is near-free; measure for completeness.
    let w = Workload::benchmark(Algorithm::ResNet);
    let hp = w.hp_grid()[0].clone();
    group.bench_function("ResNet_full_curve_100", |b| {
        b.iter_batched(
            || TrainingRun::new(&w, &hp, 42),
            |mut run| run.final_metric(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_trainers);
criterion_main!(benches);
