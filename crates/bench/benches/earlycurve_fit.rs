//! Criterion micro-benchmark: EarlyCurve staged fitting and final-metric
//! prediction — the operation Algorithm 1 runs for every configuration at
//! line 50.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use spottune_earlycurve::prelude::*;

fn two_stage_points(n: u64) -> Vec<(u64, f64)> {
    (1..=n)
        .map(|k| {
            let m = if k <= n / 2 {
                1.0 + 1.5 / (0.3 * k as f64 + 1.0)
            } else {
                let rel = (k - n / 2) as f64;
                0.45 + 0.2 / (0.4 * rel + 1.0)
            };
            (k, m)
        })
        .collect()
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("earlycurve");
    for n in [70u64, 280] {
        let points = two_stage_points(n);
        group.bench_function(format!("staged_fit_{n}_points"), |b| {
            b.iter_batched(
                || {
                    let mut ec = EarlyCurve::new(EarlyCurveConfig::default());
                    for &(k, m) in &points {
                        ec.push(k, m);
                    }
                    ec
                },
                |ec| ec.predict_final(1000),
                BatchSize::SmallInput,
            )
        });
    }
    let points = two_stage_points(280);
    group.bench_function("slaq_fit_280_points", |b| {
        b.iter_batched(
            || {
                let mut s = Slaq::new();
                for &(k, m) in &points {
                    s.push(k, m);
                }
                s
            },
            |s| s.predict_final(1000),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("stage_detection_280_points", |b| {
        let metrics: Vec<f64> = points.iter().map(|&(_, m)| m).collect();
        b.iter(|| detect_boundaries(&metrics, &StageConfig::default()))
    });
    group.finish();
}

criterion_group!(benches, bench_fit);
criterion_main!(benches);
