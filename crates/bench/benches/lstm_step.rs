//! Criterion micro-benchmark: RevPred-sized LSTM forward/backward passes —
//! the dominant cost of predictor training and of each provisioning-time
//! inference.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spottune_nn::prelude::*;

fn sequence(t: usize, batch: usize, input: usize) -> Vec<Matrix> {
    (0..t)
        .map(|s| Matrix::from_fn(batch, input, |r, c| ((s * 13 + r * 7 + c) as f64 * 0.1).sin()))
        .collect()
}

fn bench_lstm(c: &mut Criterion) {
    let mut group = c.benchmark_group("lstm");
    group.sample_size(30);
    // RevPred dimensions: 59 steps × 6 features, three tiers of hidden 12.
    let mut rng = StdRng::seed_from_u64(3);
    let mut stack = StackedLstm::new(6, 12, 3, &mut rng);
    let xs = sequence(59, 32, 6);
    group.bench_function("revpred_stack_forward_b32", |b| {
        b.iter(|| stack.forward_inference(&xs))
    });
    group.bench_function("revpred_stack_train_step_b32", |b| {
        b.iter(|| {
            stack.zero_grad();
            let hs = stack.forward(&xs);
            let dhs: Vec<Matrix> = hs
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    if i == hs.len() - 1 {
                        h.map(|_| 1.0)
                    } else {
                        Matrix::zeros(h.rows(), h.cols())
                    }
                })
                .collect();
            stack.backward(&dhs)
        })
    });
    // Single-sample inference: what the provisioner pays per market query.
    let one = sequence(59, 1, 6);
    group.bench_function("revpred_stack_inference_b1", |b| {
        b.iter(|| stack.forward_inference(&one))
    });
    group.finish();
}

criterion_group!(benches, bench_lstm);
criterion_main!(benches);
