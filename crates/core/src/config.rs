//! User-facing configuration (paper Table I) plus system knobs.

use serde::{Deserialize, Serialize};
use spottune_market::{SimDur, SimTime};

/// How the orchestrator advances simulated time through Algorithm 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DriveMode {
    /// Faithful fixed-interval polling: one full loop body every
    /// `poll_interval` (the paper's literal 10-second loop). Retained as
    /// the reference semantics.
    Tick,
    /// Next-event time advance: compute the next tick at which anything can
    /// change (step completion, notice, revocation, recycle deadline,
    /// restore finishing, deploy retry) and jump straight there, advancing
    /// job progress by whole-tick arithmetic. Produces bit-identical
    /// reports and trace-event sequences to [`DriveMode::Tick`] (locked in
    /// by the `tick_event_equivalence` tests) at a small fraction of the
    /// cost.
    #[default]
    Event,
}

/// Configuration of one SpotTune HPT campaign.
///
/// The four user-specified parameters of Table I are `metric` (carried by
/// the workload — all our metrics are lower-is-better losses),
/// `max_trial_steps` (carried by the workload), [`theta`](Self::theta) and
/// [`mcnt`](Self::mcnt). The rest are system constants from Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpotTuneConfig {
    /// Early-shutdown rate θ: predict finals after `θ × max_trial_steps`
    /// steps. `1.0` disables EarlyCurve.
    pub theta: f64,
    /// Number of models to keep training after prediction (`mcnt`).
    pub mcnt: usize,
    /// Main-loop poll interval (Algorithm 1 line 45: 10 seconds).
    pub poll_interval: SimDur,
    /// Proactive recycle threshold (Algorithm 1 line 31: one hour).
    pub reschedule_after: SimDur,
    /// Initial per-step seconds on a hypothetical 1-vCPU machine; `M` is
    /// initialized to `c0 / vcpus` before online profiling refines it.
    pub c0: f64,
    /// EWMA smoothing for online performance updates.
    pub ewma_alpha: f64,
    /// Max-price delta range over the current price (Algorithm 1 line 4).
    pub delta_range: (f64, f64),
    /// Campaign submission instant within the price traces.
    pub start: SimTime,
    /// Master seed (per-configuration seeds derive from it).
    pub seed: u64,
    /// Time-advance strategy (event-driven by default; `Tick` is the
    /// polling reference used by the equivalence tests).
    pub drive_mode: DriveMode,
}

impl Default for SpotTuneConfig {
    fn default() -> Self {
        SpotTuneConfig {
            theta: 0.7,
            mcnt: 3,
            poll_interval: SimDur::from_secs(10),
            reschedule_after: SimDur::from_hours(1),
            c0: 1200.0,
            ewma_alpha: 0.3,
            delta_range: (0.00001, 0.2),
            // Mid-morning on a workday: campaigns overlap the business-hour
            // demand peaks that drive spot-market bid wars (and refunds).
            start: SimTime::from_hours(10),
            seed: 42,
            drive_mode: DriveMode::default(),
        }
    }
}

impl SpotTuneConfig {
    /// Creates a configuration with the two key user parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < theta <= 1` and `mcnt >= 1`.
    pub fn new(theta: f64, mcnt: usize) -> Self {
        let cfg = SpotTuneConfig { theta, mcnt, ..SpotTuneConfig::default() };
        cfg.validate();
        cfg
    }

    /// Builder-style θ override.
    pub fn with_theta(mut self, theta: f64) -> Self {
        self.theta = theta;
        self.validate();
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style start-time override.
    pub fn with_start(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Builder-style drive-mode override.
    pub fn with_drive_mode(mut self, mode: DriveMode) -> Self {
        self.drive_mode = mode;
        self
    }

    /// Validates invariants.
    ///
    /// # Panics
    ///
    /// Panics on invalid θ, `mcnt`, delta range or poll interval.
    pub fn validate(&self) {
        assert!(
            self.theta > 0.0 && self.theta <= 1.0,
            "theta must be in (0, 1], got {}",
            self.theta
        );
        assert!(self.mcnt >= 1, "mcnt must be at least 1");
        assert!(
            self.delta_range.0 > 0.0 && self.delta_range.0 < self.delta_range.1,
            "invalid delta range {:?}",
            self.delta_range
        );
        assert!(self.poll_interval.as_secs() > 0, "poll interval must be positive");
    }

    /// Phase-1 step target: `⌈θ × max_trial_steps⌉`.
    pub fn target_steps(&self, max_trial_steps: u64) -> u64 {
        ((self.theta * max_trial_steps as f64).ceil() as u64).clamp(1, max_trial_steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = SpotTuneConfig::default();
        assert_eq!(cfg.theta, 0.7); // minimum reliable θ (§IV.A.4)
        assert_eq!(cfg.poll_interval.as_secs(), 10);
        assert_eq!(cfg.reschedule_after.as_secs(), 3600);
        assert_eq!(cfg.delta_range, (0.00001, 0.2));
        cfg.validate();
    }

    #[test]
    fn target_steps_rounds_up_and_clamps() {
        let cfg = SpotTuneConfig::new(0.7, 3);
        assert_eq!(cfg.target_steps(400), 280);
        assert_eq!(cfg.target_steps(81), 57); // ceil(56.7)
        let full = SpotTuneConfig::new(1.0, 1);
        assert_eq!(full.target_steps(400), 400);
    }

    #[test]
    #[should_panic(expected = "theta must be in (0, 1]")]
    fn zero_theta_rejected() {
        let _ = SpotTuneConfig::new(0.0, 3);
    }

    #[test]
    #[should_panic(expected = "mcnt must be at least 1")]
    fn zero_mcnt_rejected() {
        let _ = SpotTuneConfig::new(0.5, 0);
    }
}
