//! The campaign engine: one event-driven executor behind every
//! provisioning strategy.
//!
//! The engine owns everything *mechanical* about a campaign — cloud events,
//! billing, checkpoint accounting, EarlyCurve prediction and top-`mcnt`
//! continuation, and time advance — and consults a
//! [`ProvisionPolicy`](crate::policy::ProvisionPolicy) at its decision
//! points. Two drives cover the two execution models:
//!
//! * **Transient** ([`PolicyMode::Transient`]) — the paper's Algorithm-1
//!   loop. Phase 1 runs every configuration to `θ × max_trial_steps`,
//!   reacting to three events per poll (10 s): revocation notices
//!   (checkpoint → requeue), step-target completion (checkpoint → finish),
//!   and the one-hour proactive recycle (checkpoint → shutdown → requeue,
//!   harvesting the first-hour refund opportunity). EarlyCurve then
//!   predicts every configuration's final metric and the top-`mcnt`
//!   continue from their checkpoints to full training (Algorithm 1 lines
//!   48–53). Time advances in one of two equivalent ways (see
//!   [`DriveMode`]): the paper's literal 10-second polling loop, or — the
//!   default — next-event jumps that visit only the grid ticks at which
//!   something can happen. Both run the same per-tick body at the same
//!   instants, so reports and trace-event sequences are bit-identical.
//! * **Dedicated** ([`PolicyMode::Dedicated`]) — the baselines' execution
//!   model: one never-revoked VM per configuration, trained start-to-finish
//!   with θ = 1 semantics (predictions are the observed finals). Kept
//!   bit-identical to the closed-form reference implementations in
//!   [`crate::baseline`] by the `policy_equivalence` tests.

use crate::arena::EngineScratch;
use crate::config::{DriveMode, SpotTuneConfig};
use crate::job::{FinishReason, Job};
use crate::perfmatrix::PerfMatrix;
use crate::policy::{
    CheckpointPlan, DeployCtx, MigrationCtx, MigrationJob, Placement, PolicyMode, ProvisionPolicy,
};
use crate::report::HptReport;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spottune_cloud::storage::{checkpoint_speed_mbps, transfer_time};
use spottune_cloud::{CloudEvent, CloudProvider, FaultPlan, ObjectStore, VmId};
use spottune_earlycurve::EarlyCurveConfig;
use spottune_market::{MarketPool, PoolSpine, SimDur, SimTime};
use spottune_mlsim::{CurveCache, PerfModel, TrainingRun, Workload};
use std::sync::Arc;

/// One entry of the campaign timeline (the lifecycle of paper Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A configuration was (re)deployed onto an instance.
    Deployed {
        /// Grid index.
        job: usize,
        /// Instance-type name.
        instance: String,
        /// Offered maximum price (the fixed rate for on-demand VMs).
        max_price: f64,
        /// Event time.
        at: SimTime,
    },
    /// Two-minute revocation notice received; checkpoint taken.
    NoticeCheckpoint {
        /// Grid index.
        job: usize,
        /// Event time.
        at: SimTime,
    },
    /// The provider reclaimed the VM; steps settled (free if refunded).
    Revoked {
        /// Grid index.
        job: usize,
        /// Whether the first-hour refund applied.
        free: bool,
        /// Event time.
        at: SimTime,
    },
    /// Proactive one-hour recycle (Algorithm 1 line 31).
    Recycled {
        /// Grid index.
        job: usize,
        /// Event time.
        at: SimTime,
    },
    /// The job finished its phase.
    Finished {
        /// Grid index.
        job: usize,
        /// Why it stopped.
        reason: FinishReason,
        /// Steps completed.
        steps: u64,
        /// Event time.
        at: SimTime,
    },
}

/// Executes one HPT campaign for one workload under a pluggable policy.
#[derive(Debug)]
pub struct Engine {
    config: SpotTuneConfig,
    workload: Workload,
    pool: MarketPool,
    perf_model: PerfModel,
    ec_config: EarlyCurveConfig,
    curve_cache: CurveCache,
    fault_plan: Option<FaultPlan>,
    /// Optional shared per-scenario event spine, handed through to the
    /// transient drive's provider (see [`CloudProvider::with_spine`]).
    spine: Option<Arc<PoolSpine>>,
    /// Optional precomputed seconds-per-step means (the exact value of
    /// [`compute_spe_means`] for this engine's pool and workload), shared
    /// across a scenario group by the batch runner.
    spe_means: Option<Arc<SpeTable>>,
}

impl Engine {
    /// Creates an engine.
    pub fn new(config: SpotTuneConfig, workload: Workload, pool: MarketPool) -> Self {
        config.validate();
        Engine {
            config,
            workload,
            pool,
            perf_model: PerfModel::new(),
            ec_config: EarlyCurveConfig::default(),
            curve_cache: CurveCache::global(),
            fault_plan: None,
            spine: None,
            spe_means: None,
        }
    }

    /// Installs a shared event spine built from this engine's pool: the
    /// transient drive's provider resolves markets and revocation instants
    /// through it instead of re-scanning traces. Bit-identical either way;
    /// wall-clock only.
    pub fn with_spine(mut self, spine: Arc<PoolSpine>) -> Self {
        self.spine = Some(spine);
        self
    }

    /// Installs precomputed per-(market, configuration) step-time means.
    /// Callers must pass exactly [`compute_spe_means`]`(&pool, &workload)`
    /// for this engine's pool and workload — the batch runner derives them
    /// once per (scenario, workload) and shares the `Arc` — so the values
    /// are the ones the engine would have derived itself.
    pub fn with_spe_means(mut self, spe_means: Arc<SpeTable>) -> Self {
        self.spe_means = Some(spe_means);
        self
    }

    /// Installs a seeded fault schedule (correlated revocation storms,
    /// delayed notices, checkpoint upload failures) on the transient
    /// drive's provider. The dedicated drive ignores the plan — its
    /// baselines assume reliable capacity by construction. With no plan
    /// (the default) every campaign is bit-identical to a fault-free
    /// build, and because every injected decision is a pure function of
    /// the plan's seed, the same plan replays bit-identically.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the EarlyCurve configuration.
    pub fn with_earlycurve_config(mut self, ec: EarlyCurveConfig) -> Self {
        self.ec_config = ec;
        self
    }

    /// Routes the training-curve memo through an explicit shared tier
    /// (the server's cross-request tier) instead of the process default.
    /// Curves are pure functions of their key, so the tier choice affects
    /// wall-clock and counters, never results.
    pub fn with_curve_cache(mut self, cache: CurveCache) -> Self {
        self.curve_cache = cache;
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &SpotTuneConfig {
        &self.config
    }

    /// Runs the campaign under `policy` to completion and reports.
    pub fn run(&self, policy: &mut dyn ProvisionPolicy) -> HptReport {
        self.run_with_scratch(policy, &mut EngineScratch::new())
    }

    /// Runs the campaign and additionally returns the event timeline
    /// (deployments, notices, revocations, recycles, finishes — the
    /// lifecycle of paper Fig. 4).
    pub fn run_traced(&self, policy: &mut dyn ProvisionPolicy) -> (HptReport, Vec<TraceEvent>) {
        let mut scratch = EngineScratch::new();
        let report = self.run_with_scratch(policy, &mut scratch);
        (report, std::mem::take(&mut scratch.events))
    }

    /// Runs the campaign reusing `scratch`'s job slots and buffers — the
    /// batched-sweep entry point. The scratch only recycles allocations
    /// (every slot is reset to exactly the fresh-job state), so the report
    /// is bit-identical to [`Engine::run`] with a fresh scratch.
    pub fn run_with_scratch(
        &self,
        policy: &mut dyn ProvisionPolicy,
        scratch: &mut EngineScratch,
    ) -> HptReport {
        scratch.events.clear();
        match policy.mode() {
            PolicyMode::Transient => self.run_transient(policy, scratch),
            PolicyMode::Dedicated => self.run_dedicated(policy, scratch),
        }
    }

    /// The transient drive: Algorithm 1 with the policy consulted at every
    /// deployment, revocation, progress and recycle decision. Staged
    /// through [`TransientExec`] — the serial path runs the stages
    /// back-to-back; the batched sweep's SoA path interleaves many
    /// campaigns' stages around a shared lane-prediction barrier.
    fn run_transient(
        &self,
        policy: &mut dyn ProvisionPolicy,
        scratch: &mut EngineScratch,
    ) -> HptReport {
        let mut exec = TransientExec::new(self, scratch);
        exec.phase1(policy, scratch);
        let predicted = exec.predict_scalar(scratch);
        exec.finish(policy, scratch, predicted, None)
    }

    /// The dedicated drive: one never-revoked VM per configuration, placed
    /// by the policy, trained start-to-finish (the Single-Spot/On-Demand
    /// baseline execution model — θ = 1, no checkpoints, no recycling).
    ///
    /// Kept bit-identical to [`crate::baseline::run_single_spot_with_cache`]
    /// and [`crate::baseline::run_on_demand_with_cache`]: the same
    /// [`DEDICATED_SALT`] seeds the step-time stream, and policies whose
    /// placements match the closed forms reproduce their reports exactly.
    fn run_dedicated(
        &self,
        policy: &mut dyn ProvisionPolicy,
        scratch: &mut EngineScratch,
    ) -> HptReport {
        let cfg = &self.config;
        let start = cfg.start;
        let workload = &self.workload;
        let mut provider = CloudProvider::new(self.pool.clone());
        if let Some(spine) = &self.spine {
            provider = provider.with_spine(Arc::clone(spine));
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ DEDICATED_SALT);
        let matrix = PerfMatrix::new(cfg.c0, cfg.ewma_alpha);
        let warmup = SimDur::from_secs(workload.restore_warmup_secs());

        let events = &mut scratch.events;
        let mut end_latest = start;
        let mut charged_steps = 0u64;
        let mut train_time = SimDur::ZERO;
        let mut finals = Vec::with_capacity(workload.hp_grid().len());
        for (i, hp) in workload.hp_grid().iter().enumerate() {
            let ctx = DeployCtx { t: start, hp_index: i, pool: &self.pool, matrix: &matrix };
            let (vm_id, instance, max_price) = match policy.choose_instance(&ctx, &mut rng) {
                Placement::Spot(choice) => {
                    let id = provider
                        .request_spot(start, &choice.instance, choice.max_price)
                        .unwrap_or_else(|e| panic!("dedicated spot request failed: {e}"));
                    (id, choice.instance, choice.max_price)
                }
                Placement::OnDemand { instance } => {
                    let id = provider
                        .request_on_demand(start, &instance)
                        .unwrap_or_else(|e| panic!("dedicated on-demand request failed: {e}"));
                    let rate = provider.vm(id).expect("vm exists").max_price();
                    (id, instance, rate)
                }
            };
            events.push(TraceEvent::Deployed {
                job: i,
                instance: instance.clone(),
                max_price,
                at: start,
            });
            let vm = provider.vm(vm_id).expect("vm exists");
            let inst = vm.instance().clone();
            let launched = vm.launched_at();
            // Advance the training run to completion, sampling per-step times.
            let mut run = TrainingRun::with_cache(workload, hp, cfg.seed, &self.curve_cache);
            let max = workload.max_trial_steps();
            let mut busy = 0.0f64;
            for k in 1..=max {
                busy += self.perf_model.sample_spe(&inst, workload, hp, &mut rng);
                let _ = run.metric_at(k);
            }
            finals.push(run.final_metric());
            charged_steps += max;
            let busy_dur = SimDur::from_secs(busy.ceil() as u64);
            train_time += busy_dur;
            let end = launched + warmup + busy_dur;
            provider.terminate(end, vm_id);
            events.push(TraceEvent::Finished {
                job: i,
                reason: FinishReason::TargetReached,
                steps: max,
                at: end,
            });
            end_latest = end_latest.max(end);
        }

        let ledger = provider.ledger();
        let true_finals = spottune_mlsim::runner::ground_truth_finals_with_cache(
            workload,
            cfg.seed,
            &self.curve_cache,
        );
        let mut ranking: Vec<usize> = (0..finals.len()).collect();
        ranking.sort_by(|&a, &b| finals[a].partial_cmp(&finals[b]).expect("finite"));
        let report = HptReport {
            approach: policy.name(),
            workload: workload.algorithm().name().to_string(),
            theta: 1.0,
            cost: ledger.total_charged(),
            refunded: ledger.total_refunded(),
            gross: ledger.total_gross(),
            jct: end_latest - start,
            cost_with_continuation: ledger.total_charged(),
            jct_with_continuation: end_latest - start,
            train_time,
            overhead_time: SimDur::from_secs(
                workload.restore_warmup_secs() * workload.hp_grid().len() as u64,
            ),
            free_steps: 0,
            charged_steps,
            predicted_finals: finals,
            true_finals,
            selected: ranking.into_iter().take(cfg.mcnt).collect(),
            deployments: workload.hp_grid().len() as u64,
            revocations: 0,
            lost_steps: 0,
            migrations: 0,
        };
        report
    }

    /// The Algorithm-1 loop; returns the time when every job in the current
    /// phase has finished. Dispatches on the configured [`DriveMode`]: both
    /// strategies execute the identical per-tick body
    /// ([`Self::process_tick`]) at the identical grid instants — the
    /// event-driven drive merely skips the ticks at which nothing can
    /// happen.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &self,
        jobs: &mut [Job],
        t: SimTime,
        provider: &mut CloudProvider,
        store: &mut ObjectStore,
        matrix: &mut PerfMatrix,
        policy: &mut dyn ProvisionPolicy,
        rng: &mut StdRng,
        events: &mut Vec<TraceEvent>,
        spe_means: &[(String, Vec<f64>)],
    ) -> SimTime {
        match self.config.drive_mode {
            DriveMode::Tick => {
                self.drive_tick(jobs, t, provider, store, matrix, policy, rng, events, spe_means)
            }
            DriveMode::Event => {
                self.drive_event(jobs, t, provider, store, matrix, policy, rng, events, spe_means)
            }
        }
    }

    /// Reference implementation: poll every `poll_interval` (Algorithm 1
    /// line 45 — 10 seconds).
    #[allow(clippy::too_many_arguments)]
    fn drive_tick(
        &self,
        jobs: &mut [Job],
        mut t: SimTime,
        provider: &mut CloudProvider,
        store: &mut ObjectStore,
        matrix: &mut PerfMatrix,
        policy: &mut dyn ProvisionPolicy,
        rng: &mut StdRng,
        events: &mut Vec<TraceEvent>,
        spe_means: &[(String, Vec<f64>)],
    ) -> SimTime {
        let poll = self.config.poll_interval;
        // Hard stop: ten simulated weeks — catches scheduling deadlocks in
        // tests rather than hanging.
        let deadline = t + SimDur::from_hours(24 * 70);
        while jobs.iter().any(Job::is_active) {
            assert!(t < deadline, "engine made no progress before deadline");
            t += poll;
            self.process_tick(jobs, t, provider, store, matrix, policy, rng, events, spe_means, false);
        }
        t
    }

    /// Next-event time advance: jump directly to the next grid tick at
    /// which anything can change. Ticks in between only accumulate linear
    /// progress on running jobs, which is applied in one whole-tick
    /// addition (`step_ticks += n`) — integer arithmetic, so the fast path
    /// is bit-identical to polling through the same ticks.
    #[allow(clippy::too_many_arguments)]
    fn drive_event(
        &self,
        jobs: &mut [Job],
        mut t: SimTime,
        provider: &mut CloudProvider,
        store: &mut ObjectStore,
        matrix: &mut PerfMatrix,
        policy: &mut dyn ProvisionPolicy,
        rng: &mut StdRng,
        events: &mut Vec<TraceEvent>,
        spe_means: &[(String, Vec<f64>)],
    ) -> SimTime {
        let poll = self.config.poll_interval;
        let deadline = t + SimDur::from_hours(24 * 70);
        while jobs.iter().any(Job::is_active) {
            assert!(t < deadline, "engine made no progress before deadline");
            let t_next = self.next_event_tick(jobs, t, provider);
            // Quiet ticks in (t, t_next): every running job accumulates one
            // poll interval per tick and nothing else can happen (each
            // state change is a candidate in `next_event_tick`, so none
            // falls strictly inside the span).
            let quiet_end = t_next - poll;
            if quiet_end > t {
                for job in jobs.iter_mut() {
                    if !job.is_active() || job.halted {
                        continue;
                    }
                    let Some(vm_id) = job.assigned else { continue };
                    // An assigned VM is always alive between event ticks:
                    // revocations settle the job at their (visited) tick,
                    // and no event fires inside a quiet span.
                    debug_assert!(
                        provider.vm(vm_id).is_some_and(spottune_cloud::Vm::is_alive),
                        "assigned vm must be alive across a quiet span"
                    );
                    let first = job.ready_tick.max(t + poll);
                    if first <= quiet_end {
                        let n = (quiet_end.as_secs() - first.as_secs()) / poll.as_secs() + 1;
                        job.step_ticks += n;
                        job.train_time += SimDur::from_secs(poll.as_secs() * n);
                    }
                }
            }
            // Sub-poll notice delivery: a notice scheduled strictly inside
            // (t, t_next) sits off the poll grid — waiting for the next
            // grid tick would collapse its grace window (a 1–9 s lead
            // lands on the revocation tick itself, grace zero). Deliver
            // it at its true instant instead. Grid-aligned notices have
            // `at == t_next` (the agenda entry is a `next_event_tick`
            // candidate) and keep flowing through the regular tick body,
            // which is what keeps this drive bit-identical to the tick
            // drive whenever leads land on the grid. Safe mid-span: grid
            // ticks in (t, t_next) all precede the notice instant, so the
            // quiet-span accumulation above already credited every tick
            // the job ran before it halts here.
            while let Some(at) = provider.next_notice_at() {
                if at <= t || at >= t_next {
                    break;
                }
                for event in provider.poll_notices(at) {
                    if let CloudEvent::RevocationNotice { vm, grace, .. } = event {
                        self.handle_notice(jobs, vm, grace, at, provider, store, policy, events);
                    }
                }
            }
            t = t_next;
            self.process_tick(jobs, t, provider, store, matrix, policy, rng, events, spe_means, true);
        }
        t
    }

    /// Earliest grid tick strictly after `t` at which the tick body can do
    /// anything beyond linear progress accumulation: a cloud notice or
    /// revocation, a job's next step completing, a restore finishing (the
    /// first tick a fresh VM executes — and samples its seconds-per-step),
    /// the one-hour recycle deadline, or a deploy retry for a waiting job.
    fn next_event_tick(&self, jobs: &[Job], t: SimTime, provider: &CloudProvider) -> SimTime {
        let poll = self.config.poll_interval;
        let floor = t + poll;
        let mut next: Option<SimTime> = None;
        let mut consider = |cand: SimTime| {
            let c = cand.max(floor);
            next = Some(next.map_or(c, |n| n.min(c)));
        };
        if let Some(at) = provider.next_event_at() {
            consider(self.tick_at_or_after(at));
        }
        for job in jobs {
            if !job.is_active() {
                continue;
            }
            if job.assigned.is_none() {
                // Waiting for a VM: the deploy stage retries every tick.
                consider(floor);
                continue;
            }
            if job.halted {
                // Checkpointed, waiting for the pending revocation — the
                // provider agenda already carries that instant.
                continue;
            }
            // Candidates are maintained incrementally: `recycle_tick` and
            // `ready_tick` at deployment, `step_complete_tick` whenever a
            // step time is sampled — so the scan is a handful of compares
            // per job. On-demand VMs are never recycled (no refund to
            // harvest), so their recycle candidate is skipped.
            if job.recyclable {
                consider(job.recycle_tick);
            }
            match job.current_spe {
                None => consider(job.ready_tick),
                Some(_) => consider(job.step_complete_tick),
            }
        }
        next.unwrap_or(floor)
    }

    /// Grid tick at which the in-flight step of `job` completes, given the
    /// job accumulates one poll interval per tick from `t` on: the smallest
    /// `n ≥ 1` with `carry + (ticks + n)·poll ≥ spe`. The f64 estimate is
    /// corrected against the exact tick-loop predicate (monotone in `n`)
    /// to rule out rounding disagreements with the reference drive.
    fn step_completion_tick(&self, job: &Job, spe: f64, t: SimTime) -> SimTime {
        let poll = self.config.poll_interval;
        let poll_secs = poll.as_secs_f64();
        let progress = |n: u64| job.step_carry + (job.step_ticks + n) as f64 * poll_secs;
        let done = (job.step_ticks as f64).mul_add(poll_secs, job.step_carry);
        let mut n = (((spe - done) / poll_secs).ceil()).max(1.0) as u64;
        while progress(n) < spe {
            n += 1;
        }
        while n > 1 && progress(n - 1) >= spe {
            n -= 1;
        }
        SimTime::from_secs(t.as_secs() + n * poll.as_secs())
    }

    /// First grid tick at or after `x` (grid: `start + k·poll_interval`).
    fn tick_at_or_after(&self, x: SimTime) -> SimTime {
        let s = self.config.start.as_secs();
        let p = self.config.poll_interval.as_secs();
        let rel = x.as_secs().saturating_sub(s);
        SimTime::from_secs(s + rel.div_ceil(p) * p)
    }

    /// First grid tick strictly after `x`.
    fn tick_after(&self, x: SimTime) -> SimTime {
        let s = self.config.start.as_secs();
        let p = self.config.poll_interval.as_secs();
        let rel = x.as_secs().saturating_sub(s);
        SimTime::from_secs(s + (rel / p + 1) * p)
    }

    /// One full iteration of the Algorithm-1 loop body at tick `t`: cloud
    /// events, job progress, proactive recycling, (re)deployment. Shared
    /// between the tick-driven and event-driven drives.
    ///
    /// With `short_circuit` set (the event drive), a running job whose
    /// in-flight step cannot complete at this tick is advanced without
    /// touching its VM's instance or entering the step loop — a pure
    /// skip of work that would change no state, so both settings evolve
    /// the simulation identically. The reference tick drive passes `false`
    /// and pays the seed implementation's full per-tick cost, which is
    /// exactly the baseline the event drive is benchmarked against.
    #[allow(clippy::too_many_arguments)]
    fn process_tick(
        &self,
        jobs: &mut [Job],
        t: SimTime,
        provider: &mut CloudProvider,
        store: &mut ObjectStore,
        matrix: &mut PerfMatrix,
        policy: &mut dyn ProvisionPolicy,
        rng: &mut StdRng,
        events: &mut Vec<TraceEvent>,
        spe_means: &[(String, Vec<f64>)],
        short_circuit: bool,
    ) {
        let poll = self.config.poll_interval;
        let poll_secs = poll.as_secs_f64();
        {
            // (1) Cloud events: notices and revocations. The reference
            // drive polls the way the original implementation did — a scan
            // over every VM — while the event drive reads the agenda; both
            // return identical event sequences.
            let cloud_events = if short_circuit {
                provider.poll(t)
            } else {
                provider.poll_scan(t)
            };
            for event in cloud_events {
                match event {
                    CloudEvent::RevocationNotice { vm, grace, .. } => {
                        self.handle_notice(jobs, vm, grace, t, provider, store, policy, events);
                    }
                    CloudEvent::Revoked { vm, .. } => {
                        if let Some(job) = job_on_vm(jobs, vm) {
                            job.revocations += 1;
                            let was_free = provider
                                .ledger()
                                .records()
                                .iter()
                                .rev()
                                .find(|r| r.vm == vm)
                                .map(|r| r.was_free())
                                .unwrap_or(false);
                            job.settle_vm_steps(was_free);
                            // Fall back to whatever the grace window
                            // actually captured; steps past it are lost
                            // and re-executed on the next placement. A
                            // revocation with no preceding notice (a
                            // zero-grace storm) keeps everything only if
                            // the last durable checkpoint covers it.
                            let captured = job.pending_capture.take().unwrap_or(job.steps_done);
                            job.roll_back_to(captured);
                            let hp_index = job.hp_index;
                            events.push(TraceEvent::Revoked { job: hp_index, free: was_free, at: t });
                            policy.on_revocation(hp_index, t);
                        }
                    }
                }
            }

            // (2) Advance running jobs by one poll interval.
            for job in jobs.iter_mut() {
                if !job.is_active() || job.halted {
                    continue;
                }
                let Some(vm_id) = job.assigned else { continue };
                let vm = if short_circuit {
                    // Event drive: gate on the cached grid candidates (an
                    // assigned VM is always alive at a visited tick after
                    // stage 1, and `t < ready_tick ⟺ t < exec_ready_at`
                    // on the grid), and short-circuit entirely — without
                    // touching the VM — when the in-flight step cannot
                    // complete this tick. Pure skips of no-op work, so both
                    // settings evolve the simulation identically.
                    if t < job.ready_tick {
                        continue;
                    }
                    job.step_ticks += 1;
                    job.train_time += poll;
                    if let Some(spe) = job.current_spe {
                        if job.step_carry + job.step_ticks as f64 * poll_secs < spe {
                            continue;
                        }
                    }
                    provider.vm(vm_id).expect("assigned vm exists")
                } else {
                    // Reference drive: the original per-tick body.
                    let vm = provider.vm(vm_id).expect("assigned vm exists");
                    if !vm.is_alive() || t < job.exec_ready_at {
                        continue;
                    }
                    job.step_ticks += 1;
                    job.train_time += poll;
                    vm
                };
                let inst = vm.instance().clone();
                loop {
                    let spe = *job.current_spe.get_or_insert_with(|| {
                        let mean = spe_means
                            .iter()
                            .find(|(name, _)| name == inst.name())
                            .map(|(_, means)| means[job.hp_index])
                            .unwrap_or_else(|| {
                                self.perf_model.true_spe(&inst, &self.workload, &job.hp)
                            });
                        PerfModel::sample_with_mean(mean, rng)
                    });
                    let progress = job.step_carry + job.step_ticks as f64 * poll_secs;
                    if progress < spe {
                        break;
                    }
                    job.step_carry = progress - spe;
                    job.step_ticks = 0;
                    job.current_spe = None;
                    job.steps_done += 1;
                    job.steps_on_vm += 1;
                    let metric = job.run.metric_at(job.steps_done);
                    job.curve.push(job.steps_done, metric);
                    matrix.observe(&inst, job.hp_index, spe);
                    policy.on_progress(job.hp_index, job.steps_done, t);
                    // Finish conditions: target reached, or plateau.
                    if job.steps_done >= job.target_steps {
                        job.finished = Some(FinishReason::TargetReached);
                    } else if job.curve.converged() {
                        job.finished = Some(FinishReason::ConvergedEarly);
                    }
                    if let Some(reason) = job.finished {
                        let size = job.model_size_mb;
                        let dur = store.put(&job.ckpt_key, size, &inst);
                        job.overhead += dur;
                        job.durable_steps = job.steps_done;
                        let record = provider.terminate(t, vm_id);
                        job.settle_vm_steps(record.was_free());
                        events.push(TraceEvent::Finished {
                            job: job.hp_index,
                            reason,
                            steps: job.steps_done,
                            at: t,
                        });
                        break;
                    }
                }
                // Maintain the cached step-completion candidate (only the
                // event drive reads it; the reference drive stays cost-
                // faithful to the original loop and skips the upkeep).
                if short_circuit && job.finished.is_none() {
                    if let Some(spe) = job.current_spe {
                        job.step_complete_tick = self.step_completion_tick(job, spe, t);
                    }
                }
            }

            // (3) One-hour proactive recycle (Algorithm 1 line 31). Spot
            // only: an on-demand VM never refunds, so there is nothing to
            // harvest by churning it.
            for job in jobs.iter_mut() {
                if !job.is_active() || job.halted || !job.recyclable {
                    continue;
                }
                let Some(vm_id) = job.assigned else { continue };
                // Event drive: `t < recycle_tick ⟺ the strict one-hour
                // comparison below is false`, so skip without the lookup.
                if short_circuit && t < job.recycle_tick {
                    continue;
                }
                let vm = provider.vm(vm_id).expect("assigned vm exists");
                if !vm.is_alive() {
                    continue;
                }
                let age = t.since(vm.launched_at());
                if age > self.config.reschedule_after && policy.should_checkpoint(job.hp_index, age)
                {
                    let inst = vm.instance().clone();
                    let size = job.model_size_mb;
                    if provider
                        .fault_plan()
                        .is_some_and(|p| p.checkpoint_fails(job.hp_index, t))
                    {
                        // Injected write failure: the upload time is burned,
                        // the VM keeps running, and the recycle retries at a
                        // later tick (a different instant hashes to a fresh
                        // fault draw).
                        job.overhead += transfer_time(&inst, size);
                        continue;
                    }
                    let dur = store.put(&job.ckpt_key, size, &inst);
                    job.overhead += dur;
                    job.durable_steps = job.steps_done;
                    let record = provider.terminate(t, vm_id);
                    job.settle_vm_steps(record.was_free());
                    events.push(TraceEvent::Recycled { job: job.hp_index, at: t });
                }
            }

            // (4) (Re)deploy waiting jobs (Algorithm 1 lines 38–44). The
            // whole displaced batch is first offered to the policy's joint
            // migration matcher; policies without one (the default) fall
            // through to the historical per-job loop, bit for bit.
            let waiting: Vec<MigrationJob> = jobs
                .iter()
                .filter(|j| j.is_waiting())
                .map(|j| MigrationJob {
                    hp_index: j.hp_index,
                    remaining_steps: j.target_steps.saturating_sub(j.steps_done),
                })
                .collect();
            let batch = if waiting.is_empty() {
                None
            } else {
                let ctx = MigrationCtx { t, pool: &self.pool, matrix };
                policy.assign_migrations(&waiting, &ctx)
            };
            match batch {
                Some(placements) => {
                    assert_eq!(
                        placements.len(),
                        waiting.len(),
                        "assign_migrations must return one placement per displaced job"
                    );
                    for (mjob, placement) in waiting.iter().zip(placements) {
                        let job = jobs
                            .iter_mut()
                            .find(|j| j.hp_index == mjob.hp_index)
                            .expect("waiting job exists");
                        if self.deploy_with_placement(job, placement, t, provider, store, events) {
                            job.migrations += 1;
                        }
                    }
                }
                None => {
                    for job in jobs.iter_mut() {
                        if !job.is_waiting() {
                            continue;
                        }
                        let ctx =
                            DeployCtx { t, hp_index: job.hp_index, pool: &self.pool, matrix };
                        let placement = policy.choose_instance(&ctx, rng);
                        self.deploy_with_placement(job, placement, t, provider, store, events);
                    }
                }
            }
        }
    }

    /// Reacts to one revocation notice: halt the job and checkpoint inside
    /// the grace window (§IV.F). The window is bandwidth-limited — only
    /// `upload speed × grace` MB can leave the VM before it disappears.
    /// Under the default two-minute notice every model fits whole
    /// (`frac ≥ 1`); fault-delayed notices shrink the window and force the
    /// policy to choose between a truncated partial capture and abandoning
    /// the upload. Shared between the grid-tick poll and the event drive's
    /// sub-poll true-instant delivery.
    #[allow(clippy::too_many_arguments)]
    fn handle_notice(
        &self,
        jobs: &mut [Job],
        vm: VmId,
        grace: SimDur,
        t: SimTime,
        provider: &CloudProvider,
        store: &mut ObjectStore,
        policy: &mut dyn ProvisionPolicy,
        events: &mut Vec<TraceEvent>,
    ) {
        let Some(job) = job_on_vm(jobs, vm) else { return };
        if job.halted {
            return;
        }
        job.halted = true;
        let vm_ref = provider.vm(vm).expect("vm exists");
        let inst = vm_ref.instance().clone();
        let age = t.since(vm_ref.launched_at());
        let size = job.model_size_mb;
        let frac = if size > 0.0 {
            checkpoint_speed_mbps(&inst) * grace.as_secs_f64() / size
        } else {
            f64::INFINITY
        };
        // A notice is a revocation regardless of VM age, so
        // `should_checkpoint` is consulted here unconditionally (unlike the
        // recycle gate, which only fires past the one-hour threshold).
        let plan = if policy.should_checkpoint(job.hp_index, age) {
            policy.plan_checkpoint(job.hp_index, frac)
        } else {
            CheckpointPlan::Abandon
        };
        let fails = provider
            .fault_plan()
            .is_some_and(|p| p.checkpoint_fails(job.hp_index, t));
        let captured = match plan {
            CheckpointPlan::Full if frac >= 1.0 && !fails => {
                let dur = store.put(&job.ckpt_key, size, &inst);
                debug_assert!(
                    dur <= grace || size <= 0.0,
                    "full checkpoint must fit the window"
                );
                job.overhead += dur;
                events.push(TraceEvent::NoticeCheckpoint { job: job.hp_index, at: t });
                job.durable_steps = job.steps_done;
                job.steps_done
            }
            CheckpointPlan::Full if frac >= 1.0 => {
                // Injected upload failure: the transfer time is burned, the
                // old checkpoint survives.
                job.overhead += transfer_time(&inst, size);
                job.durable_steps
            }
            CheckpointPlan::Full => {
                // Window too short for the whole model: the upload is cut
                // off at revocation — the window is burned and nothing
                // durable is written.
                job.overhead += grace;
                job.durable_steps
            }
            CheckpointPlan::Partial(f) => {
                let f = f.min(frac).clamp(0.0, 1.0);
                let bytes = f * size;
                if bytes <= 0.0 {
                    job.durable_steps
                } else if fails {
                    job.overhead += transfer_time(&inst, bytes);
                    job.durable_steps
                } else {
                    let dur = store.put(&job.ckpt_key, bytes, &inst);
                    job.overhead += dur;
                    events.push(TraceEvent::NoticeCheckpoint { job: job.hp_index, at: t });
                    // A fraction of the bytes holds a fraction of the
                    // uncaptured work.
                    let delta = job.steps_done - job.durable_steps;
                    let captured = job.durable_steps + (f * delta as f64).floor() as u64;
                    job.durable_steps = captured;
                    captured
                }
            }
            CheckpointPlan::Abandon => job.durable_steps,
        };
        job.pending_capture = Some(captured);
    }

    /// Executes one placement decision for a waiting job: request the VM,
    /// account restore/warmup, cache the event-drive tick candidates, and
    /// emit the `Deployed` event. Returns `false` when a spot request
    /// failed because the price moved above the offer (the job stays
    /// waiting and retries next poll).
    fn deploy_with_placement(
        &self,
        job: &mut Job,
        placement: Placement,
        t: SimTime,
        provider: &mut CloudProvider,
        store: &mut ObjectStore,
        events: &mut Vec<TraceEvent>,
    ) -> bool {
        let (vm_id, instance, max_price) = match placement {
            Placement::Spot(choice) => {
                let Ok(id) = provider.request_spot(t, &choice.instance, choice.max_price) else {
                    return false; // price moved above the offer; retry next poll
                };
                (id, choice.instance, choice.max_price)
            }
            Placement::OnDemand { instance } => {
                let id = provider
                    .request_on_demand(t, &instance)
                    .unwrap_or_else(|e| panic!("on-demand placement failed: {e}"));
                let rate = provider.vm(id).expect("vm exists").max_price();
                (id, instance, rate)
            }
        };
        let vm = provider.vm(vm_id).expect("vm exists");
        let inst = vm.instance().clone();
        let mut restore = SimDur::from_secs(self.workload.restore_warmup_secs());
        if let Some((_, dur)) = store.get(&job.ckpt_key, &inst) {
            restore += dur;
        }
        job.exec_ready_at = vm.launched_at() + restore;
        job.ready_tick = self.tick_at_or_after(job.exec_ready_at);
        job.recyclable = vm.is_spot();
        job.recycle_tick = self.tick_after(vm.launched_at() + self.config.reschedule_after);
        job.overhead += restore;
        job.assigned = Some(vm_id);
        job.deployments += 1;
        events.push(TraceEvent::Deployed { job: job.hp_index, instance, max_price, at: t });
        true
    }
}

/// One transient campaign staged into its Algorithm-1 phases, so callers
/// can interpose between phase 1 and selection. [`Engine::run`] composes
/// the stages sequentially; the batched sweep's SoA path
/// ([`crate::soa`]) runs phase 1 for a whole cohort of campaigns, batches
/// every cohort job's final-metric extrapolation through the cross-campaign
/// lane kernel, and only then finishes each campaign — the same operations
/// in the same per-campaign order, so reports stay bit-identical.
///
/// The exec owns the campaign's mutable machinery (provider, store,
/// matrix, decision RNG, clock); job state lives in the caller's
/// [`EngineScratch`], which must be the same scratch across every stage
/// of one exec.
pub(crate) struct TransientExec<'e> {
    engine: &'e Engine,
    provider: CloudProvider,
    store: ObjectStore,
    matrix: PerfMatrix,
    rng: StdRng,
    t: SimTime,
    /// Full-training step target (the prediction horizon and phase-2 goal).
    pub(crate) max_steps: u64,
    /// SPE table derived locally when the engine was not handed a shared
    /// one (see [`Engine::with_spe_means`]).
    derived_spe: Option<SpeTable>,
}

impl<'e> TransientExec<'e> {
    /// Sets up one campaign: provider (with spine/fault overlays), fresh
    /// store/matrix/RNG, job slots prepared in `scratch`, SPE means
    /// resolved. Identical construction order to the historical inline
    /// `run_transient` body.
    pub(crate) fn new(engine: &'e Engine, scratch: &mut EngineScratch) -> Self {
        let cfg = &engine.config;
        let max_steps = engine.workload.max_trial_steps();
        let target = cfg.target_steps(max_steps);

        let mut provider = CloudProvider::new(engine.pool.clone());
        if let Some(plan) = &engine.fault_plan {
            provider = provider.with_fault_plan(plan.clone());
        }
        if let Some(spine) = &engine.spine {
            provider = provider.with_spine(Arc::clone(spine));
        }
        let store = ObjectStore::new();
        let matrix = PerfMatrix::new(cfg.c0, cfg.ewma_alpha);
        let rng = StdRng::seed_from_u64(cfg.seed ^ ORCH_SALT);
        scratch.events.clear();
        scratch.arena.prepare(
            &engine.workload,
            target,
            engine.ec_config,
            cfg.seed,
            &engine.curve_cache,
        );
        // True seconds-per-step means per (market, configuration): the
        // model is deterministic, so derive it once per campaign instead of
        // hashing names and re-reading string-keyed hyper-parameters on
        // every sampled step — or once per (scenario, workload) when the
        // batch runner shares them via `with_spe_means`.
        let derived_spe = match &engine.spe_means {
            Some(_) => None,
            None => Some(compute_spe_means(&engine.pool, &engine.workload)),
        };
        TransientExec {
            engine,
            provider,
            store,
            matrix,
            rng,
            t: cfg.start,
            max_steps,
            derived_spe,
        }
    }

    /// Phase 1: every configuration to θ·max_trial_steps.
    pub(crate) fn phase1(&mut self, policy: &mut dyn ProvisionPolicy, scratch: &mut EngineScratch) {
        let engine = self.engine;
        let EngineScratch { arena, events } = scratch;
        let jobs = arena.slots_mut();
        let spe_means: &[(String, Vec<f64>)] = match (&engine.spe_means, &self.derived_spe) {
            (Some(shared), _) => shared,
            (None, Some(derived)) => derived,
            (None, None) => unreachable!("derived at construction"),
        };
        self.t = engine.drive(
            jobs,
            self.t,
            &mut self.provider,
            &mut self.store,
            &mut self.matrix,
            policy,
            &mut self.rng,
            events,
            spe_means,
        );
    }

    /// The scalar prediction stage (Algorithm 1 line 50): one final-metric
    /// extrapolation per job. The lane path computes exactly these values
    /// through [`spottune_earlycurve::CurveLanes`] instead.
    pub(crate) fn predict_scalar(&self, scratch: &EngineScratch) -> Vec<f64> {
        let cfg = &self.engine.config;
        scratch
            .arena
            .slots()
            .iter()
            .map(|j| {
                let last = j.last_metric().unwrap_or(f64::INFINITY);
                if cfg.theta >= 1.0 || j.finished == Some(FinishReason::ConvergedEarly) {
                    last
                } else {
                    j.curve.predict_final(self.max_steps).unwrap_or(last)
                }
            })
            .collect()
    }

    /// Selection, phase 2 (top-`mcnt` continuation) and the report.
    /// `predicted` must be this exec's prediction vector (scalar or lane —
    /// they are bit-identical). `true_finals`, when supplied, must be the
    /// campaign's ground-truth finals (a pure function of `(workload,
    /// seed)` — the cohort path shares one memoized copy per key instead
    /// of re-deriving it per campaign).
    pub(crate) fn finish(
        mut self,
        policy: &mut dyn ProvisionPolicy,
        scratch: &mut EngineScratch,
        predicted: Vec<f64>,
        true_finals: Option<Vec<f64>>,
    ) -> HptReport {
        let engine = self.engine;
        let cfg = &engine.config;
        let max_steps = self.max_steps;
        let EngineScratch { arena, events } = scratch;
        let jobs = arena.slots_mut();

        // ---- Selection (Algorithm 1 lines 48–53). ----
        let mut ranking: Vec<usize> = (0..jobs.len()).collect();
        ranking.sort_by(|&a, &b| predicted[a].partial_cmp(&predicted[b]).expect("finite"));
        let selected: Vec<usize> = ranking.iter().take(cfg.mcnt).copied().collect();

        // Paper-reported cost/JCT end at model selection (§IV.B.1).
        let selection_cost = self.provider.ledger().total_charged();
        let selection_refunded = self.provider.ledger().total_refunded();
        let selection_gross = self.provider.ledger().total_gross();
        let selection_jct = self.t - cfg.start;

        // ---- Phase 2: continue the top-mcnt from checkpoints. ----
        if cfg.theta < 1.0 {
            for &i in &selected {
                let job = &mut jobs[i];
                if job.finished == Some(FinishReason::TargetReached) && job.steps_done < max_steps
                {
                    job.finished = None;
                    job.target_steps = max_steps;
                }
            }
            let spe_means: &[(String, Vec<f64>)] = match (&engine.spe_means, &self.derived_spe) {
                (Some(shared), _) => shared,
                (None, Some(derived)) => derived,
                (None, None) => unreachable!("derived at construction"),
            };
            self.t = engine.drive(
                jobs,
                self.t,
                &mut self.provider,
                &mut self.store,
                &mut self.matrix,
                policy,
                &mut self.rng,
                events,
                spe_means,
            );
        }

        // ---- Report. ----
        let true_finals = true_finals.unwrap_or_else(|| {
            spottune_mlsim::runner::ground_truth_finals_with_cache(
                &engine.workload,
                cfg.seed,
                &engine.curve_cache,
            )
        });
        let ledger = self.provider.ledger();
        HptReport {
            approach: policy.name(),
            workload: engine.workload.algorithm().name().to_string(),
            theta: cfg.theta,
            cost: selection_cost,
            refunded: selection_refunded,
            gross: selection_gross,
            jct: selection_jct,
            cost_with_continuation: ledger.total_charged(),
            jct_with_continuation: self.t - cfg.start,
            train_time: sum_dur(jobs.iter().map(|j| j.train_time)),
            overhead_time: sum_dur(jobs.iter().map(|j| j.overhead)),
            free_steps: jobs.iter().map(|j| j.free_steps).sum(),
            charged_steps: jobs.iter().map(|j| j.charged_steps).sum(),
            predicted_finals: predicted,
            true_finals,
            selected,
            deployments: jobs.iter().map(|j| j.deployments).sum(),
            revocations: jobs.iter().map(|j| j.revocations).sum(),
            lost_steps: jobs.iter().map(|j| j.lost_steps).sum(),
            migrations: jobs.iter().map(|j| j.migrations).sum(),
        }
    }

    /// θ of the campaign's configuration (the lane gather needs the
    /// take-last gate).
    pub(crate) fn theta(&self) -> f64 {
        self.engine.config.theta
    }
}

/// Per-market rows of per-configuration true seconds-per-step means —
/// the table [`compute_spe_means`] produces and
/// [`Engine::with_spe_means`] accepts.
pub type SpeTable = Vec<(String, Vec<f64>)>;

/// The per-(market, configuration) true seconds-per-step means the
/// transient drive samples around. A pure function of `(pool, workload)` —
/// the batch runner computes it once per (scenario, workload) pair and
/// shares it via [`Engine::with_spe_means`]; a lone engine derives it
/// per campaign.
pub fn compute_spe_means(pool: &MarketPool, workload: &Workload) -> SpeTable {
    let perf_model = PerfModel::new();
    pool.iter()
        .map(|m| {
            let inst = m.instance();
            let means = workload
                .hp_grid()
                .iter()
                .map(|hp| perf_model.true_spe(inst, workload, hp))
                .collect();
            (inst.name().to_string(), means)
        })
        .collect()
}

fn job_on_vm(jobs: &mut [Job], vm: VmId) -> Option<&mut Job> {
    jobs.iter_mut().find(|j| j.assigned == Some(vm))
}

fn sum_dur(durs: impl Iterator<Item = SimDur>) -> SimDur {
    durs.fold(SimDur::ZERO, |acc, d| acc + d)
}

/// Seed salt for the transient drive's decision-stream RNG (kept from the
/// pre-policy-layer orchestrator so reports stay bit-identical).
const ORCH_SALT: u64 = 0x0c_5a17;

/// Seed salt for the dedicated drive's step-time RNG. Must match the salt
/// in [`crate::baseline`]'s closed-form references — the policy-layer
/// equivalence tests compare the two paths report-for-report.
pub(crate) const DEDICATED_SALT: u64 = 0xba5e;
