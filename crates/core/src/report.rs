//! Campaign reports: cost, JCT, PCR, refund attribution and selection
//! accuracy — everything Figs. 7–9 and 12 plot.

use serde::{Deserialize, Serialize};
use spottune_market::SimDur;

/// Outcome of one HPT campaign (SpotTune or a baseline).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HptReport {
    /// Approach label, e.g. `"SpotTune(θ=0.7)"`.
    pub approach: String,
    /// Workload name, e.g. `"ResNet"`.
    pub workload: String,
    /// θ used.
    pub theta: f64,
    /// Net cost actually charged up to model selection, USD. This is the
    /// paper's reported cost: "JCT is defined as the time span from the HPT
    /// job submission to selecting the best model(s)" (§IV.B.1), and the
    /// quoted savings track the θ-reduced step counts, so both cost and JCT
    /// cover phase 1 + selection.
    pub cost: f64,
    /// Amount refunded by first-hour revocations (phase 1), USD.
    pub refunded: f64,
    /// Gross spend before refunds (phase 1), USD.
    pub gross: f64,
    /// Job completion time: submission → best model(s) selected.
    pub jct: SimDur,
    /// Net cost including the top-`mcnt` continuation (Algorithm 1 line 53).
    pub cost_with_continuation: f64,
    /// Wall time including the continuation phase.
    pub jct_with_continuation: SimDur,
    /// Total execution time across jobs.
    pub train_time: SimDur,
    /// Total checkpoint/restore/warmup time across jobs.
    pub overhead_time: SimDur,
    /// Steps that ran on refunded (free) VM hours.
    pub free_steps: u64,
    /// Steps billed normally.
    pub charged_steps: u64,
    /// Per-configuration predicted final metrics (grid order).
    pub predicted_finals: Vec<f64>,
    /// Per-configuration ground-truth final metrics (grid order).
    pub true_finals: Vec<f64>,
    /// Indices selected for continuation (best-first).
    pub selected: Vec<usize>,
    /// Total VM deployments.
    pub deployments: u64,
    /// Total provider revocations.
    pub revocations: u64,
    /// Steps rolled back after failed/partial/abandoned grace-window
    /// checkpoints (re-executed later). Zero under fault-free defaults.
    pub lost_steps: u64,
    /// Redeployments routed through a policy's batch migration matcher.
    pub migrations: u64,
}

impl HptReport {
    /// Performance-cost rate `α / (JCT · cost)` with α = 1 (paper Fig. 7(c)
    /// normalizes per benchmark; use [`HptReport::pcr_normalized`]).
    pub fn pcr(&self) -> f64 {
        let hours = self.jct.as_hours_f64().max(1e-6);
        let cost = self.cost.max(1e-6);
        1.0 / (hours * cost)
    }

    /// PCR normalized so that `reference` is 1.0.
    pub fn pcr_normalized(&self, reference: &HptReport) -> f64 {
        self.pcr() / reference.pcr()
    }

    /// Fraction of steps that ran for free (paper Fig. 9(a)).
    pub fn free_step_fraction(&self) -> f64 {
        let total = self.free_steps + self.charged_steps;
        if total == 0 {
            return 0.0;
        }
        self.free_steps as f64 / total as f64
    }

    /// Refund as a fraction of gross spend (paper Fig. 9(b)).
    pub fn refund_fraction(&self) -> f64 {
        if self.gross <= 0.0 {
            return 0.0;
        }
        self.refunded / self.gross
    }

    /// Checkpoint-restore share of total busy time (paper Fig. 12).
    pub fn overhead_fraction(&self) -> f64 {
        let busy = self.train_time.as_secs_f64() + self.overhead_time.as_secs_f64();
        if busy <= 0.0 {
            return 0.0;
        }
        self.overhead_time.as_secs_f64() / busy
    }

    /// Index of the true best configuration (lowest final metric).
    pub fn true_best(&self) -> usize {
        argmin(&self.true_finals)
    }

    /// Indices of the predicted ranking, best first.
    pub fn predicted_ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.predicted_finals.len()).collect();
        idx.sort_by(|&a, &b| {
            self.predicted_finals[a]
                .partial_cmp(&self.predicted_finals[b])
                .expect("finite metrics")
        });
        idx
    }

    /// Top-1 accuracy: the predicted best is the true best (Fig. 8(c)).
    pub fn top1_hit(&self) -> bool {
        self.predicted_ranking().first() == Some(&self.true_best())
    }

    /// Top-3 accuracy: the true best is within the predicted top 3.
    pub fn top3_hit(&self) -> bool {
        let best = self.true_best();
        self.predicted_ranking().iter().take(3).any(|&i| i == best)
    }

    /// One-line summary for figure harness output.
    pub fn summary(&self) -> String {
        format!(
            "{:<22} {:<8} cost=${:<8.3} refund=${:<8.3} jct={:<8} pcr={:<10.3} free={:>5.1}% ckpt={:>4.1}% top1={} top3={}",
            self.approach,
            self.workload,
            self.cost,
            self.refunded,
            format!("{}", self.jct),
            self.pcr(),
            100.0 * self.free_step_fraction(),
            100.0 * self.overhead_fraction(),
            self.top1_hit() as u8,
            self.top3_hit() as u8,
        )
    }
}

fn argmin(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite metrics"))
        .map(|(i, _)| i)
        .expect("non-empty metrics")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> HptReport {
        HptReport {
            approach: "SpotTune(θ=0.7)".into(),
            workload: "LoR".into(),
            theta: 0.7,
            cost: 2.0,
            refunded: 1.0,
            gross: 3.0,
            jct: SimDur::from_hours(4),
            cost_with_continuation: 2.5,
            jct_with_continuation: SimDur::from_hours(5),
            train_time: SimDur::from_hours(40),
            overhead_time: SimDur::from_hours(2),
            free_steps: 750,
            charged_steps: 250,
            predicted_finals: vec![0.3, 0.1, 0.2],
            true_finals: vec![0.35, 0.12, 0.11],
            selected: vec![1, 2],
            deployments: 20,
            revocations: 12,
            lost_steps: 0,
            migrations: 0,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.pcr() - 1.0 / 8.0).abs() < 1e-9);
        assert_eq!(r.free_step_fraction(), 0.75);
        assert!((r.refund_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert!((r.overhead_fraction() - 2.0 / 42.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_and_accuracy() {
        let r = report();
        assert_eq!(r.predicted_ranking(), vec![1, 2, 0]);
        assert_eq!(r.true_best(), 2);
        assert!(!r.top1_hit()); // predicted best = 1, true best = 2
        assert!(r.top3_hit());
    }

    #[test]
    fn normalization_against_reference() {
        let a = report();
        let mut b = report();
        b.cost = 4.0; // half the PCR
        assert!((b.pcr_normalized(&a) - 0.5).abs() < 1e-12);
        assert_eq!(a.pcr_normalized(&a), 1.0);
    }

    #[test]
    fn summary_is_nonempty_and_labeled() {
        let s = report().summary();
        assert!(s.contains("SpotTune"));
        assert!(s.contains("LoR"));
    }
}
