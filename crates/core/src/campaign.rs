//! One campaign as a first-class, schedulable unit of work.
//!
//! A *campaign* is a single HPT evaluation point: an approach (SpotTune at
//! some θ, or a Single-Spot baseline) applied to one workload over one
//! market pool with one seed. The figure binaries, the rayon fan-outs and
//! the sharded campaign server all funnel through [`Campaign::run`], so a
//! sweep scheduled any way — serially, across cores, across a worker pool —
//! produces bit-identical [`HptReport`]s.
//!
//! [`CampaignRequest`]/[`CampaignResponse`] are the serializable wire
//! types of the campaign server: requests name their market environment by
//! [`MarketScenario`] (a key into the server's shared pool tier) instead
//! of shipping price traces.

use crate::baseline::{run_single_spot_with_cache, SingleSpotKind};
use crate::config::SpotTuneConfig;
use crate::orchestrator::Orchestrator;
use crate::provision::OracleEstimator;
use crate::report::HptReport;
use serde::{Deserialize, Serialize};
use spottune_market::{MarketPool, MarketScenario};
use spottune_mlsim::{CurveCache, Workload};

/// The approaches of paper Fig. 7 (SpotTune and the Single-Spot baselines).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Approach {
    /// SpotTune with the given θ.
    SpotTune {
        /// Early-shutdown rate.
        theta: f64,
    },
    /// Single-Spot Tune baselines.
    SingleSpot(SingleSpotKind),
}

impl Approach {
    /// The four bars of Fig. 7, in paper order.
    pub fn fig7_set() -> [Approach; 4] {
        [
            Approach::SpotTune { theta: 0.7 },
            Approach::SpotTune { theta: 1.0 },
            Approach::SingleSpot(SingleSpotKind::Cheapest),
            Approach::SingleSpot(SingleSpotKind::Fastest),
        ]
    }
}

/// One fully-specified campaign, minus the market pool it runs against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// The approach under evaluation.
    pub approach: Approach,
    /// The workload (algorithm + HP grid + step budget).
    pub workload: Workload,
    /// Master seed: orchestrator RNG and training-run seeds derive from it.
    pub seed: u64,
}

impl Campaign {
    /// Creates a campaign.
    pub fn new(approach: Approach, workload: Workload, seed: u64) -> Self {
        Campaign { approach, workload, seed }
    }

    /// Runs the campaign over `pool` with the oracle revocation estimator,
    /// memoizing curves through the process-wide tier.
    pub fn run(&self, pool: &MarketPool) -> HptReport {
        self.run_with_cache(pool, &CurveCache::global())
    }

    /// Runs the campaign with an explicit curve-memo tier (the server's
    /// shared cross-request tier).
    ///
    /// Deterministic: the report is a pure function of `(self, pool)` — the
    /// tier only changes what is recomputed versus replayed.
    pub fn run_with_cache(&self, pool: &MarketPool, curve_cache: &CurveCache) -> HptReport {
        match self.approach {
            Approach::SpotTune { theta } => {
                let oracle = OracleEstimator::new(pool.clone(), 0.9);
                let cfg = SpotTuneConfig::new(theta, 3).with_seed(self.seed);
                Orchestrator::new(cfg, self.workload.clone(), pool.clone(), &oracle)
                    .with_curve_cache(curve_cache.clone())
                    .run()
            }
            Approach::SingleSpot(kind) => run_single_spot_with_cache(
                kind,
                &self.workload,
                pool,
                SpotTuneConfig::default().start,
                self.seed,
                curve_cache,
            ),
        }
    }
}

/// One unit of work submitted to the campaign server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRequest {
    /// Client-chosen correlation id, echoed in the response. The server
    /// streams responses in *completion* order; ids let clients reorder.
    pub id: u64,
    /// The approach under evaluation.
    pub approach: Approach,
    /// The workload to tune.
    pub workload: Workload,
    /// Market environment, resolved through the server's shared pool tier.
    pub scenario: MarketScenario,
    /// Master seed for the campaign.
    pub seed: u64,
}

impl CampaignRequest {
    /// The campaign this request describes (everything but the pool).
    pub fn campaign(&self) -> Campaign {
        Campaign::new(self.approach, self.workload.clone(), self.seed)
    }
}

/// The server's answer to one [`CampaignRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResponse {
    /// Echo of [`CampaignRequest::id`].
    pub id: u64,
    /// The campaign's report.
    pub report: HptReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_mlsim::Algorithm;
    use spottune_market::SimDur;

    fn tiny_workload() -> Workload {
        let base = Workload::benchmark(Algorithm::LoR);
        Workload::custom(Algorithm::LoR, 30, base.hp_grid()[..2].to_vec())
    }

    #[test]
    fn fig7_set_matches_paper_order() {
        let set = Approach::fig7_set();
        assert!(matches!(set[0], Approach::SpotTune { theta } if theta == 0.7));
        assert!(matches!(set[3], Approach::SingleSpot(SingleSpotKind::Fastest)));
    }

    #[test]
    fn campaign_is_deterministic_across_tiers() {
        let pool = MarketPool::standard(SimDur::from_days(2), 11);
        let campaign = Campaign::new(Approach::SpotTune { theta: 0.6 }, tiny_workload(), 5);
        let a = campaign.run(&pool);
        let b = campaign.run_with_cache(&pool, &CurveCache::new());
        assert_eq!(a, b, "tier choice must never change the report");
    }

    #[test]
    fn request_round_trips_to_campaign() {
        let req = CampaignRequest {
            id: 9,
            approach: Approach::SingleSpot(SingleSpotKind::Cheapest),
            workload: tiny_workload(),
            scenario: MarketScenario::from_days(2, 3),
            seed: 21,
        };
        let campaign = req.campaign();
        assert_eq!(campaign.approach, req.approach);
        assert_eq!(campaign.seed, 21);
        let report = campaign.run(&req.scenario.build());
        assert!(report.approach.contains("Cheapest"));
        let resp = CampaignResponse { id: req.id, report };
        assert_eq!(resp.id, 9);
    }
}
