//! One campaign as a first-class, schedulable unit of work.
//!
//! A *campaign* is a single HPT evaluation point: an approach (a registered
//! provisioning policy, possibly θ-parameterized) applied to one workload
//! over one market pool with one seed. The figure binaries, the rayon
//! fan-outs and the sharded campaign server all funnel through
//! [`Campaign::run`], so a sweep scheduled any way — serially, across
//! cores, across a worker pool — produces bit-identical [`HptReport`]s.
//!
//! [`CampaignRequest`]/[`CampaignResponse`] are the serializable wire
//! types of the campaign server: requests name their market environment by
//! [`MarketScenario`] (a key into the server's shared pool tier), their
//! approach by policy name ([`Approach::policy_name`]) and their
//! revocation predictor by [`EstimatorSpec`] (a key into the estimator
//! registry, and — for the learned families — into the server's shared
//! trained-predictor tier) — every registered policy × estimator
//! combination runs through the same cached, sharded pipeline.

use crate::baseline::SingleSpotKind;
use crate::config::SpotTuneConfig;
use crate::engine::Engine;
use crate::policy::{
    BidAware, HybridSpotOnDemand, MigrationAware, OnDemand, ProvisionPolicy, SingleSpot,
    SpotTuneTheta,
};
use crate::provision::OracleEstimator;
use crate::report::HptReport;
use serde::{Deserialize, Serialize};
use spottune_market::{
    ConstantEstimator, EstimatorSpec, MarketPool, MarketScenario, RevocationEstimator,
};
use spottune_mlsim::{CurveCache, Workload};
use spottune_revpred::{train_for_scenario, PredictorKind};

/// The provisioning strategies a campaign can evaluate: the paper's
/// approaches (Fig. 7) plus the related-work policies of the policy layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Approach {
    /// SpotTune with the given θ.
    SpotTune {
        /// Early-shutdown rate.
        theta: f64,
    },
    /// Single-Spot Tune baselines.
    SingleSpot(SingleSpotKind),
    /// On-demand baseline: fixed price, no revocations, no refunds.
    OnDemand(SingleSpotKind),
    /// DeepVM-style hybrid: SpotTune provisioning until a configuration
    /// suffers `max_revocations` revocations, then pin it to on-demand.
    Hybrid {
        /// Early-shutdown rate.
        theta: f64,
        /// Revocations tolerated before the on-demand fallback.
        max_revocations: u32,
    },
    /// Voorsluys-style bid-aware provisioning: deterministic bid-margin
    /// ladder per market instead of one random delta.
    BidAware {
        /// Early-shutdown rate.
        theta: f64,
    },
    /// Grace-window-aware provisioning: SpotTune placement plus partial
    /// checkpoint planning under bandwidth-limited notice windows and a
    /// Kuhn–Munkres batch matcher for storm-displaced jobs.
    MigrationAware {
        /// Early-shutdown rate.
        theta: f64,
    },
}

/// Revocations tolerated by [`Approach::Hybrid`] before it pins a
/// configuration to on-demand capacity, unless overridden.
pub const DEFAULT_HYBRID_STRIKES: u32 = 3;

impl Approach {
    /// The four bars of Fig. 7, in paper order.
    pub fn fig7_set() -> [Approach; 4] {
        [
            Approach::SpotTune { theta: 0.7 },
            Approach::SpotTune { theta: 1.0 },
            Approach::SingleSpot(SingleSpotKind::Cheapest),
            Approach::SingleSpot(SingleSpotKind::Fastest),
        ]
    }

    /// Every registered policy name, in registry order. These are the
    /// stable identifiers accepted by [`Approach::from_policy_name`], the
    /// `run_campaigns --policy` flag and the CI policy matrix.
    pub fn registered_policies() -> [&'static str; 7] {
        [
            "spottune",
            "single-spot-cheapest",
            "single-spot-fastest",
            "on-demand",
            "hybrid",
            "bid-aware",
            "migration-aware",
        ]
    }

    /// The registry name of this approach's policy.
    pub fn policy_name(&self) -> &'static str {
        match self {
            Approach::SpotTune { .. } => "spottune",
            Approach::SingleSpot(SingleSpotKind::Cheapest) => "single-spot-cheapest",
            Approach::SingleSpot(SingleSpotKind::Fastest) => "single-spot-fastest",
            Approach::OnDemand(_) => "on-demand",
            Approach::Hybrid { .. } => "hybrid",
            Approach::BidAware { .. } => "bid-aware",
            Approach::MigrationAware { .. } => "migration-aware",
        }
    }

    /// Resolves a registry name to an approach, parameterizing the
    /// θ-dependent policies with `theta`. Returns `None` for unknown names
    /// (callers list [`Approach::registered_policies`] in their error).
    pub fn from_policy_name(name: &str, theta: f64) -> Option<Approach> {
        match name {
            "spottune" => Some(Approach::SpotTune { theta }),
            "single-spot-cheapest" => Some(Approach::SingleSpot(SingleSpotKind::Cheapest)),
            "single-spot-fastest" => Some(Approach::SingleSpot(SingleSpotKind::Fastest)),
            "on-demand" => Some(Approach::OnDemand(SingleSpotKind::Cheapest)),
            "hybrid" => {
                Some(Approach::Hybrid { theta, max_revocations: DEFAULT_HYBRID_STRIKES })
            }
            "bid-aware" => Some(Approach::BidAware { theta }),
            "migration-aware" => Some(Approach::MigrationAware { theta }),
            _ => None,
        }
    }

    /// Whether this approach's behaviour depends on θ (the others always
    /// train full length).
    pub fn is_theta_parameterized(&self) -> bool {
        matches!(
            self,
            Approach::SpotTune { .. }
                | Approach::Hybrid { .. }
                | Approach::BidAware { .. }
                | Approach::MigrationAware { .. }
        )
    }

    /// The engine configuration this approach runs under.
    pub(crate) fn config(&self, seed: u64) -> SpotTuneConfig {
        let theta = match *self {
            Approach::SpotTune { theta }
            | Approach::Hybrid { theta, .. }
            | Approach::BidAware { theta }
            | Approach::MigrationAware { theta } => theta,
            Approach::SingleSpot(_) | Approach::OnDemand(_) => 1.0,
        };
        SpotTuneConfig::new(theta, 3).with_seed(seed)
    }

    /// Builds this approach's policy over `estimator` (transient policies
    /// consult it for revocation probabilities; dedicated ones ignore it).
    pub fn build_policy<'a>(
        &self,
        estimator: &'a dyn RevocationEstimator,
        config: &SpotTuneConfig,
    ) -> Box<dyn ProvisionPolicy + 'a> {
        match *self {
            Approach::SpotTune { theta } => {
                Box::new(SpotTuneTheta::new(estimator, config.delta_range, theta))
            }
            Approach::SingleSpot(kind) => Box::new(SingleSpot::new(kind)),
            Approach::OnDemand(kind) => Box::new(OnDemand::new(kind)),
            Approach::Hybrid { theta, max_revocations } => Box::new(HybridSpotOnDemand::new(
                estimator,
                config.delta_range,
                theta,
                max_revocations,
            )),
            Approach::BidAware { theta } => {
                Box::new(BidAware::new(estimator, config.delta_range, theta))
            }
            Approach::MigrationAware { theta } => {
                Box::new(MigrationAware::new(estimator, config.delta_range, theta))
            }
        }
    }
}

/// One fully-specified campaign, minus the market pool it runs against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Campaign {
    /// The approach under evaluation.
    pub approach: Approach,
    /// The workload (algorithm + HP grid + step budget).
    pub workload: Workload,
    /// Master seed: engine RNG and training-run seeds derive from it.
    pub seed: u64,
    /// The revocation estimator the policy provisions with. Defaults to
    /// [`EstimatorSpec::default`] (`oracle(0.9)`), which is bit-identical
    /// to the pre-registry behaviour.
    pub estimator: EstimatorSpec,
}

impl Campaign {
    /// Creates a campaign with the default `oracle(0.9)` estimator.
    pub fn new(approach: Approach, workload: Workload, seed: u64) -> Self {
        Campaign { approach, workload, seed, estimator: EstimatorSpec::default() }
    }

    /// Builder-style estimator-spec override.
    pub fn with_estimator(mut self, estimator: EstimatorSpec) -> Self {
        self.estimator = estimator;
        self
    }

    /// Runs the campaign over `pool`, memoizing curves through the
    /// process-wide tier.
    ///
    /// # Panics
    ///
    /// Panics if the spec names a learned predictor family (see
    /// [`Campaign::run_with_cache`]).
    pub fn run(&self, pool: &MarketPool) -> HptReport {
        self.run_with_cache(pool, &CurveCache::global())
    }

    /// Runs the campaign with an explicit curve-memo tier (the server's
    /// shared cross-request tier), building the spec'd estimator from the
    /// pool.
    ///
    /// Deterministic: the report is a pure function of `(self, pool)` — the
    /// tier only changes what is recomputed versus replayed. Every approach
    /// goes through the same [`Engine`]; only the policy and the estimator
    /// differ.
    ///
    /// # Panics
    ///
    /// Panics if the spec names a learned predictor family: a trained
    /// predictor is keyed by *market scenario* (its training seed), which a
    /// bare pool cannot name. Run through the campaign server (whose
    /// predictor tier amortizes training), call
    /// [`CampaignRequest::run_serial`], or train a set yourself and use
    /// [`Campaign::run_with_estimator`].
    pub fn run_with_cache(&self, pool: &MarketPool, curve_cache: &CurveCache) -> HptReport {
        match self.estimator {
            EstimatorSpec::Oracle { confidence } => {
                let oracle = OracleEstimator::new(pool.clone(), confidence);
                self.run_with_estimator(pool, curve_cache, &oracle)
            }
            EstimatorSpec::Constant { p } => {
                let constant = ConstantEstimator::new(p);
                self.run_with_estimator(pool, curve_cache, &constant)
            }
            spec => panic!(
                "estimator spec {spec} needs a predictor trained for its market scenario; \
                 submit a CampaignRequest (the server's predictor tier trains once per \
                 scenario × kind), use CampaignRequest::run_serial, or pass a trained \
                 MarketPredictorSet to Campaign::run_with_estimator"
            ),
        }
    }

    /// Runs the campaign against an explicit, already-built estimator —
    /// the common trunk of every campaign path, and the entry point for
    /// callers holding a trained predictor set.
    pub fn run_with_estimator(
        &self,
        pool: &MarketPool,
        curve_cache: &CurveCache,
        estimator: &dyn RevocationEstimator,
    ) -> HptReport {
        let cfg = self.approach.config(self.seed);
        let mut policy = self.approach.build_policy(estimator, &cfg);
        Engine::new(cfg, self.workload.clone(), pool.clone())
            .with_curve_cache(curve_cache.clone())
            .run(policy.as_mut())
    }
}

/// One unit of work submitted to the campaign server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRequest {
    /// Client-chosen correlation id, echoed in the response. The server
    /// streams responses in *completion* order; ids let clients reorder.
    pub id: u64,
    /// The approach under evaluation.
    pub approach: Approach,
    /// The workload to tune.
    pub workload: Workload,
    /// Market environment, resolved through the server's shared pool tier.
    pub scenario: MarketScenario,
    /// Master seed for the campaign.
    pub seed: u64,
    /// Revocation estimator the policy provisions with; learned specs are
    /// trained per `(scenario, kind)` through the server's predictor tier.
    pub estimator: EstimatorSpec,
}

impl CampaignRequest {
    /// The campaign this request describes (everything but the pool).
    pub fn campaign(&self) -> Campaign {
        Campaign::new(self.approach, self.workload.clone(), self.seed)
            .with_estimator(self.estimator)
    }

    /// Runs this request outside the server, resolving the estimator
    /// exactly as a server worker does: ground-truth specs are built from
    /// the pool, learned specs are trained deterministically for the
    /// request's scenario (uncached here — the server's predictor tier is
    /// what amortizes this). The report is therefore bit-identical to the
    /// server's answer for the same request, making this the serial
    /// reference path of the equivalence suites.
    pub fn run_serial(&self, pool: &MarketPool, curve_cache: &CurveCache) -> HptReport {
        let campaign = self.campaign();
        match PredictorKind::from_spec(&self.estimator) {
            Some(kind) => {
                let trained = train_for_scenario(kind, self.scenario, pool);
                campaign.run_with_estimator(pool, curve_cache, &trained)
            }
            None => campaign.run_with_cache(pool, curve_cache),
        }
    }

    /// Checks every invariant a worker would otherwise trip an assert on,
    /// without running anything: θ finite and in (0, 1] where the approach
    /// uses it, a non-degenerate workload, a non-empty market scenario and
    /// a well-formed estimator spec. This is the wire-boundary validation —
    /// a server rejects the request with this message instead of letting a
    /// malformed submission panic a campaign mid-sweep.
    pub fn validate(&self) -> Result<(), String> {
        if self.approach.is_theta_parameterized() {
            let theta = match self.approach {
                Approach::SpotTune { theta }
                | Approach::Hybrid { theta, .. }
                | Approach::BidAware { theta }
                | Approach::MigrationAware { theta } => theta,
                Approach::SingleSpot(_) | Approach::OnDemand(_) => 1.0,
            };
            if !(theta > 0.0 && theta <= 1.0) {
                return Err(format!("theta must be in (0, 1], got {theta}"));
            }
        }
        if let Approach::Hybrid { max_revocations, .. } = self.approach {
            if max_revocations == 0 {
                return Err("hybrid max_revocations must be at least 1".to_string());
            }
        }
        if self.workload.hp_grid().is_empty() {
            return Err("workload HP grid must not be empty".to_string());
        }
        if self.workload.max_trial_steps() == 0 {
            return Err("workload max_trial_steps must be positive".to_string());
        }
        if self.scenario.trace_mins == 0 {
            return Err("market scenario must cover a non-empty trace".to_string());
        }
        self.estimator.validate()
    }
}

/// The server's answer to one [`CampaignRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResponse {
    /// Echo of [`CampaignRequest::id`].
    pub id: u64,
    /// The campaign's report.
    pub report: HptReport,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_market::SimDur;
    use spottune_mlsim::Algorithm;

    fn tiny_workload() -> Workload {
        let base = Workload::benchmark(Algorithm::LoR);
        Workload::custom(Algorithm::LoR, 30, base.hp_grid()[..2].to_vec())
    }

    #[test]
    fn fig7_set_matches_paper_order() {
        let set = Approach::fig7_set();
        assert!(matches!(set[0], Approach::SpotTune { theta } if theta == 0.7));
        assert!(matches!(set[3], Approach::SingleSpot(SingleSpotKind::Fastest)));
    }

    #[test]
    fn campaign_is_deterministic_across_tiers() {
        let pool = MarketPool::standard(SimDur::from_days(2), 11);
        let campaign = Campaign::new(Approach::SpotTune { theta: 0.6 }, tiny_workload(), 5);
        let a = campaign.run(&pool);
        let b = campaign.run_with_cache(&pool, &CurveCache::new());
        assert_eq!(a, b, "tier choice must never change the report");
    }

    #[test]
    fn request_round_trips_to_campaign() {
        let req = CampaignRequest {
            id: 9,
            approach: Approach::SingleSpot(SingleSpotKind::Cheapest),
            workload: tiny_workload(),
            scenario: MarketScenario::from_days(2, 3),
            seed: 21,
            estimator: EstimatorSpec::default(),
        };
        let campaign = req.campaign();
        assert_eq!(campaign.approach, req.approach);
        assert_eq!(campaign.seed, 21);
        assert_eq!(campaign.estimator, EstimatorSpec::default());
        let report = campaign.run(&req.scenario.build());
        assert!(report.approach.contains("Cheapest"));
        let resp = CampaignResponse { id: req.id, report };
        assert_eq!(resp.id, 9);
    }

    #[test]
    fn registry_round_trips_every_policy() {
        for name in Approach::registered_policies() {
            let approach = Approach::from_policy_name(name, 0.7)
                .unwrap_or_else(|| panic!("registered policy {name} must resolve"));
            assert_eq!(approach.policy_name(), name);
        }
        assert_eq!(Approach::from_policy_name("nope", 0.7), None);
        // θ threads into the θ-parameterized policies only.
        assert!(matches!(
            Approach::from_policy_name("hybrid", 0.5),
            Some(Approach::Hybrid { theta, max_revocations: DEFAULT_HYBRID_STRIKES })
                if theta == 0.5
        ));
        assert!(!Approach::SingleSpot(SingleSpotKind::Cheapest).is_theta_parameterized());
        assert!(Approach::BidAware { theta: 0.7 }.is_theta_parameterized());
    }

    #[test]
    fn default_estimator_spec_matches_explicit_oracle() {
        // The spec plumbing must be a pure refactor: the default spec and a
        // hand-built oracle(0.9) produce the same bits (the 100-campaign ×
        // six-policy version lives in tests/estimator_equivalence.rs).
        let pool = MarketPool::standard(SimDur::from_days(2), 11);
        let campaign = Campaign::new(Approach::SpotTune { theta: 0.7 }, tiny_workload(), 5);
        let via_spec = campaign.run(&pool);
        let oracle = OracleEstimator::new(pool.clone(), 0.9);
        let explicit = campaign.run_with_estimator(&pool, &CurveCache::global(), &oracle);
        assert_eq!(via_spec, explicit);
    }

    #[test]
    fn constant_spec_runs_and_differs_from_the_oracle() {
        let pool = MarketPool::standard(SimDur::from_days(2), 11);
        let campaign = Campaign::new(Approach::SpotTune { theta: 0.7 }, tiny_workload(), 5)
            .with_estimator(EstimatorSpec::Constant { p: 0.0 });
        let report = campaign.run(&pool);
        assert_eq!(report.predicted_finals.len(), 2);
        assert!(report.cost >= 0.0);
    }

    #[test]
    #[should_panic(expected = "trained")]
    fn learned_spec_refuses_the_scenarioless_path() {
        let pool = MarketPool::standard(SimDur::from_days(2), 11);
        let campaign = Campaign::new(Approach::SpotTune { theta: 0.7 }, tiny_workload(), 5)
            .with_estimator(EstimatorSpec::RevPred);
        let _ = campaign.run(&pool);
    }

    #[test]
    fn run_serial_resolves_learned_specs_deterministically() {
        let scenario = MarketScenario::from_days(1, 13);
        let pool = scenario.build();
        let req = CampaignRequest {
            id: 0,
            approach: Approach::SpotTune { theta: 0.7 },
            workload: tiny_workload(),
            scenario,
            seed: 4,
            estimator: EstimatorSpec::Logistic,
        };
        let a = req.run_serial(&pool, &CurveCache::new());
        let b = req.run_serial(&pool, &CurveCache::new());
        assert_eq!(a, b, "learned-spec campaigns must be deterministic");
        assert_eq!(a.predicted_finals.len(), 2);
    }

    #[test]
    fn every_registered_policy_completes_a_campaign() {
        let pool = MarketPool::standard(SimDur::from_days(2), 11);
        for name in Approach::registered_policies() {
            let approach = Approach::from_policy_name(name, 0.7).expect("registered");
            let report = Campaign::new(approach, tiny_workload(), 5).run(&pool);
            assert_eq!(report.predicted_finals.len(), 2, "{name}: prediction per config");
            assert!(report.cost >= 0.0, "{name}: cost must be finite");
            assert!(report.jct.as_secs() > 0, "{name}: non-zero JCT");
            assert!(report.deployments >= 2, "{name}: every config deployed");
        }
    }
}
