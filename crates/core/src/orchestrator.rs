//! The SpotTune orchestrator — the paper's Algorithm 1 as a thin facade.
//!
//! Historically this module *was* the whole executor; the machinery now
//! lives in [`crate::engine`] (time advance, billing, checkpoint
//! accounting, selection) and the decision logic in
//! [`crate::policy::SpotTuneTheta`] (fine-grained cost-aware provisioning,
//! Eq. 1–2). `Orchestrator` simply binds the two: constructing one and
//! calling [`Orchestrator::run`] is exactly the paper's SpotTune, and it is
//! bit-identical to the pre-policy-layer implementation (locked by the
//! `tick_event_equivalence` and `policy_equivalence` tests).

use crate::config::SpotTuneConfig;
use crate::engine::Engine;
use crate::policy::SpotTuneTheta;
use crate::report::HptReport;
use spottune_earlycurve::EarlyCurveConfig;
use spottune_market::{MarketPool, RevocationEstimator};
use spottune_mlsim::{CurveCache, Workload};

pub use crate::engine::TraceEvent;

/// Orchestrates one SpotTune HPT campaign for one workload: an [`Engine`]
/// bound to the [`SpotTuneTheta`] policy.
#[derive(Debug)]
pub struct Orchestrator<'a> {
    engine: Engine,
    estimator: &'a dyn RevocationEstimator,
}

impl<'a> Orchestrator<'a> {
    /// Creates an orchestrator.
    pub fn new(
        config: SpotTuneConfig,
        workload: Workload,
        pool: MarketPool,
        estimator: &'a dyn RevocationEstimator,
    ) -> Self {
        Orchestrator { engine: Engine::new(config, workload, pool), estimator }
    }

    /// Overrides the EarlyCurve configuration.
    pub fn with_earlycurve_config(mut self, ec: EarlyCurveConfig) -> Self {
        self.engine = self.engine.with_earlycurve_config(ec);
        self
    }

    /// Routes the training-curve memo through an explicit shared tier
    /// (the server's cross-request tier) instead of the process default.
    /// Curves are pure functions of their key, so the tier choice affects
    /// wall-clock and counters, never results.
    pub fn with_curve_cache(mut self, cache: CurveCache) -> Self {
        self.engine = self.engine.with_curve_cache(cache);
        self
    }

    /// Runs the campaign to completion and reports.
    pub fn run(&self) -> HptReport {
        self.run_traced().0
    }

    /// Runs the campaign and additionally returns the event timeline
    /// (deployments, notices, revocations, recycles, finishes — the
    /// lifecycle of paper Fig. 4).
    pub fn run_traced(&self) -> (HptReport, Vec<TraceEvent>) {
        let cfg = self.engine.config();
        let mut policy = SpotTuneTheta::new(self.estimator, cfg.delta_range, cfg.theta);
        self.engine.run_traced(&mut policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provision::OracleEstimator;
    use spottune_market::SimDur;
    use spottune_mlsim::Algorithm;

    fn small_workload() -> Workload {
        let base = Workload::benchmark(Algorithm::LoR);
        let grid = base.hp_grid()[..4].to_vec();
        Workload::custom(Algorithm::LoR, 60, grid)
    }

    fn pool() -> MarketPool {
        MarketPool::standard(SimDur::from_days(10), 42)
    }

    #[test]
    fn campaign_completes_and_accounts() {
        let pool = pool();
        let oracle = OracleEstimator::new(pool.clone(), 0.9);
        let cfg = SpotTuneConfig::new(0.7, 2).with_seed(7);
        let orch = Orchestrator::new(cfg, small_workload(), pool, &oracle);
        let report = orch.run();
        // Every configuration produced a prediction and a ground truth.
        assert_eq!(report.predicted_finals.len(), 4);
        assert_eq!(report.true_finals.len(), 4);
        assert_eq!(report.selected.len(), 2);
        // Conservation: every settled step is either free or charged.
        assert!(report.free_steps + report.charged_steps > 0);
        // Billing identity.
        assert!((report.gross - report.cost - report.refunded).abs() < 1e-9);
        // Time sanity.
        assert!(report.jct.as_secs() > 0);
        assert!(report.deployments >= 4);
    }

    #[test]
    fn theta_one_runs_every_step() {
        let pool = pool();
        let oracle = OracleEstimator::new(pool.clone(), 0.9);
        let cfg = SpotTuneConfig::new(1.0, 1).with_seed(8);
        let w = small_workload();
        let orch = Orchestrator::new(cfg, w.clone(), pool, &oracle);
        let report = orch.run();
        // θ=1.0: predictions equal observed finals, so top-1 must hit
        // unless a job converged early onto the same plateau.
        assert!(report.top3_hit());
        let total = report.free_steps + report.charged_steps;
        // All four configurations ran to (at most) max_trial_steps; with
        // convergence-based early finishes they may stop a little short.
        assert!(total <= 4 * w.max_trial_steps());
        assert!(total >= 4 * w.max_trial_steps() / 2, "total steps {total}");
    }

    #[test]
    fn lower_theta_is_cheaper() {
        let pool = pool();
        let oracle = OracleEstimator::new(pool.clone(), 0.9);
        let w = small_workload();
        let low = Orchestrator::new(
            SpotTuneConfig::new(0.4, 1).with_seed(9),
            w.clone(),
            pool.clone(),
            &oracle,
        )
        .run();
        let high = Orchestrator::new(SpotTuneConfig::new(1.0, 1).with_seed(9), w, pool, &oracle).run();
        let low_steps = low.free_steps + low.charged_steps;
        let high_steps = high.free_steps + high.charged_steps;
        assert!(low_steps < high_steps, "steps {low_steps} vs {high_steps}");
    }

    #[test]
    fn orchestrator_label_comes_from_the_policy() {
        let pool = pool();
        let oracle = OracleEstimator::new(pool.clone(), 0.9);
        let cfg = SpotTuneConfig::new(0.7, 1).with_seed(3);
        let report = Orchestrator::new(cfg, small_workload(), pool, &oracle).run();
        assert_eq!(report.approach, "SpotTune(θ=0.7)");
    }
}
