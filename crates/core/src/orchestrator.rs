//! The SpotTune orchestrator — a faithful implementation of the paper's
//! Algorithm 1 on top of the discrete-event cloud.
//!
//! Phase 1 runs every configuration to `θ × max_trial_steps`, reacting to
//! three events per poll (10 s): revocation notices (checkpoint → requeue),
//! step-target completion (checkpoint → finish), and the one-hour proactive
//! recycle (checkpoint → shutdown → requeue, harvesting the first-hour
//! refund opportunity). EarlyCurve then predicts every configuration's
//! final metric and the top-`mcnt` continue from their checkpoints to full
//! training (Algorithm 1 lines 48–53).

use crate::config::SpotTuneConfig;
use crate::job::{FinishReason, Job};
use crate::perfmatrix::PerfMatrix;
use crate::provision::Provisioner;
use crate::report::HptReport;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spottune_cloud::{CloudEvent, CloudProvider, ObjectStore, VmId};
use spottune_earlycurve::EarlyCurveConfig;
use spottune_market::{MarketPool, RevocationEstimator, SimDur, SimTime};
use spottune_mlsim::{PerfModel, Workload};

/// One entry of the campaign timeline (the lifecycle of paper Fig. 4).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A configuration was (re)deployed onto an instance.
    Deployed {
        /// Grid index.
        job: usize,
        /// Instance-type name.
        instance: String,
        /// Offered maximum price.
        max_price: f64,
        /// Event time.
        at: SimTime,
    },
    /// Two-minute revocation notice received; checkpoint taken.
    NoticeCheckpoint {
        /// Grid index.
        job: usize,
        /// Event time.
        at: SimTime,
    },
    /// The provider reclaimed the VM; steps settled (free if refunded).
    Revoked {
        /// Grid index.
        job: usize,
        /// Whether the first-hour refund applied.
        free: bool,
        /// Event time.
        at: SimTime,
    },
    /// Proactive one-hour recycle (Algorithm 1 line 31).
    Recycled {
        /// Grid index.
        job: usize,
        /// Event time.
        at: SimTime,
    },
    /// The job finished its phase.
    Finished {
        /// Grid index.
        job: usize,
        /// Why it stopped.
        reason: FinishReason,
        /// Steps completed.
        steps: u64,
        /// Event time.
        at: SimTime,
    },
}

/// Orchestrates one HPT campaign for one workload.
#[derive(Debug)]
pub struct Orchestrator<'a> {
    config: SpotTuneConfig,
    workload: Workload,
    pool: MarketPool,
    estimator: &'a dyn RevocationEstimator,
    perf_model: PerfModel,
    ec_config: EarlyCurveConfig,
}

impl<'a> Orchestrator<'a> {
    /// Creates an orchestrator.
    pub fn new(
        config: SpotTuneConfig,
        workload: Workload,
        pool: MarketPool,
        estimator: &'a dyn RevocationEstimator,
    ) -> Self {
        config.validate();
        Orchestrator {
            config,
            workload,
            pool,
            estimator,
            perf_model: PerfModel::new(),
            ec_config: EarlyCurveConfig::default(),
        }
    }

    /// Overrides the EarlyCurve configuration.
    pub fn with_earlycurve_config(mut self, ec: EarlyCurveConfig) -> Self {
        self.ec_config = ec;
        self
    }

    /// Runs the campaign to completion and reports.
    pub fn run(&self) -> HptReport {
        self.run_traced().0
    }

    /// Runs the campaign and additionally returns the event timeline
    /// (deployments, notices, revocations, recycles, finishes — the
    /// lifecycle of paper Fig. 4).
    pub fn run_traced(&self) -> (HptReport, Vec<TraceEvent>) {
        let cfg = &self.config;
        let max_steps = self.workload.max_trial_steps();
        let target = cfg.target_steps(max_steps);

        let mut provider = CloudProvider::new(self.pool.clone());
        let mut store = ObjectStore::new();
        let mut matrix = PerfMatrix::new(cfg.c0, cfg.ewma_alpha);
        let provisioner = Provisioner::new(self.estimator, cfg.delta_range);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ ORCH_SALT);
        let mut jobs: Vec<Job> = (0..self.workload.hp_grid().len())
            .map(|i| Job::new(&self.workload, i, target, self.ec_config, cfg.seed))
            .collect();

        let mut events = Vec::new();
        let mut t = cfg.start;
        // ---- Phase 1: all configurations to θ·max_trial_steps. ----
        t = self.drive(
            &mut jobs, t, &mut provider, &mut store, &mut matrix, &provisioner, &mut rng,
            &mut events,
        );

        // ---- Prediction & selection (Algorithm 1 lines 48–53). ----
        let predicted: Vec<f64> = jobs
            .iter()
            .map(|j| {
                let last = j.last_metric().unwrap_or(f64::INFINITY);
                if cfg.theta >= 1.0 || j.finished == Some(FinishReason::ConvergedEarly) {
                    last
                } else {
                    j.curve.predict_final(max_steps).unwrap_or(last)
                }
            })
            .collect();
        let mut ranking: Vec<usize> = (0..jobs.len()).collect();
        ranking.sort_by(|&a, &b| predicted[a].partial_cmp(&predicted[b]).expect("finite"));
        let selected: Vec<usize> = ranking.iter().take(cfg.mcnt).copied().collect();

        // Paper-reported cost/JCT end at model selection (§IV.B.1).
        let selection_cost = provider.ledger().total_charged();
        let selection_refunded = provider.ledger().total_refunded();
        let selection_gross = provider.ledger().total_gross();
        let selection_jct = t - cfg.start;

        // ---- Phase 2: continue the top-mcnt from checkpoints. ----
        if cfg.theta < 1.0 {
            for &i in &selected {
                let job = &mut jobs[i];
                if job.finished == Some(FinishReason::TargetReached) && job.steps_done < max_steps
                {
                    job.finished = None;
                    job.target_steps = max_steps;
                }
            }
            t = self.drive(
                &mut jobs, t, &mut provider, &mut store, &mut matrix, &provisioner, &mut rng,
                &mut events,
            );
        }

        // ---- Report. ----
        let true_finals = spottune_mlsim::runner::ground_truth_finals(&self.workload, cfg.seed);
        let ledger = provider.ledger();
        let report = HptReport {
            approach: format!("SpotTune(θ={})", cfg.theta),
            workload: self.workload.algorithm().name().to_string(),
            theta: cfg.theta,
            cost: selection_cost,
            refunded: selection_refunded,
            gross: selection_gross,
            jct: selection_jct,
            cost_with_continuation: ledger.total_charged(),
            jct_with_continuation: t - cfg.start,
            train_time: sum_dur(jobs.iter().map(|j| j.train_time)),
            overhead_time: sum_dur(jobs.iter().map(|j| j.overhead)),
            free_steps: jobs.iter().map(|j| j.free_steps).sum(),
            charged_steps: jobs.iter().map(|j| j.charged_steps).sum(),
            predicted_finals: predicted,
            true_finals,
            selected,
            deployments: jobs.iter().map(|j| j.deployments).sum(),
            revocations: jobs.iter().map(|j| j.revocations).sum(),
        };
        (report, events)
    }

    /// The Algorithm-1 polling loop; returns the time when every job in the
    /// current phase has finished.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &self,
        jobs: &mut [Job],
        mut t: SimTime,
        provider: &mut CloudProvider,
        store: &mut ObjectStore,
        matrix: &mut PerfMatrix,
        provisioner: &Provisioner<'_>,
        rng: &mut StdRng,
        events: &mut Vec<TraceEvent>,
    ) -> SimTime {
        let poll = self.config.poll_interval;
        let poll_secs = poll.as_secs_f64();
        // Hard stop: ten simulated weeks — catches scheduling deadlocks in
        // tests rather than hanging.
        let deadline = t + SimDur::from_hours(24 * 70);
        while jobs.iter().any(Job::is_active) {
            assert!(t < deadline, "orchestrator made no progress before deadline");
            t += poll;

            // (1) Cloud events: notices and revocations.
            for event in provider.poll(t) {
                match event {
                    CloudEvent::RevocationNotice { vm, .. } => {
                        if let Some(job) = job_on_vm(jobs, vm) {
                            // Checkpoint within the two-minute window
                            // (§IV.F guarantees our model sizes fit).
                            if !job.halted {
                                job.halted = true;
                                let inst = provider.vm(vm).expect("vm exists").instance().clone();
                                let size = self.workload.model_size_mb(&job.hp);
                                let dur = store.put(&ckpt_key(&self.workload, job.hp_index), size, &inst);
                                debug_assert!(dur.as_secs() <= 120, "checkpoint must fit the notice window");
                                job.overhead += dur;
                                events.push(TraceEvent::NoticeCheckpoint { job: job.hp_index, at: t });
                            }
                        }
                    }
                    CloudEvent::Revoked { vm, .. } => {
                        if let Some(job) = job_on_vm(jobs, vm) {
                            job.revocations += 1;
                            let was_free = provider
                                .ledger()
                                .records()
                                .iter()
                                .rev()
                                .find(|r| r.vm == vm)
                                .map(|r| r.was_free())
                                .unwrap_or(false);
                            job.settle_vm_steps(was_free);
                            events.push(TraceEvent::Revoked { job: job.hp_index, free: was_free, at: t });
                        }
                    }
                }
            }

            // (2) Advance running jobs by one poll interval.
            for job in jobs.iter_mut() {
                if !job.is_active() || job.halted {
                    continue;
                }
                let Some(vm_id) = job.assigned else { continue };
                let vm = provider.vm(vm_id).expect("assigned vm exists");
                if !vm.is_alive() || t < job.exec_ready_at {
                    continue;
                }
                let inst = vm.instance().clone();
                job.progress_secs += poll_secs;
                job.train_time += poll;
                loop {
                    let spe = *job.current_spe.get_or_insert_with(|| {
                        self.perf_model.sample_spe(&inst, &self.workload, &job.hp, rng)
                    });
                    if job.progress_secs < spe {
                        break;
                    }
                    job.progress_secs -= spe;
                    job.current_spe = None;
                    job.steps_done += 1;
                    job.steps_on_vm += 1;
                    let metric = job.run.metric_at(job.steps_done);
                    job.curve.push(job.steps_done, metric);
                    matrix.observe(&inst, job.hp_index, spe);
                    // Finish conditions: target reached, or plateau.
                    if job.steps_done >= job.target_steps {
                        job.finished = Some(FinishReason::TargetReached);
                    } else if job.curve.converged() {
                        job.finished = Some(FinishReason::ConvergedEarly);
                    }
                    if let Some(reason) = job.finished {
                        let size = self.workload.model_size_mb(&job.hp);
                        let dur = store.put(&ckpt_key(&self.workload, job.hp_index), size, &inst);
                        job.overhead += dur;
                        let record = provider.terminate(t, vm_id);
                        job.settle_vm_steps(record.was_free());
                        events.push(TraceEvent::Finished {
                            job: job.hp_index,
                            reason,
                            steps: job.steps_done,
                            at: t,
                        });
                        break;
                    }
                }
            }

            // (3) One-hour proactive recycle (Algorithm 1 line 31).
            for job in jobs.iter_mut() {
                if !job.is_active() || job.halted {
                    continue;
                }
                let Some(vm_id) = job.assigned else { continue };
                let vm = provider.vm(vm_id).expect("assigned vm exists");
                if !vm.is_alive() {
                    continue;
                }
                if t.since(vm.launched_at()) > self.config.reschedule_after {
                    let inst = vm.instance().clone();
                    let size = self.workload.model_size_mb(&job.hp);
                    let dur = store.put(&ckpt_key(&self.workload, job.hp_index), size, &inst);
                    job.overhead += dur;
                    let record = provider.terminate(t, vm_id);
                    job.settle_vm_steps(record.was_free());
                    events.push(TraceEvent::Recycled { job: job.hp_index, at: t });
                }
            }

            // (4) (Re)deploy waiting jobs (Algorithm 1 lines 38–44).
            for job in jobs.iter_mut() {
                if !job.is_waiting() {
                    continue;
                }
                let choice = provisioner.get_best_inst(&self.pool, t, job.hp_index, matrix, rng);
                let Ok(vm_id) = provider.request_spot(t, &choice.instance, choice.max_price)
                else {
                    continue; // price moved above the offer; retry next poll
                };
                let vm = provider.vm(vm_id).expect("vm exists");
                let inst = vm.instance().clone();
                let mut restore = SimDur::from_secs(self.workload.restore_warmup_secs());
                if let Some((_, dur)) = store.get(&ckpt_key(&self.workload, job.hp_index), &inst) {
                    restore += dur;
                }
                job.exec_ready_at = vm.launched_at() + restore;
                job.overhead += restore;
                job.assigned = Some(vm_id);
                job.deployments += 1;
                events.push(TraceEvent::Deployed {
                    job: job.hp_index,
                    instance: choice.instance.clone(),
                    max_price: choice.max_price,
                    at: t,
                });
            }
        }
        t
    }
}

fn job_on_vm(jobs: &mut [Job], vm: VmId) -> Option<&mut Job> {
    jobs.iter_mut().find(|j| j.assigned == Some(vm))
}

fn ckpt_key(workload: &Workload, hp_index: usize) -> String {
    format!("ckpt/{}/{}", workload.algorithm().name(), hp_index)
}

fn sum_dur(durs: impl Iterator<Item = SimDur>) -> SimDur {
    durs.fold(SimDur::ZERO, |acc, d| acc + d)
}

/// Seed salt for the orchestrator's RNG stream.
const ORCH_SALT: u64 = 0x0c_5a17;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provision::OracleEstimator;
    use spottune_mlsim::Algorithm;

    fn small_workload() -> Workload {
        let base = Workload::benchmark(Algorithm::LoR);
        let grid = base.hp_grid()[..4].to_vec();
        Workload::custom(Algorithm::LoR, 60, grid)
    }

    fn pool() -> MarketPool {
        MarketPool::standard(SimDur::from_days(10), 42)
    }

    #[test]
    fn campaign_completes_and_accounts() {
        let pool = pool();
        let oracle = OracleEstimator::new(pool.clone(), 0.9);
        let cfg = SpotTuneConfig::new(0.7, 2).with_seed(7);
        let orch = Orchestrator::new(cfg, small_workload(), pool, &oracle);
        let report = orch.run();
        // Every configuration produced a prediction and a ground truth.
        assert_eq!(report.predicted_finals.len(), 4);
        assert_eq!(report.true_finals.len(), 4);
        assert_eq!(report.selected.len(), 2);
        // Conservation: every settled step is either free or charged.
        assert!(report.free_steps + report.charged_steps > 0);
        // Billing identity.
        assert!((report.gross - report.cost - report.refunded).abs() < 1e-9);
        // Time sanity.
        assert!(report.jct.as_secs() > 0);
        assert!(report.deployments >= 4);
    }

    #[test]
    fn theta_one_runs_every_step() {
        let pool = pool();
        let oracle = OracleEstimator::new(pool.clone(), 0.9);
        let cfg = SpotTuneConfig::new(1.0, 1).with_seed(8);
        let w = small_workload();
        let orch = Orchestrator::new(cfg, w.clone(), pool, &oracle);
        let report = orch.run();
        // θ=1.0: predictions equal observed finals, so top-1 must hit
        // unless a job converged early onto the same plateau.
        assert!(report.top3_hit());
        let total = report.free_steps + report.charged_steps;
        // All four configurations ran to (at most) max_trial_steps; with
        // convergence-based early finishes they may stop a little short.
        assert!(total <= 4 * w.max_trial_steps());
        assert!(total >= 4 * w.max_trial_steps() / 2, "total steps {total}");
    }

    #[test]
    fn lower_theta_is_cheaper() {
        let pool = pool();
        let oracle = OracleEstimator::new(pool.clone(), 0.9);
        let w = small_workload();
        let low = Orchestrator::new(
            SpotTuneConfig::new(0.4, 1).with_seed(9),
            w.clone(),
            pool.clone(),
            &oracle,
        )
        .run();
        let high = Orchestrator::new(SpotTuneConfig::new(1.0, 1).with_seed(9), w, pool, &oracle).run();
        let low_steps = low.free_steps + low.charged_steps;
        let high_steps = high.free_steps + high.charged_steps;
        assert!(low_steps < high_steps, "steps {low_steps} vs {high_steps}");
    }
}
