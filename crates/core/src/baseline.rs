//! The paper's baselines: Single-Spot Tune on a fixed instance type, plus
//! an on-demand variant.
//!
//! "The baseline we compare SpotTune with is running HPT on a single spot
//! instance. We assume the maximum price of each used single-spot instance
//! is much higher than its market price such that it would not be revoked"
//! (§IV.A.4). One VM per configuration, all of the same type — Cheapest
//! (`r4.large`) or Fastest (`m4.4xlarge`) — trained to the full
//! `max_trial_steps` (θ = 1, no early shutdown), billed at the market price
//! with no refunds. [`run_on_demand`] is the same execution model at the
//! instance type's fixed on-demand price — the reliable cost ceiling.
//!
//! These closed forms are retained as the *reference implementations* of
//! the policy layer's dedicated drive: the [`crate::policy::SingleSpot`]
//! and [`crate::policy::OnDemand`] policies run through
//! [`crate::engine::Engine`] and must reproduce these reports bit-for-bit
//! (`tests/policy_equivalence.rs`).

use crate::report::HptReport;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use spottune_cloud::CloudProvider;
use spottune_market::{instance, MarketPool, SimDur, SimTime};
use spottune_mlsim::runner::ground_truth_finals_with_cache;
use spottune_mlsim::{CurveCache, PerfModel, TrainingRun, Workload};

/// Which fixed instance type the baseline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SingleSpotKind {
    /// Lowest on-demand price in the catalog: `r4.large`.
    Cheapest,
    /// Most vCPUs in the catalog: `m4.4xlarge`.
    Fastest,
}

impl SingleSpotKind {
    /// The concrete catalog instance name.
    pub fn instance_name(self) -> &'static str {
        match self {
            SingleSpotKind::Cheapest => instance::CHEAPEST,
            SingleSpotKind::Fastest => instance::FASTEST,
        }
    }

    /// Approach label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            SingleSpotKind::Cheapest => "Single-Spot Tune(Cheapest)",
            SingleSpotKind::Fastest => "Single-Spot Tune(Fastest)",
        }
    }

    /// Approach label of the on-demand variant.
    pub fn on_demand_label(self) -> &'static str {
        match self {
            SingleSpotKind::Cheapest => "On-Demand Tune(Cheapest)",
            SingleSpotKind::Fastest => "On-Demand Tune(Fastest)",
        }
    }
}

/// Runs the Single-Spot baseline for a workload.
///
/// # Panics
///
/// Panics if the pool lacks the baseline's instance type.
pub fn run_single_spot(
    kind: SingleSpotKind,
    workload: &Workload,
    pool: &MarketPool,
    start: SimTime,
    seed: u64,
) -> HptReport {
    run_single_spot_with_cache(kind, workload, pool, start, seed, &CurveCache::global())
}

/// [`run_single_spot`] against an explicit curve-memo tier (the server's
/// shared cross-request tier; the plain entry point uses the process-wide
/// default).
///
/// # Panics
///
/// Panics if the pool lacks the baseline's instance type.
pub fn run_single_spot_with_cache(
    kind: SingleSpotKind,
    workload: &Workload,
    pool: &MarketPool,
    start: SimTime,
    seed: u64,
    curve_cache: &CurveCache,
) -> HptReport {
    let inst_name = kind.instance_name();
    let market = pool
        .market(inst_name)
        .unwrap_or_else(|| panic!("pool lacks baseline instance {inst_name}"));
    let inst = market.instance().clone();
    let perf = PerfModel::new();
    let mut provider = CloudProvider::new(pool.clone());
    let mut rng = StdRng::seed_from_u64(seed ^ crate::engine::DEDICATED_SALT);

    // The "never revoked" assumption: offer far above the trace cap.
    let never = inst.on_demand_price() * 100.0;
    let warmup = SimDur::from_secs(workload.restore_warmup_secs());

    let mut end_latest = start;
    let mut charged_steps = 0u64;
    let mut train_time = SimDur::ZERO;
    let mut finals = Vec::with_capacity(workload.hp_grid().len());
    for hp in workload.hp_grid() {
        let vm = provider
            .request_spot(start, inst_name, never)
            .expect("baseline request cannot be rejected");
        let launched = provider.vm(vm).expect("vm exists").launched_at();
        // Advance the training run to completion, sampling per-step times.
        let mut run = TrainingRun::with_cache(workload, hp, seed, curve_cache);
        let max = workload.max_trial_steps();
        let mut busy = 0.0f64;
        for k in 1..=max {
            busy += perf.sample_spe(&inst, workload, hp, &mut rng);
            let _ = run.metric_at(k);
        }
        finals.push(run.final_metric());
        charged_steps += max;
        let busy_dur = SimDur::from_secs(busy.ceil() as u64);
        train_time += busy_dur;
        let end = launched + warmup + busy_dur;
        provider.terminate(end, vm);
        end_latest = end_latest.max(end);
    }

    let ledger = provider.ledger();
    let true_finals = ground_truth_finals_with_cache(workload, seed, curve_cache);
    let mut ranking: Vec<usize> = (0..finals.len()).collect();
    ranking.sort_by(|&a, &b| finals[a].partial_cmp(&finals[b]).expect("finite"));
    HptReport {
        approach: kind.label().to_string(),
        workload: workload.algorithm().name().to_string(),
        theta: 1.0,
        cost: ledger.total_charged(),
        refunded: ledger.total_refunded(),
        gross: ledger.total_gross(),
        jct: end_latest - start,
        cost_with_continuation: ledger.total_charged(),
        jct_with_continuation: end_latest - start,
        train_time,
        overhead_time: SimDur::from_secs(
            workload.restore_warmup_secs() * workload.hp_grid().len() as u64,
        ),
        free_steps: 0,
        charged_steps,
        predicted_finals: finals,
        true_finals,
        selected: ranking.into_iter().take(3).collect(),
        deployments: workload.hp_grid().len() as u64,
        revocations: 0,
        lost_steps: 0,
        migrations: 0,
    }
}

/// Runs the On-Demand Tune baseline: like [`run_single_spot`] but on
/// on-demand capacity — billed at the instance type's fixed on-demand
/// price, never revoked, never refunded.
///
/// # Panics
///
/// Panics if the pool lacks the baseline's instance type.
pub fn run_on_demand(
    kind: SingleSpotKind,
    workload: &Workload,
    pool: &MarketPool,
    start: SimTime,
    seed: u64,
) -> HptReport {
    run_on_demand_with_cache(kind, workload, pool, start, seed, &CurveCache::global())
}

/// [`run_on_demand`] against an explicit curve-memo tier.
///
/// # Panics
///
/// Panics if the pool lacks the baseline's instance type.
pub fn run_on_demand_with_cache(
    kind: SingleSpotKind,
    workload: &Workload,
    pool: &MarketPool,
    start: SimTime,
    seed: u64,
    curve_cache: &CurveCache,
) -> HptReport {
    let inst_name = kind.instance_name();
    let market = pool
        .market(inst_name)
        .unwrap_or_else(|| panic!("pool lacks baseline instance {inst_name}"));
    let inst = market.instance().clone();
    let perf = PerfModel::new();
    let mut provider = CloudProvider::new(pool.clone());
    let mut rng = StdRng::seed_from_u64(seed ^ crate::engine::DEDICATED_SALT);
    let warmup = SimDur::from_secs(workload.restore_warmup_secs());

    let mut end_latest = start;
    let mut charged_steps = 0u64;
    let mut train_time = SimDur::ZERO;
    let mut finals = Vec::with_capacity(workload.hp_grid().len());
    for hp in workload.hp_grid() {
        let vm = provider
            .request_on_demand(start, inst_name)
            .expect("baseline instance is in the catalog");
        let launched = provider.vm(vm).expect("vm exists").launched_at();
        let mut run = TrainingRun::with_cache(workload, hp, seed, curve_cache);
        let max = workload.max_trial_steps();
        let mut busy = 0.0f64;
        for k in 1..=max {
            busy += perf.sample_spe(&inst, workload, hp, &mut rng);
            let _ = run.metric_at(k);
        }
        finals.push(run.final_metric());
        charged_steps += max;
        let busy_dur = SimDur::from_secs(busy.ceil() as u64);
        train_time += busy_dur;
        let end = launched + warmup + busy_dur;
        provider.terminate(end, vm);
        end_latest = end_latest.max(end);
    }

    let ledger = provider.ledger();
    let true_finals = ground_truth_finals_with_cache(workload, seed, curve_cache);
    let mut ranking: Vec<usize> = (0..finals.len()).collect();
    ranking.sort_by(|&a, &b| finals[a].partial_cmp(&finals[b]).expect("finite"));
    HptReport {
        approach: kind.on_demand_label().to_string(),
        workload: workload.algorithm().name().to_string(),
        theta: 1.0,
        cost: ledger.total_charged(),
        refunded: ledger.total_refunded(),
        gross: ledger.total_gross(),
        jct: end_latest - start,
        cost_with_continuation: ledger.total_charged(),
        jct_with_continuation: end_latest - start,
        train_time,
        overhead_time: SimDur::from_secs(
            workload.restore_warmup_secs() * workload.hp_grid().len() as u64,
        ),
        free_steps: 0,
        charged_steps,
        predicted_finals: finals,
        true_finals,
        selected: ranking.into_iter().take(3).collect(),
        deployments: workload.hp_grid().len() as u64,
        revocations: 0,
        lost_steps: 0,
        migrations: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_mlsim::Algorithm;

    fn setup() -> (Workload, MarketPool) {
        let base = Workload::benchmark(Algorithm::LoR);
        let w = Workload::custom(Algorithm::LoR, 40, base.hp_grid()[..4].to_vec());
        (w, MarketPool::standard(SimDur::from_days(10), 42))
    }

    #[test]
    fn baseline_never_gets_refunds() {
        let (w, pool) = setup();
        let r = run_single_spot(SingleSpotKind::Cheapest, &w, &pool, SimTime::from_hours(2), 1);
        assert_eq!(r.refunded, 0.0);
        assert_eq!(r.free_steps, 0);
        assert_eq!(r.charged_steps, 4 * 40);
        assert!(r.cost > 0.0);
        // θ=1 semantics: predictions are the actual finals.
        assert!(r.top1_hit());
        assert!(r.top3_hit());
    }

    #[test]
    fn fastest_beats_cheapest_on_jct_but_not_cost() {
        let (w, pool) = setup();
        let cheap = run_single_spot(SingleSpotKind::Cheapest, &w, &pool, SimTime::from_hours(2), 1);
        let fast = run_single_spot(SingleSpotKind::Fastest, &w, &pool, SimTime::from_hours(2), 1);
        assert!(fast.jct < cheap.jct, "fast {} cheap {}", fast.jct, cheap.jct);
        assert!(fast.cost > cheap.cost, "fast {} cheap {}", fast.cost, cheap.cost);
    }

    #[test]
    fn labels_and_instances() {
        assert_eq!(SingleSpotKind::Cheapest.instance_name(), "r4.large");
        assert_eq!(SingleSpotKind::Fastest.instance_name(), "m4.4xlarge");
        assert!(SingleSpotKind::Fastest.label().contains("Fastest"));
        assert!(SingleSpotKind::Cheapest.on_demand_label().contains("On-Demand"));
    }

    #[test]
    fn on_demand_matches_single_spot_wall_clock_at_fixed_price() {
        let (w, pool) = setup();
        let start = SimTime::from_hours(2);
        let spot = run_single_spot(SingleSpotKind::Cheapest, &w, &pool, start, 1);
        let od = run_on_demand(SingleSpotKind::Cheapest, &w, &pool, start, 1);
        // Same instance, same step-time stream (same salt): identical JCT.
        assert_eq!(od.jct, spot.jct);
        assert_eq!(od.train_time, spot.train_time);
        // But billed at the fixed on-demand rate with no refund exposure.
        assert!(od.cost > 0.0);
        assert_eq!(od.refunded, 0.0);
        assert_eq!(od.free_steps, 0);
        assert_eq!(od.revocations, 0);
        assert!(od.approach.contains("On-Demand"));
        // θ=1 semantics carry over: predictions are the actual finals.
        assert_eq!(od.predicted_finals, spot.predicted_finals);
        assert!(od.top1_hit());
    }
}
