//! # spottune-core
//!
//! The SpotTune campaign engine and its pluggable policy layer. The
//! [`engine::Engine`] owns the mechanics of paper Algorithm 1 — the
//! 10-second scheduling loop (or its bit-identical next-event drive),
//! checkpoint-on-notice, one-hour proactive recycling for refund
//! harvesting, EarlyCurve-based early shutdown and top-`mcnt` continuation
//! — and consults a [`policy::ProvisionPolicy`] at every decision point.
//! The paper's approaches and related-work strategies are policy impls:
//! [`policy::SpotTuneTheta`] (fine-grained cost-aware provisioning, Eq.
//! 1–2), [`policy::SingleSpot`] / [`policy::OnDemand`] (the baselines),
//! [`policy::HybridSpotOnDemand`] (DeepVM-style fallback) and
//! [`policy::BidAware`] (Voorsluys-style bid ladders). See the
//! [`policy`] module docs for how to write a new one.
//!
//! ```no_run
//! use spottune_core::prelude::*;
//! use spottune_market::prelude::*;
//! use spottune_mlsim::prelude::*;
//!
//! let pool = MarketPool::standard(SimDur::from_days(12), 42);
//! let oracle = OracleEstimator::new(pool.clone(), 0.9);
//! let workload = Workload::benchmark(Algorithm::LoR);
//! let config = SpotTuneConfig::new(0.7, 3);
//! let report = Orchestrator::new(config, workload, pool, &oracle).run();
//! println!("{}", report.summary());
//! ```

pub mod arena;
pub mod baseline;
pub mod batch;
pub mod campaign;
pub mod config;
pub mod engine;
pub mod job;
pub mod migration;
pub mod orchestrator;
pub mod perfmatrix;
pub mod policy;
pub mod provision;
pub mod report;
pub mod soa;
pub mod wire;

pub use baseline::{
    run_on_demand, run_on_demand_with_cache, run_single_spot, run_single_spot_with_cache,
    SingleSpotKind,
};
pub use arena::{EngineScratch, JobArena};
pub use batch::{BatchRunner, BatchStats, GroupSession};
pub use campaign::{Approach, Campaign, CampaignRequest, CampaignResponse};
pub use config::{DriveMode, SpotTuneConfig};
pub use engine::Engine;
pub use migration::{assignment_cost, greedy_assignment, min_cost_assignment};
pub use orchestrator::{Orchestrator, TraceEvent};
pub use perfmatrix::PerfMatrix;
pub use policy::{
    CheckpointPlan, DeployCtx, Matcher, MigrationCtx, MigrationJob, Placement, PolicyMode,
    ProvisionPolicy,
};
pub use provision::{InstChoice, OracleEstimator, Provisioner};
pub use report::HptReport;
pub use soa::{JobLanes, COHORT_WIDTH};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::baseline::{
        run_on_demand, run_on_demand_with_cache, run_single_spot, run_single_spot_with_cache,
        SingleSpotKind,
    };
    pub use crate::arena::{EngineScratch, JobArena};
    pub use crate::batch::{BatchRunner, BatchStats, GroupSession};
    pub use crate::campaign::{Approach, Campaign, CampaignRequest, CampaignResponse};
    pub use crate::config::{DriveMode, SpotTuneConfig};
    pub use crate::engine::Engine;
    pub use crate::job::{FinishReason, Job};
    pub use crate::migration::{assignment_cost, greedy_assignment, min_cost_assignment};
    pub use crate::orchestrator::{Orchestrator, TraceEvent};
    pub use crate::perfmatrix::PerfMatrix;
    pub use crate::policy::{
        CheckpointPlan, DeployCtx, Matcher, MigrationCtx, MigrationJob, Placement, PolicyMode,
        ProvisionPolicy,
    };
    pub use crate::provision::{InstChoice, OracleEstimator, Provisioner};
    pub use crate::report::HptReport;
}
