//! # spottune-core
//!
//! The SpotTune orchestrator (paper Algorithm 1): fine-grained cost-aware
//! provisioning over the spot markets (Eq. 1–2), the 10-second scheduling
//! loop with checkpoint-on-notice, one-hour proactive recycling for refund
//! harvesting, EarlyCurve-based early shutdown and top-`mcnt` continuation,
//! plus the Single-Spot baselines and campaign reports.
//!
//! ```no_run
//! use spottune_core::prelude::*;
//! use spottune_market::prelude::*;
//! use spottune_mlsim::prelude::*;
//!
//! let pool = MarketPool::standard(SimDur::from_days(12), 42);
//! let oracle = OracleEstimator::new(pool.clone(), 0.9);
//! let workload = Workload::benchmark(Algorithm::LoR);
//! let config = SpotTuneConfig::new(0.7, 3);
//! let report = Orchestrator::new(config, workload, pool, &oracle).run();
//! println!("{}", report.summary());
//! ```

pub mod baseline;
pub mod campaign;
pub mod config;
pub mod job;
pub mod orchestrator;
pub mod perfmatrix;
pub mod provision;
pub mod report;

pub use baseline::{run_single_spot, run_single_spot_with_cache, SingleSpotKind};
pub use campaign::{Approach, Campaign, CampaignRequest, CampaignResponse};
pub use config::{DriveMode, SpotTuneConfig};
pub use orchestrator::{Orchestrator, TraceEvent};
pub use perfmatrix::PerfMatrix;
pub use provision::{InstChoice, OracleEstimator, Provisioner};
pub use report::HptReport;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::baseline::{run_single_spot, run_single_spot_with_cache, SingleSpotKind};
    pub use crate::campaign::{Approach, Campaign, CampaignRequest, CampaignResponse};
    pub use crate::config::{DriveMode, SpotTuneConfig};
    pub use crate::job::{FinishReason, Job};
    pub use crate::orchestrator::{Orchestrator, TraceEvent};
    pub use crate::perfmatrix::PerfMatrix;
    pub use crate::provision::{InstChoice, OracleEstimator, Provisioner};
    pub use crate::report::HptReport;
}
