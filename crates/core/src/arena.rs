//! Reusable per-campaign engine state: the flat job arena and scratch
//! buffers the batched drive recycles across campaigns.
//!
//! A campaign's hot-loop state was already stored flat — one contiguous
//! `Vec<Job>` indexed by grid position, no boxing — but every campaign
//! *rebuilt* it: a fresh `Vec`, a fresh `String` checkpoint key, a fresh
//! metric buffer and trace-event `Vec` per run. Profiling the serial sweep
//! loop put 15–20 % of campaign time in the allocator. The arena keeps the
//! slots alive between campaigns: same workload → every field is reset in
//! place ([`Job::reset`], bit-identical to a fresh [`Job::new`]) and the
//! buffers keep their capacity; workload change → the slots are rebuilt.
//!
//! [`EngineScratch`] bundles the arena with the engine's other reusable
//! buffer (the trace-event log) and is what
//! [`Engine::run_with_scratch`](crate::engine::Engine::run_with_scratch)
//! threads through a scenario group.

use crate::engine::TraceEvent;
use crate::job::Job;
use spottune_earlycurve::EarlyCurveConfig;
use spottune_mlsim::{CurveCache, Workload};

/// Flat, slot-reusing store of per-configuration job state.
#[derive(Debug, Default)]
pub struct JobArena {
    slots: Vec<Job>,
    /// The workload the current slots were built for; reset-in-place is
    /// only sound while it matches (grid, algorithm and sizes all feed
    /// slot fields).
    workload: Option<Workload>,
}

impl JobArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        JobArena::default()
    }

    /// Slots ready for one campaign of `workload`: reused (reset in place)
    /// when the arena last served the same workload, rebuilt otherwise.
    /// Either way the returned state is exactly what `Job::new` per grid
    /// point would produce.
    #[allow(clippy::too_many_arguments)]
    pub fn prepare(
        &mut self,
        workload: &Workload,
        target_steps: u64,
        ec_config: EarlyCurveConfig,
        seed: u64,
        curve_cache: &CurveCache,
    ) -> &mut [Job] {
        let reusable = self.workload.as_ref() == Some(workload);
        if reusable {
            for job in &mut self.slots {
                job.reset(workload, target_steps, ec_config, seed, curve_cache);
            }
        } else {
            self.slots.clear();
            self.slots.extend((0..workload.hp_grid().len()).map(|i| {
                Job::new(workload, i, target_steps, ec_config, seed, curve_cache)
            }));
            self.workload = Some(workload.clone());
        }
        &mut self.slots
    }

    /// The resident slots — the jobs of the campaign most recently
    /// [`prepare`](JobArena::prepare)d.
    pub(crate) fn slots(&self) -> &[Job] {
        &self.slots
    }

    /// Mutable view of the resident slots.
    pub(crate) fn slots_mut(&mut self) -> &mut [Job] {
        &mut self.slots
    }

    /// Number of resident slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena holds no slots yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Every buffer the engine can reuse across campaigns of one scenario
/// group: the job arena plus the trace-event log.
#[derive(Debug, Default)]
pub struct EngineScratch {
    /// The reusable job store.
    pub(crate) arena: JobArena,
    /// The trace-event log of the most recent run (cleared on entry).
    pub(crate) events: Vec<TraceEvent>,
}

impl EngineScratch {
    /// Creates empty scratch state.
    pub fn new() -> Self {
        EngineScratch::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_mlsim::{Algorithm, Workload};

    #[test]
    fn reused_slots_match_fresh_jobs() {
        let cache = CurveCache::new();
        let w = Workload::benchmark(Algorithm::LoR);
        let ec = EarlyCurveConfig::default();
        let mut arena = JobArena::new();
        // Dirty the slots with a first campaign's worth of mutation.
        for job in arena.prepare(&w, 10, ec, 1, &cache).iter_mut() {
            job.steps_done = 5;
            job.curve.push(5, 0.5);
            job.halted = true;
            job.lost_steps = 3;
            job.step_carry = 0.25;
        }
        let reused = arena.prepare(&w, 20, ec, 2, &cache);
        for (i, job) in reused.iter_mut().enumerate() {
            let mut fresh = Job::new(&w, i, 20, ec, 2, &cache);
            assert_eq!(job.hp_index, fresh.hp_index);
            assert_eq!(job.ckpt_key, fresh.ckpt_key);
            assert_eq!(job.steps_done, 0);
            assert_eq!(job.target_steps, 20);
            assert!(!job.halted);
            assert_eq!(job.lost_steps, 0);
            assert_eq!(job.step_carry.to_bits(), fresh.step_carry.to_bits());
            assert_eq!(job.curve.points(), fresh.curve.points());
            // The metric stream must follow the new seed exactly.
            for k in [1, 7, 20] {
                assert_eq!(job.run.metric_at(k).to_bits(), fresh.run.metric_at(k).to_bits());
            }
        }
    }

    #[test]
    fn workload_change_rebuilds_slots() {
        let cache = CurveCache::new();
        let ec = EarlyCurveConfig::default();
        let mut arena = JobArena::new();
        let a = Workload::benchmark(Algorithm::LoR);
        let b = Workload::benchmark(Algorithm::Gbtr);
        let n_a = arena.prepare(&a, 10, ec, 1, &cache).len();
        assert_eq!(n_a, a.hp_grid().len());
        assert_eq!(arena.len(), n_a);
        let slots = arena.prepare(&b, 10, ec, 1, &cache);
        assert_eq!(slots.len(), b.hp_grid().len());
        for (i, job) in slots.iter().enumerate() {
            assert!(job.ckpt_key.contains(b.algorithm().name()), "slot {i} rebuilt");
        }
        assert!(!arena.is_empty());
    }
}
