//! Structure-of-arrays job lanes: the cross-campaign SIMD prediction
//! barrier of the batched sweep.
//!
//! The transient drive's prediction stage (Algorithm 1 line 50) evaluates
//! one staged-curve extrapolation per job. Campaign by campaign those are
//! a handful of scalar polynomial evaluations — too few to vectorize. The
//! batched sweep, though, holds a *cohort* of campaigns at the same stage
//! at once, and their predictions are entirely independent. [`JobLanes`]
//! gathers the hot per-job fields of every campaign in the cohort into
//! flat arrays (fallback metric, extrapolation-stage coefficients), runs
//! the whole set through the chunked `[f64; 8]` lane kernel
//! ([`spottune_earlycurve::CurveLanes`]) in one pass, and scatters the
//! results back per campaign.
//!
//! Bit-identity is by construction: lanes run *across* campaigns, so each
//! job's prediction is still the exact scalar operation sequence of
//! [`EarlyCurve::predict_final`] — fitting via the allocation-free
//! [`EarlyCurve::fit_into`] (same arithmetic as `fit`), stage selection
//! via [`extrapolation_stage`] (same scan as `StagedFit::predict`), and
//! the rational-model evaluation via the lane kernel (same expression per
//! lane, reordered only *between* independent jobs). The
//! `batch_equivalence` and `soa_lanes` suites lock this.
//!
//! [`EarlyCurve::predict_final`]: spottune_earlycurve::EarlyCurve::predict_final
//! [`EarlyCurve::fit_into`]: spottune_earlycurve::EarlyCurve::fit_into
//! [`extrapolation_stage`]: spottune_earlycurve::kernel::extrapolation_stage

use crate::job::{FinishReason, Job};
use spottune_earlycurve::kernel::{extrapolation_stage, CurveLanes, FitScratch};

/// Campaigns staged together through one lane barrier. Sized so a cohort's
/// engine scratch stays cache-resident while still filling the 8-wide
/// lanes several times over per kernel invocation.
pub const COHORT_WIDTH: usize = 8;

/// Sentinel lane for jobs whose prediction bypasses the kernel (θ ≥ 1,
/// early convergence, or a curve too short to fit).
const NO_LANE: usize = usize::MAX;

/// SoA mirror of the per-job prediction state of a cohort of campaigns,
/// plus the lane kernel it feeds.
///
/// Usage: [`clear`](JobLanes::clear), one [`gather`](JobLanes::gather) per
/// campaign (returning a handle), one [`evaluate`](JobLanes::evaluate),
/// then one [`scatter`](JobLanes::scatter) per handle.
#[derive(Debug, Default)]
pub struct JobLanes {
    /// Per gathered campaign: its jobs' half-open range in `last`/`lane`.
    ranges: Vec<(usize, usize)>,
    /// Fallback prediction per gathered job: its last observed metric
    /// (+∞ when it never observed one) — also the take-last value.
    last: Vec<f64>,
    /// Kernel lane of each gathered job, or [`NO_LANE`].
    lane: Vec<usize>,
    /// Jobs pushed into kernel lanes since the last clear.
    pushed: usize,
    lanes: CurveLanes,
    fit: FitScratch,
    /// Counter snapshot already handed to [`flush_counters`] callers.
    flushed: (u64, u64, u64),
}

impl JobLanes {
    /// Creates empty lanes.
    pub fn new() -> Self {
        JobLanes::default()
    }

    /// Drops the gathered cohort, keeping allocations and lifetime
    /// counters.
    pub fn clear(&mut self) {
        self.ranges.clear();
        self.last.clear();
        self.lane.clear();
        self.pushed = 0;
        self.lanes.clear();
    }

    /// Stages one campaign's jobs (post phase 1) for the barrier: computes
    /// each job's fallback/take-last value and, for jobs that extrapolate,
    /// fits the staged curve and parks the extrapolation stage's
    /// coefficients in a kernel lane. Returns the campaign's scatter
    /// handle.
    pub fn gather(&mut self, jobs: &[Job], theta: f64, max_steps: u64) -> usize {
        let start = self.last.len();
        for job in jobs {
            let last = job.last_metric().unwrap_or(f64::INFINITY);
            let lane = if theta >= 1.0 || job.finished == Some(FinishReason::ConvergedEarly) {
                NO_LANE
            } else if job.curve.fit_into(&mut self.fit) {
                self.pushed += 1;
                self.lanes.push(extrapolation_stage(self.fit.stages(), max_steps), max_steps)
            } else {
                NO_LANE
            };
            self.last.push(last);
            self.lane.push(lane);
        }
        self.ranges.push((start, self.last.len()));
        self.ranges.len() - 1
    }

    /// Runs the lane kernel over every gathered extrapolation at once.
    /// A cohort with nothing to extrapolate skips the kernel entirely.
    pub fn evaluate(&mut self) {
        if self.pushed > 0 {
            self.lanes.evaluate();
        }
    }

    /// The prediction vector of the campaign behind `handle` — exactly
    /// what [`predict_scalar`] would have produced.
    ///
    /// [`predict_scalar`]: crate::engine::Engine
    ///
    /// # Panics
    ///
    /// Panics if called before [`evaluate`](JobLanes::evaluate) for a
    /// campaign with kernel-lane jobs, or with a foreign handle.
    pub fn scatter(&self, handle: usize) -> Vec<f64> {
        let (start, end) = self.ranges[handle];
        let out = self.lanes.out();
        (start..end)
            .map(|i| match self.lane[i] {
                NO_LANE => self.last[i],
                lane => out[lane],
            })
            .collect()
    }

    /// `(kernel invocations, lane slots, lane jobs)` accumulated since the
    /// previous flush — the occupancy counters the batch runner folds into
    /// [`BatchStats`](crate::batch::BatchStats).
    pub fn flush_counters(&mut self) -> (u64, u64, u64) {
        let (invocations, slots, occupied) = self.lanes.counters();
        let delta = (
            invocations - self.flushed.0,
            slots - self.flushed.1,
            occupied - self.flushed.2,
        );
        self.flushed = (invocations, slots, occupied);
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_earlycurve::EarlyCurveConfig;
    use spottune_mlsim::{Algorithm, CurveCache, Workload};

    fn jobs_with_history(seed: u64, steps: u64) -> Vec<Job> {
        let w = Workload::benchmark(Algorithm::LoR);
        let cache = CurveCache::new();
        (0..w.hp_grid().len())
            .map(|i| {
                let mut job = Job::new(&w, i, steps, EarlyCurveConfig::default(), seed, &cache);
                for k in 1..=steps {
                    let metric = job.run.metric_at(k);
                    job.curve.push(k, metric);
                    job.steps_done = k;
                }
                job
            })
            .collect()
    }

    #[test]
    fn lane_predictions_match_the_scalar_stage() {
        let max_steps = 200;
        let jobs = jobs_with_history(7, 40);
        let mut lanes = JobLanes::new();
        lanes.clear();
        let handle = lanes.gather(&jobs, 0.7, max_steps);
        lanes.evaluate();
        let got = lanes.scatter(handle);
        for (job, got) in jobs.iter().zip(got) {
            let last = job.last_metric().unwrap_or(f64::INFINITY);
            let want = job.curve.predict_final(max_steps).unwrap_or(last);
            assert_eq!(got.to_bits(), want.to_bits());
        }
        let (invocations, slots, lane_jobs) = lanes.flush_counters();
        assert_eq!(invocations, 1);
        assert_eq!(lane_jobs, jobs.len() as u64);
        assert!(slots >= lane_jobs && slots % 8 == 0);
        // A second flush reports only new work.
        assert_eq!(lanes.flush_counters(), (0, 0, 0));
    }

    #[test]
    fn take_last_jobs_bypass_the_kernel() {
        let jobs = jobs_with_history(9, 12);
        let mut lanes = JobLanes::new();
        let handle = lanes.gather(&jobs, 1.0, 100); // θ = 1: every job takes last
        lanes.evaluate();
        let got = lanes.scatter(handle);
        for (job, got) in jobs.iter().zip(got) {
            assert_eq!(got.to_bits(), job.last_metric().unwrap().to_bits());
        }
        assert_eq!(lanes.flush_counters(), (0, 0, 0), "no kernel work staged");
    }

    #[test]
    fn cohorts_scatter_by_handle() {
        let a = jobs_with_history(1, 40);
        let b = jobs_with_history(2, 35);
        let mut lanes = JobLanes::new();
        let ha = lanes.gather(&a, 0.7, 300);
        let hb = lanes.gather(&b, 0.7, 300);
        lanes.evaluate();
        for (jobs, handle) in [(&a, ha), (&b, hb)] {
            let got = lanes.scatter(handle);
            assert_eq!(got.len(), jobs.len());
            for (job, got) in jobs.iter().zip(got) {
                let last = job.last_metric().unwrap_or(f64::INFINITY);
                let want = job.curve.predict_final(300).unwrap_or(last);
                assert_eq!(got.to_bits(), want.to_bits());
            }
        }
        let (invocations, _, lane_jobs) = lanes.flush_counters();
        assert_eq!(invocations, 1, "one kernel pass per cohort barrier");
        assert_eq!(lane_jobs, (a.len() + b.len()) as u64);
    }
}
