//! Per-configuration job state inside the orchestrator.

use spottune_cloud::VmId;
use spottune_earlycurve::{EarlyCurve, EarlyCurveConfig};
use spottune_mlsim::{CurveCache, HpSetting, TrainingRun, Workload};
use spottune_market::{SimDur, SimTime};

/// Why a job stopped iterating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinishReason {
    /// Reached the step target (`θ × max_trial_steps`, or `max_trial_steps`
    /// in the continuation phase).
    TargetReached,
    /// The metric plateaued before the target ("the model comes to
    /// convergence … treat this model as finished", §III.C).
    ConvergedEarly,
}

/// One hyper-parameter configuration's training job.
#[derive(Debug)]
pub struct Job {
    /// Index into the workload's grid.
    pub hp_index: usize,
    /// The configuration itself.
    pub hp: HpSetting,
    /// Cached `hp.id()` — the curve-memo key component. Formatting it
    /// involves per-entry float formatting, so the arena reset path clones
    /// this instead of re-deriving it every campaign.
    pub hp_id: String,
    /// Object-store key of this job's checkpoint (computed once; the
    /// orchestrator checkpoints on every notice, recycle and finish).
    pub ckpt_key: String,
    /// Checkpoint size of this configuration's model, cached from
    /// [`Workload::model_size_mb`].
    pub model_size_mb: f64,
    /// Lazily advanced metric source.
    pub run: TrainingRun,
    /// Observed metric history feeding EarlyCurve.
    pub curve: EarlyCurve,
    /// Completed validation steps.
    pub steps_done: u64,
    /// Steps to reach in the current phase.
    pub target_steps: u64,
    /// Currently assigned VM, if any.
    pub assigned: Option<VmId>,
    /// Instant the current VM finishes restore and can execute.
    pub exec_ready_at: SimTime,
    /// Cached event candidates for the event-driven drive (absolute grid
    /// ticks, maintained by the orchestrator; meaningless while
    /// unassigned). `ready_tick`: first tick at/after `exec_ready_at`;
    /// `recycle_tick`: first tick strictly past the one-hour recycle
    /// threshold; `step_complete_tick`: tick the in-flight step finishes
    /// (valid while `current_spe` is `Some`).
    pub ready_tick: SimTime,
    /// See [`Self::ready_tick`].
    pub recycle_tick: SimTime,
    /// See [`Self::ready_tick`].
    pub step_complete_tick: SimTime,
    /// Whether the assigned VM is eligible for the one-hour proactive
    /// recycle (spot placements are; on-demand placements never refund, so
    /// the engine skips their recycle checks entirely). Set at deployment.
    pub recyclable: bool,
    /// Execution halted by a revocation notice (checkpointed, waiting for
    /// the VM to disappear).
    pub halted: bool,
    /// Steps executed on the current VM (for refund attribution).
    pub steps_on_vm: u64,
    /// Whole poll intervals accumulated toward the in-flight step. Progress
    /// is `step_carry + step_ticks × poll`; counting ticks as an integer
    /// (instead of accumulating an `f64`) makes "advance by n quiet ticks"
    /// exactly associative, so the event-driven drive reproduces the tick
    /// loop bit-for-bit.
    pub step_ticks: u64,
    /// Fractional seconds carried into the in-flight step from the instant
    /// the previous step completed mid-tick.
    pub step_carry: f64,
    /// Sampled seconds-per-step for the in-flight step.
    pub current_spe: Option<f64>,
    /// Whether the job is done for the current phase.
    pub finished: Option<FinishReason>,
    /// Steps that ended up free thanks to the first-hour refund.
    pub free_steps: u64,
    /// Steps billed normally.
    pub charged_steps: u64,
    /// Cumulative checkpoint + restore + warmup time.
    pub overhead: SimDur,
    /// Cumulative execution time.
    pub train_time: SimDur,
    /// Number of deployments (first placement included).
    pub deployments: u64,
    /// Number of provider revocations suffered.
    pub revocations: u64,
    /// Steps covered by the last durable (fully uploaded) checkpoint.
    pub durable_steps: u64,
    /// Steps the checkpoint written inside the current grace window will
    /// cover once the VM disappears; decided by the notice handler,
    /// consumed by the revocation handler. `None` outside a grace window.
    pub pending_capture: Option<u64>,
    /// Steps executed but rolled back after a failed, partial or
    /// abandoned grace-window checkpoint (they are re-executed later).
    pub lost_steps: u64,
    /// Redeployments routed through a policy's batch migration assignment.
    pub migrations: u64,
}

impl Job {
    /// Creates the job for one grid point; its training run memoizes
    /// through `curve_cache`.
    pub fn new(
        workload: &Workload,
        hp_index: usize,
        target_steps: u64,
        ec_config: EarlyCurveConfig,
        seed: u64,
        curve_cache: &CurveCache,
    ) -> Self {
        let hp = workload.hp_grid()[hp_index].clone();
        let hp_id = hp.id();
        Job {
            hp_index,
            ckpt_key: format!("ckpt/{}/{}", workload.algorithm().name(), hp_index),
            model_size_mb: workload.model_size_mb(&hp),
            run: TrainingRun::with_cache_keyed(workload, &hp, hp_id.clone(), seed, curve_cache),
            hp,
            hp_id,
            curve: EarlyCurve::new(ec_config),
            steps_done: 0,
            target_steps,
            assigned: None,
            exec_ready_at: SimTime::ZERO,
            ready_tick: SimTime::ZERO,
            recycle_tick: SimTime::ZERO,
            step_complete_tick: SimTime::ZERO,
            recyclable: true,
            halted: false,
            steps_on_vm: 0,
            step_ticks: 0,
            step_carry: 0.0,
            current_spe: None,
            finished: None,
            free_steps: 0,
            charged_steps: 0,
            overhead: SimDur::ZERO,
            train_time: SimDur::ZERO,
            deployments: 0,
            revocations: 0,
            durable_steps: 0,
            pending_capture: None,
            lost_steps: 0,
            migrations: 0,
        }
    }

    /// Re-initializes this slot for a fresh campaign on the same grid
    /// point of the same workload — field-for-field what
    /// [`Job::new`]`(workload, self.hp_index, …)` would build, but keeping
    /// the slot's allocations (`ckpt_key`, `hp`, the curve's point
    /// buffer). The arena guarantees the workload invariant by rebuilding
    /// its slots whenever the workload changes.
    pub fn reset(
        &mut self,
        workload: &Workload,
        target_steps: u64,
        ec_config: EarlyCurveConfig,
        seed: u64,
        curve_cache: &CurveCache,
    ) {
        self.run = TrainingRun::with_cache_keyed(
            workload,
            &self.hp,
            self.hp_id.clone(),
            seed,
            curve_cache,
        );
        self.curve.reset(ec_config);
        self.steps_done = 0;
        self.target_steps = target_steps;
        self.assigned = None;
        self.exec_ready_at = SimTime::ZERO;
        self.ready_tick = SimTime::ZERO;
        self.recycle_tick = SimTime::ZERO;
        self.step_complete_tick = SimTime::ZERO;
        self.recyclable = true;
        self.halted = false;
        self.steps_on_vm = 0;
        self.step_ticks = 0;
        self.step_carry = 0.0;
        self.current_spe = None;
        self.finished = None;
        self.free_steps = 0;
        self.charged_steps = 0;
        self.overhead = SimDur::ZERO;
        self.train_time = SimDur::ZERO;
        self.deployments = 0;
        self.revocations = 0;
        self.durable_steps = 0;
        self.pending_capture = None;
        self.lost_steps = 0;
        self.migrations = 0;
    }

    /// Whether the job still needs scheduling in the current phase.
    pub fn is_active(&self) -> bool {
        self.finished.is_none()
    }

    /// Whether the job is waiting for a VM.
    pub fn is_waiting(&self) -> bool {
        self.is_active() && self.assigned.is_none()
    }

    /// Credits the steps executed on the ending VM as free or charged.
    pub fn settle_vm_steps(&mut self, was_free: bool) {
        if was_free {
            self.free_steps += self.steps_on_vm;
        } else {
            self.charged_steps += self.steps_on_vm;
        }
        self.steps_on_vm = 0;
        self.assigned = None;
        self.halted = false;
        self.current_spe = None;
        self.step_ticks = 0;
        self.step_carry = 0.0;
    }

    /// Last observed metric, if any step completed.
    pub fn last_metric(&self) -> Option<f64> {
        self.curve.points().last().map(|&(_, m)| m)
    }

    /// Rolls execution back to `captured` completed steps — what the
    /// checkpoint surviving the revocation actually covers. Steps past the
    /// captured point are counted lost and re-executed later; the metric
    /// history is truncated to match so re-observation stays monotone.
    pub fn roll_back_to(&mut self, captured: u64) {
        if captured < self.steps_done {
            self.lost_steps += self.steps_done - captured;
            self.steps_done = captured;
            self.curve.truncate_to(captured);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spottune_mlsim::Algorithm;

    fn job() -> Job {
        let w = Workload::benchmark(Algorithm::LoR);
        Job::new(&w, 0, 10, EarlyCurveConfig::default(), 1, &CurveCache::global())
    }

    #[test]
    fn fresh_job_is_waiting() {
        let j = job();
        assert!(j.is_active());
        assert!(j.is_waiting());
        assert_eq!(j.last_metric(), None);
        assert_eq!(j.steps_done, 0);
    }

    #[test]
    fn settlement_attributes_steps() {
        let mut j = job();
        j.steps_on_vm = 7;
        j.settle_vm_steps(true);
        assert_eq!(j.free_steps, 7);
        assert_eq!(j.charged_steps, 0);
        assert_eq!(j.steps_on_vm, 0);
        assert!(j.assigned.is_none());
        j.steps_on_vm = 3;
        j.settle_vm_steps(false);
        assert_eq!(j.charged_steps, 3);
        // free + charged always equals settled steps
        assert_eq!(j.free_steps + j.charged_steps, 10);
    }

    #[test]
    fn rollback_loses_uncaptured_steps_only() {
        let mut j = job();
        j.steps_done = 8;
        j.curve.push(1, 0.9);
        j.curve.push(8, 0.5);
        j.roll_back_to(5);
        assert_eq!(j.steps_done, 5);
        assert_eq!(j.lost_steps, 3);
        // Only points at or below the captured step survive.
        assert_eq!(j.curve.points(), &[(1, 0.9)]);
        // Rolling back to the current position is a no-op.
        j.roll_back_to(5);
        assert_eq!(j.lost_steps, 3);
        assert_eq!(j.steps_done, 5);
    }

    #[test]
    fn finish_reasons_deactivate() {
        let mut j = job();
        j.finished = Some(FinishReason::TargetReached);
        assert!(!j.is_active());
        assert!(!j.is_waiting());
    }
}
