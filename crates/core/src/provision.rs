//! Fine-grained cost-aware resource provisioning (paper §III.A, Eq. 1–2 and
//! Algorithm 1 `getBestInst`): pick the spot instance minimizing the
//! expected cost of one training step in the next hour,
//! `E[sCost] = M[inst][hp] · (1 − p) · price`.

use crate::perfmatrix::PerfMatrix;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};
use spottune_market::{MarketPool, PoolSpine, RevocationEstimator, SimDur, SimTime};
use std::sync::Arc;

/// Result of one provisioning decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstChoice {
    /// Chosen instance-type name.
    pub instance: String,
    /// Maximum price offered (current price + random delta).
    pub max_price: f64,
    /// Predicted revocation probability for that offer.
    pub p_revoke: f64,
    /// Average market price over the last hour (Eq. 1's `price`).
    pub avg_price: f64,
    /// Expected step cost (Eq. 2) that won the argmin.
    pub expected_step_cost: f64,
}

/// The provisioner: wraps a revocation estimator and the delta policy.
#[derive(Debug)]
pub struct Provisioner<'a> {
    estimator: &'a dyn RevocationEstimator,
    delta_range: (f64, f64),
}

impl<'a> Provisioner<'a> {
    /// Creates a provisioner.
    ///
    /// # Panics
    ///
    /// Panics on an invalid delta range.
    pub fn new(estimator: &'a dyn RevocationEstimator, delta_range: (f64, f64)) -> Self {
        assert!(
            delta_range.0 > 0.0 && delta_range.0 < delta_range.1,
            "invalid delta range {delta_range:?}"
        );
        Provisioner { estimator, delta_range }
    }

    /// Algorithm 1 lines 1–9: for every market, draw a max price slightly
    /// above the current price, predict the revocation probability, compute
    /// the expected step cost, and return the argmin.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty (never for constructed pools).
    pub fn get_best_inst(
        &self,
        pool: &MarketPool,
        t: SimTime,
        hp_index: usize,
        m: &PerfMatrix,
        rng: &mut StdRng,
    ) -> InstChoice {
        // Track the winner by value and materialize the choice (one string
        // allocation) only once — this runs for every market on every
        // deploy decision of every campaign.
        let mut best: Option<(usize, f64, f64, f64, f64)> = None;
        for (i, market) in pool.iter().enumerate() {
            let inst = market.instance();
            let delta = rng.random_range(self.delta_range.0..self.delta_range.1);
            let max_price = market.price_at(t) + delta;
            let p = self
                .estimator
                .revocation_probability(inst.name(), t, max_price)
                .clamp(0.0, 1.0);
            let avg_price = market.avg_price_last_hour(t);
            let spe = m.estimate(inst, hp_index);
            // Eq. 2: E[sCost] = M[inst][hp] · (1 − p) · price.
            let expected_step_cost = spe * (1.0 - p) * avg_price;
            if best.is_none_or(|(_, _, _, _, c)| expected_step_cost < c) {
                best = Some((i, max_price, p, avg_price, expected_step_cost));
            }
        }
        let (i, max_price, p_revoke, avg_price, expected_step_cost) =
            best.expect("market pool must not be empty");
        InstChoice {
            instance: pool.markets()[i].instance().name().to_string(),
            max_price,
            p_revoke,
            avg_price,
            expected_step_cost,
        }
    }

    /// Voorsluys-style bid-aware selection: instead of one random delta per
    /// market (Algorithm 1 line 4), scan a deterministic ladder of bid
    /// margins — fractions of each instance's on-demand price — and return
    /// the (market, bid) pair minimizing the expected *effective* step cost
    ///
    /// `E[sCost] = M[inst][hp] · (1 − p) · price + p · T_rework · price`
    ///
    /// — Eq. 2's refund term (steps on a VM revoked within its first hour
    /// are free) plus an expected-rework penalty of [`REWORK_SECS`] per
    /// revocation (the checkpoint window plus restore). Low bids chase
    /// refunds, high bids chase stability; the ladder lets every market
    /// pick its own side of that trade, and the whole scan consumes no
    /// randomness.
    ///
    /// # Panics
    ///
    /// Panics if the pool or the ladder is empty.
    pub fn best_with_deltas(
        &self,
        pool: &MarketPool,
        t: SimTime,
        hp_index: usize,
        m: &PerfMatrix,
        delta_fracs: &[f64],
    ) -> InstChoice {
        assert!(!delta_fracs.is_empty(), "bid ladder must not be empty");
        let mut best: Option<(usize, f64, f64, f64, f64)> = None;
        for (i, market) in pool.iter().enumerate() {
            let inst = market.instance();
            let avg_price = market.avg_price_last_hour(t);
            let spe = m.estimate(inst, hp_index);
            for &frac in delta_fracs {
                let max_price = market.price_at(t) + frac * inst.on_demand_price();
                let p = self
                    .estimator
                    .revocation_probability(inst.name(), t, max_price)
                    .clamp(0.0, 1.0);
                let expected_step_cost =
                    spe * (1.0 - p) * avg_price + p * REWORK_SECS * avg_price;
                if best.is_none_or(|(_, _, _, _, c)| expected_step_cost < c) {
                    best = Some((i, max_price, p, avg_price, expected_step_cost));
                }
            }
        }
        let (i, max_price, p_revoke, avg_price, expected_step_cost) =
            best.expect("market pool must not be empty");
        InstChoice {
            instance: pool.markets()[i].instance().name().to_string(),
            max_price,
            p_revoke,
            avg_price,
            expected_step_cost,
        }
    }

    /// The wrapped estimator's name (for reports).
    pub fn estimator_name(&self) -> &str {
        self.estimator.name()
    }
}

/// Expected rework per revocation charged by [`Provisioner::best_with_deltas`]:
/// the two-minute notice window burned on checkpointing plus a restore.
pub const REWORK_SECS: f64 = 150.0;

/// Ground-truth estimator that inspects the price traces directly.
///
/// Used for fast simulation (Figs. 7–9, where the paper's focus is the
/// scheduling policy, not predictor quality) and as the upper bound in the
/// predictor ablation. `confidence` tempers the oracle: it answers
/// `confidence` when the trace says "revoked within the hour" and
/// `1 − confidence` otherwise, so expected costs stay comparable across
/// markets instead of collapsing to zero.
#[derive(Debug, Clone)]
pub struct OracleEstimator {
    pool: MarketPool,
    confidence: f64,
    /// Optional shared event spine over the same pool: the one-hour window
    /// query descends the spine's run tree instead of scanning trace
    /// minutes. Same bits either way (the spine's equivalence tests lock
    /// this), so the estimate never depends on which path answered.
    spine: Option<Arc<PoolSpine>>,
}

impl OracleEstimator {
    /// Creates an oracle over the given pool.
    ///
    /// # Panics
    ///
    /// Panics unless `confidence ∈ [0.5, 1]`.
    pub fn new(pool: MarketPool, confidence: f64) -> Self {
        assert!(
            (0.5..=1.0).contains(&confidence),
            "confidence must be in [0.5, 1], got {confidence}"
        );
        OracleEstimator { pool, confidence, spine: None }
    }

    /// Installs a shared event spine derived from this oracle's pool (the
    /// batch runner resolves both through the same scenario key).
    pub fn with_spine(mut self, spine: Arc<PoolSpine>) -> Self {
        self.spine = Some(spine);
        self
    }
}

impl RevocationEstimator for OracleEstimator {
    fn revocation_probability(&self, instance_name: &str, t: SimTime, max_price: f64) -> f64 {
        let hour = SimDur::from_hours(1);
        let revoked = match &self.spine {
            Some(spine) => spine
                .market_index(instance_name)
                .map(|idx| spine.revocation_within(idx, t, hour, max_price).is_some()),
            None => self
                .pool
                .market(instance_name)
                .map(|market| market.revocation_within(t, hour, max_price).is_some()),
        };
        match revoked {
            Some(true) => self.confidence,
            Some(false) => 1.0 - self.confidence,
            None => 0.5,
        }
    }

    fn name(&self) -> &str {
        "Oracle"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use spottune_market::{ConstantEstimator, InstanceType, PriceTrace, SpotMarket};

    fn two_market_pool(price_a: f64, price_b: f64) -> MarketPool {
        let mk = |name: &str, vcpus: u32, price: f64| {
            SpotMarket::new(
                InstanceType::new(name, vcpus, 8.0, 1.0),
                PriceTrace::from_minutes(vec![price; 240]),
            )
        };
        MarketPool::new(vec![mk("cheap.2x", 2, price_a), mk("fast.8x", 8, price_b)])
    }

    #[test]
    fn picks_lowest_expected_step_cost() {
        // Same prior speed scaling (c0/vcpus): fast.8x is 4× faster but
        // only 2× the price — it must win on step cost.
        let pool = two_market_pool(0.1, 0.2);
        let est = ConstantEstimator::new(0.0);
        let prov = Provisioner::new(&est, (0.00001, 0.2));
        let m = PerfMatrix::new(1200.0, 0.3);
        let mut rng = StdRng::seed_from_u64(1);
        let choice = prov.get_best_inst(&pool, SimTime::from_hours(1), 0, &m, &mut rng);
        assert_eq!(choice.instance, "fast.8x");
        assert!(choice.max_price > 0.2);
        // Expected cost matches Eq. 2 by hand: (1200/8) · 1.0 · 0.2 = 30.
        assert!((choice.expected_step_cost - 30.0).abs() < 1e-9);
    }

    #[test]
    fn high_revocation_probability_discounts_cost() {
        // cheap.2x would lose on speed, but if it is predicted to be
        // revoked (p≈1 → refund) its expected cost collapses.
        #[derive(Debug)]
        struct Biased;
        impl RevocationEstimator for Biased {
            fn revocation_probability(&self, inst: &str, _: SimTime, _: f64) -> f64 {
                if inst == "cheap.2x" {
                    0.99
                } else {
                    0.0
                }
            }
            fn name(&self) -> &str {
                "biased"
            }
        }
        let pool = two_market_pool(0.1, 0.2);
        let est = Biased;
        let prov = Provisioner::new(&est, (0.00001, 0.2));
        let m = PerfMatrix::new(1200.0, 0.3);
        let mut rng = StdRng::seed_from_u64(2);
        let choice = prov.get_best_inst(&pool, SimTime::from_hours(1), 0, &m, &mut rng);
        assert_eq!(choice.instance, "cheap.2x");
        assert_eq!(choice.p_revoke, 0.99);
    }

    #[test]
    fn online_profile_overrides_prior() {
        // Profile both cells: fast.8x turns out slow, cheap.2x fast — the
        // observed values must beat the CPU-proportional priors.
        let pool = two_market_pool(0.1, 0.2);
        let est = ConstantEstimator::new(0.0);
        let prov = Provisioner::new(&est, (0.00001, 0.2));
        let mut m = PerfMatrix::new(1200.0, 1.0);
        let fast = pool.market("fast.8x").unwrap().instance().clone();
        let cheap = pool.market("cheap.2x").unwrap().instance().clone();
        m.observe(&fast, 0, 5000.0);
        m.observe(&cheap, 0, 100.0);
        let mut rng = StdRng::seed_from_u64(3);
        let choice = prov.get_best_inst(&pool, SimTime::from_hours(1), 0, &m, &mut rng);
        assert_eq!(choice.instance, "cheap.2x");
    }

    #[test]
    fn scale_prior_transfers_across_instances() {
        // Observing one instance calibrates the prior of the other via the
        // learned per-configuration work scale.
        let pool = two_market_pool(0.1, 0.2);
        let mut m = PerfMatrix::new(1200.0, 1.0);
        let fast = pool.market("fast.8x").unwrap().instance().clone();
        let cheap = pool.market("cheap.2x").unwrap().instance().clone();
        m.observe(&fast, 0, 10.0); // scale = 10 × 8 = 80
        assert!((m.estimate(&cheap, 0) - 40.0).abs() < 1e-9);
        // A different configuration still uses the uninformed prior.
        assert!((m.estimate(&cheap, 1) - 600.0).abs() < 1e-9);
    }

    #[test]
    fn bid_ladder_is_deterministic_and_picks_refunds_when_cheap() {
        // One market that always revokes low bids within the hour: the
        // ladder must prefer the low bid (refunded steps are free) over the
        // high bid that pays full freight, and consume no randomness.
        let mut prices = vec![0.1; 240];
        for p in prices.iter_mut().skip(30) {
            *p = 0.35; // every sub-0.35 bid placed at t<30min is revoked
        }
        let market = SpotMarket::new(
            InstanceType::new("flappy", 2, 8.0, 1.0),
            PriceTrace::from_minutes(prices),
        );
        let pool = MarketPool::new(vec![market]);
        let oracle = crate::provision::OracleEstimator::new(pool.clone(), 0.9);
        let prov = Provisioner::new(&oracle, (0.00001, 0.2));
        let m = PerfMatrix::new(1200.0, 0.3);
        let choice = prov.best_with_deltas(
            &pool,
            SimTime::from_mins(10),
            0,
            &m,
            &[0.001, 0.5],
        );
        // spe = 600 s: low bid scores 600·0.1·avg + 0.9·150·avg = 195·avg,
        // the safe bid 600·0.9·avg + 0.1·150·avg = 555·avg → low bid wins.
        assert!((choice.max_price - (0.1 + 0.001)).abs() < 1e-12, "{}", choice.max_price);
        assert_eq!(choice.p_revoke, 0.9);
        // Determinism: the same call yields the same choice.
        assert_eq!(
            choice,
            prov.best_with_deltas(&pool, SimTime::from_mins(10), 0, &m, &[0.001, 0.5])
        );
    }

    #[test]
    fn bid_ladder_trades_refunds_against_rework_by_step_cost() {
        // score = spe·(1−p)·price + p·150·price. A revoked VM's steps are
        // free, so the refund upside scales with spe while the rework
        // penalty is fixed: cheap steps buy stability (high bid), expensive
        // steps chase refunds (low bid). Crossover at spe = 150 s here.
        let mut prices = vec![0.1; 240];
        for p in prices.iter_mut().skip(30) {
            *p = 0.35;
        }
        let market = SpotMarket::new(
            InstanceType::new("flappy", 2, 8.0, 1.0),
            PriceTrace::from_minutes(prices),
        );
        let pool = MarketPool::new(vec![market]);
        #[derive(Debug)]
        struct BidSensitive;
        impl RevocationEstimator for BidSensitive {
            fn revocation_probability(&self, _: &str, _: SimTime, max_price: f64) -> f64 {
                if max_price < 0.35 {
                    0.9
                } else {
                    0.1
                }
            }
            fn name(&self) -> &str {
                "bid-sensitive"
            }
        }
        let est = BidSensitive;
        let prov = Provisioner::new(&est, (0.00001, 0.2));
        let mut m = PerfMatrix::new(1200.0, 1.0);
        let inst = pool.market("flappy").unwrap().instance().clone();
        m.observe(&inst, 0, 20.0); // cheap steps → stability wins
        let cheap = prov.best_with_deltas(&pool, SimTime::from_mins(10), 0, &m, &[0.001, 0.5]);
        assert!(cheap.max_price > 0.35, "cheap steps buy stability: {}", cheap.max_price);
        m.observe(&inst, 1, 5000.0); // expensive steps → refund chasing wins
        let dear = prov.best_with_deltas(&pool, SimTime::from_mins(10), 1, &m, &[0.001, 0.5]);
        assert!(dear.max_price < 0.35, "expensive steps chase refunds: {}", dear.max_price);
    }

    #[test]
    fn oracle_reads_the_trace() {
        let mut prices = vec![0.1; 240];
        prices[70] = 0.9; // spike at minute 70
        let market = SpotMarket::new(
            InstanceType::new("spiky", 2, 8.0, 1.0),
            PriceTrace::from_minutes(prices),
        );
        let pool = MarketPool::new(vec![market]);
        let oracle = OracleEstimator::new(pool, 0.9);
        // At minute 30, a max price of 0.5 is crossed by the spike.
        assert_eq!(
            oracle.revocation_probability("spiky", SimTime::from_mins(30), 0.5),
            0.9
        );
        // A max price of 1.0 survives.
        assert!(
            (oracle.revocation_probability("spiky", SimTime::from_mins(30), 1.0) - 0.1).abs()
                < 1e-12
        );
        // Unknown market → uninformative.
        assert_eq!(oracle.revocation_probability("none", SimTime::ZERO, 1.0), 0.5);
    }
}
